//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored,
//! JSON-backed `serde`.
//!
//! Implemented directly on `proc_macro` token trees (the build
//! environment has no `syn`/`quote`). Supports the shapes this workspace
//! uses: unit/tuple/named structs and enums with unit, tuple, and named
//! variants, plus the field attributes `#[serde(skip)]`,
//! `#[serde(rename = "...")]`, and
//! `#[serde(skip_serializing_if = "path")]`. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    rename: Option<String>,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String, // identifier, or tuple index as a string
    attrs: FieldAttrs,
}

impl Field {
    fn json_name(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading outer attributes, returning parsed serde attrs.
    fn take_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next(); // '#'
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("expected attribute body after `#`");
            };
            parse_serde_attr(&g.stream(), &mut attrs);
        }
        attrs
    }

    /// Consumes a visibility marker (`pub`, `pub(crate)`, …) if present.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected {what}, got {other:?}"),
        }
    }

    /// Skips a type expression: everything up to a top-level `,` (angle
    /// brackets tracked so `Map<K, V>` commas don't terminate early).
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

/// Parses one attribute body (`[serde(...)]`, `[doc = "..."]`, …) and
/// folds any serde settings into `attrs`.
fn parse_serde_attr(body: &TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let Some(TokenTree::Ident(head)) = tokens.first() else { return };
    if head.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else { return };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                // `key = "literal"` or bare `key`
                let value = match (inner.get(i + 1), inner.get(i + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        i += 2;
                        Some(unquote(&lit.to_string()))
                    }
                    _ => None,
                };
                match (key.as_str(), value) {
                    ("skip", None) => attrs.skip = true,
                    ("rename", Some(v)) => attrs.rename = Some(v),
                    ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
                    ("default", _) => {} // absent handling already defaults
                    (other, _) => panic!("unsupported serde attribute `{other}`"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("unexpected token in #[serde(...)]: {other:?}"),
        }
        i += 1;
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parses the fields of a brace-delimited body into named fields.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = cur.take_attrs();
        cur.skip_vis();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        cur.skip_type();
        // Separator comma, if any.
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.next();
            }
        }
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut cur = Cursor::new(body);
    let mut count = 0;
    while !cur.at_end() {
        let _ = cur.take_attrs();
        cur.skip_vis();
        if cur.at_end() {
            break;
        }
        cur.skip_type();
        count += 1;
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.next();
            }
        }
    }
    count
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let _ = cur.take_attrs();
    cur.skip_vis();
    let kw = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types ({name})");
        }
    }
    match kw.as_str() {
        "struct" => {
            let shape = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = cur.next() else {
                panic!("expected enum body");
            };
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while !vc.at_end() {
                let _ = vc.take_attrs();
                let vname = vc.expect_ident("variant name");
                let shape = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let s = Shape::Tuple(count_tuple_fields(g.stream()));
                        vc.next();
                        s
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let s = Shape::Named(parse_named_fields(g.stream()));
                        vc.next();
                        s
                    }
                    _ => Shape::Unit,
                };
                if let Some(TokenTree::Punct(p)) = vc.peek() {
                    if p.as_char() == ',' {
                        vc.next();
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_named_ser(fields: &[Field], access: &dyn Fn(&str) -> String, out: &mut String) {
    out.push_str("{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let expr = access(&f.name);
        let push = format!(
            "__fields.push((\"{}\".to_string(), ::serde::Serialize::to_value(&{expr})));\n",
            f.json_name()
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{pred}(&{expr}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
        }
    }
    out.push_str("::serde::Value::Object(__fields) }");
}

fn gen_named_de(type_ctx: &str, fields: &[Field], src: &str, out: &mut String) {
    out.push('{');
    for f in fields {
        if f.attrs.skip {
            out.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
            continue;
        }
        out.push_str(&format!(
            "{field}: match {src}.get(\"{json}\") {{\n\
               Some(__x) => ::serde::Deserialize::from_value(__x)\
                 .map_err(|e| e.in_context(\"{ctx}.{field}\"))?,\n\
               None => ::serde::Deserialize::absent(\"{json}\")\
                 .map_err(|e| e.in_context(\"{ctx}.{field}\"))?,\n\
             }},\n",
            field = f.name,
            json = f.json_name(),
            ctx = type_ctx,
            src = src,
        ));
    }
    out.push('}');
}

fn derive_serialize_impl(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, shape } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match shape {
                Shape::Unit => out.push_str("::serde::Value::Null\n"),
                Shape::Tuple(1) => out.push_str("::serde::Serialize::to_value(&self.0)\n"),
                Shape::Tuple(n) => {
                    out.push_str("::serde::Value::Array(vec![");
                    for i in 0..*n {
                        out.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
                    }
                    out.push_str("])\n");
                }
                Shape::Named(fields) => {
                    gen_named_ser(fields, &|f| format!("self.{f}"), &mut out);
                }
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => out.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        out.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        out.push_str(&format!("{name}::{vn} {{ {} }} => {{", binds.join(", ")));
                        out.push_str("let __inner = ");
                        gen_named_ser(fields, &|f| f.to_string(), &mut out);
                        out.push_str(&format!(
                            "; ::serde::Value::Object(vec![(\"{vn}\".to_string(), __inner)]) }},\n"
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn derive_deserialize_impl(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, shape } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n"
            ));
            match shape {
                Shape::Unit => out.push_str(&format!("let _ = __v; Ok({name})\n")),
                Shape::Tuple(1) => out.push_str(&format!(
                    "Ok({name}(::serde::Deserialize::from_value(__v)\
                     .map_err(|e| e.in_context(\"{name}\"))?))\n"
                )),
                Shape::Tuple(n) => {
                    out.push_str(&format!(
                        "let __items = match __v {{\n\
                           ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                           other => return Err(::serde::Error::custom(format!(\n\
                             \"{name}: expected array of {n}, got {{}}\", other.kind()))),\n\
                         }};\nOk({name}("
                    ));
                    for i in 0..*n {
                        out.push_str(&format!(
                            "::serde::Deserialize::from_value(&__items[{i}])\
                             .map_err(|e| e.in_context(\"{name}.{i}\"))?,"
                        ));
                    }
                    out.push_str("))\n");
                }
                Shape::Named(fields) => {
                    out.push_str(&format!(
                        "if !matches!(__v, ::serde::Value::Object(_)) {{\n\
                           return Err(::serde::Error::custom(format!(\n\
                             \"{name}: expected object, got {{}}\", __v.kind())));\n\
                         }}\nOk({name} "
                    ));
                    gen_named_de(name, fields, "__v", &mut out);
                    out.push_str(")\n");
                }
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n"
            ));
            for v in variants {
                if matches!(v.shape, Shape::Unit) {
                    out.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name));
                }
            }
            out.push_str(&format!(
                "other => Err(::serde::Error::custom(format!(\n\
                   \"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\nmatch __tag.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => out.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)\
                         .map_err(|e| e.in_context(\"{name}::{vn}\"))?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{\nlet __items = match __inner {{\n\
                               ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                               other => return Err(::serde::Error::custom(format!(\n\
                                 \"{name}::{vn}: expected array of {n}, got {{}}\", other.kind()))),\n\
                             }};\nOk({name}::{vn}("
                        ));
                        for i in 0..*n {
                            out.push_str(&format!(
                                "::serde::Deserialize::from_value(&__items[{i}])\
                                 .map_err(|e| e.in_context(\"{name}::{vn}.{i}\"))?,"
                            ));
                        }
                        out.push_str("))\n},\n");
                    }
                    Shape::Named(fields) => {
                        out.push_str(&format!("\"{vn}\" => Ok({name}::{vn} "));
                        gen_named_de(&format!("{name}::{vn}"), fields, "__inner", &mut out);
                        out.push_str("),\n");
                    }
                }
            }
            out.push_str(&format!(
                "other => Err(::serde::Error::custom(format!(\n\
                   \"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 other => Err(::serde::Error::custom(format!(\n\
                   \"{name}: expected string or single-key object, got {{}}\", other.kind()))),\n\
                 }}\n}}\n}}\n"
            ));
        }
    }
    out
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item).parse().expect("serde_derive produced invalid Rust")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item).parse().expect("serde_derive produced invalid Rust")
}
