//! Offline vendored minimal stand-in for `criterion`.
//!
//! Implements the API subset the workspace benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop (short warm-up, fixed sample count,
//! mean/min reported to stdout). No plotting, no statistics beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, results: Vec::new() }
    }

    /// Times `routine`, recording `samples` measurements after a short
    /// warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration sizing: aim for samples that
        // are long enough to time, without letting fast routines run for
        // seconds.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed();
        let iters_per_sample = if once < Duration::from_micros(50) {
            100
        } else if once < Duration::from_millis(5) {
            10
        } else {
            1
        };
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.results.is_empty() {
            return;
        }
        let total: Duration = self.results.iter().sum();
        let mean = total / self.results.len() as u32;
        let min = self.results.iter().min().copied().unwrap_or_default();
        println!(
            "bench {name:<40} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)",
            self.results.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        routine(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (reporting already happened per-bench).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored here;
    /// `cargo bench` passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, _criterion: self }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher::new(20);
        routine(&mut b);
        b.report(name);
        self
    }

    /// Final reporting hook (per-bench output already printed).
    pub fn final_summary(&mut self) {}
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut b = Bencher::new(3);
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(count > 3);
        assert_eq!(b.results.len(), 3);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
