//! The JSON value tree shared by `serde` (lowering) and `serde_json`
//! (text encoding).

use std::fmt;

/// A JSON number. Integers are kept exact (`u64`/`i64`) so identifiers
/// and seeds survive round-trips that would lose precision through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

/// A JSON value. Objects preserve insertion order (derive output matches
/// field declaration order, like upstream `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U(n)) => Some(*n),
            Value::Num(Number::I(n)) if *n >= 0 => Some(*n as u64),
            Value::Num(Number::F(f)) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::I(n)) => Some(*n),
            Value::Num(Number::U(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Num(Number::F(f))
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(f) =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::F(f)) => Some(*f),
            Value::Num(Number::U(n)) => Some(*n as f64),
            Value::Num(Number::I(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            Number::F(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back to the same f64, and always includes `.0` for
                    // integral values — matching serde_json's output.
                    write!(f, "{x:?}")
                } else {
                    // JSON has no NaN/Infinity; upstream serde_json emits
                    // null for them.
                    write!(f, "null")
                }
            }
        }
    }
}
