//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the serialization surface the workspace actually uses:
//! `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//! proc-macro) and JSON round-tripping through `serde_json`.
//!
//! Unlike upstream serde's format-generic design, this implementation is
//! JSON-backed: [`Serialize`] lowers a value into a [`Value`] tree and
//! [`Deserialize`] lifts it back. The derive macro generates the same
//! externally-tagged enum / named-field struct encoding upstream
//! `serde_json` produces, so traces written by one build parse in another.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub mod value;

pub use value::{Number, Value};

/// Deserialization error: a human-readable message, optionally prefixed
/// with the path to the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Prefixes the error with a field/variant context.
    pub fn in_context(self, ctx: &str) -> Self {
        Error { msg: format!("{ctx}: {}", self.msg) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can lower itself into a JSON [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A value that can be reconstructed from a JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Lifts a value out of the tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from the input object.
    /// `Option<T>` overrides this to yield `None`; everything else errors.
    fn absent(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

// 128-bit integers fall outside the `Number` reprs; values beyond the
// 64-bit range are carried as decimal strings instead (JSON numbers that
// large would lose precision through an f64 parse anyway).
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::Num(Number::U(n)),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(n) = v.as_u64() {
            return Ok(n as u128);
        }
        match v {
            Value::Str(s) => {
                s.parse::<u128>().map_err(|_| Error::custom(format!("invalid u128 string `{s}`")))
            }
            other => Err(Error::custom(format!("expected u128, got {}", other.kind()))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Num(Number::I(n)),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(n) = v.as_i64() {
            return Ok(n as i128);
        }
        match v {
            Value::Str(s) => {
                s.parse::<i128>().map_err(|_| Error::custom(format!("invalid i128 string `{s}`")))
            }
            other => Err(Error::custom(format!("expected i128, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(Error::custom(
                        format!("expected tuple array, got {}", other.kind()))),
                };
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expect}, got {}", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Map keys must render as JSON object keys (strings).
pub trait MapKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!("bad integer key `{s}`")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::custom(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize, S: std::hash::BuildHasher> Serialize
    for HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic across hasher seeds.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::custom(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn integers_deserialize_as_floats() {
        assert_eq!(f64::from_value(&Value::Num(Number::U(3))).unwrap(), 3.0);
    }

    #[test]
    fn option_absent_is_none() {
        assert_eq!(Option::<u64>::absent("x").unwrap(), None);
        assert!(u64::absent("x").is_err());
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let back = Vec::<(u64, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn array_round_trip() {
        let a = [1.0f64, 2.0, 3.0];
        let back = <[f64; 3]>::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
        assert!(<[f64; 2]>::from_value(&a.to_value()).is_err());
    }

    #[test]
    fn maps_round_trip_with_integer_keys() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(1, "y".to_string());
        let back = BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
