//! Offline vendored stand-in for `serde_json`: a JSON text encoder/decoder
//! over the vendored `serde::Value` tree.
//!
//! Covers the subset the workspace uses: `to_string`, `to_string_pretty`,
//! `to_writer_pretty`, `from_str`, plus the `Value`/`json!` surface for
//! ad-hoc construction.

use std::fmt::Write as _;

pub use serde::value::{Number, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(STEP);
                }
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(STEP);
            }
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent, like
/// upstream serde_json's default pretty formatter).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes pretty-printed JSON into an `io::Write`.
pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

/// Serializes `value` into a `Value` tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a `T` from a `Value` tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { bytes: src.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate pair"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("invalid surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("invalid surrogate"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(src: &str) -> Result<T> {
    let mut parser = Parser::new(src);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: u64 = from_str("42").unwrap();
        assert_eq!(x, 42);
        let f: f64 = from_str("1.25e2").unwrap();
        assert_eq!(f, 125.0);
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let m: std::collections::BTreeMap<String, f64> =
            from_str("{\"a\": 1.0, \"b\": 2.5}").unwrap();
        assert_eq!(m["a"], 1.0);
        assert_eq!(m["b"], 2.5);
    }

    #[test]
    fn pretty_formatting() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Num(Number::U(1))),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn parse_nested() {
        let v: Value = from_str("{\"xs\": [{\"y\": -3}, {\"y\": 4}], \"tag\": \"ok\"}").unwrap();
        assert_eq!(v.get("tag").and_then(Value::as_str), Some("ok"));
        match v.get("xs") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].get("y").and_then(Value::as_i64), Some(-3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
