//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the (small) subset of `rand` 0.8's API that the
//! v-MLP workspace uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait with `gen_range`/`gen_bool`/`gen`, and
//! [`rngs::SmallRng`] backed by xoshiro256++.
//!
//! Determinism matters more than statistical pedigree here: every
//! simulation seed forks through SplitMix64 before touching the
//! generator, and xoshiro256++ passes BigCrush, so simulated noise is
//! sound for the paper's purposes.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible generator operations (never produced by the
/// deterministic generators in this workspace; kept for API parity).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            for &b in chunk.iter().take(dest.len() - i) {
                dest[i] = b;
                i += 1;
            }
        }
    }
    /// Fallible variant of [`fill_bytes`](RngCore::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from fixed-size state.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (expanded via SplitMix64, like
    /// upstream `rand`'s `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut z = state;
        for chunk in bytes.chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut s = z;
            s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            for (dst, src) in chunk.iter_mut().zip(s.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unit-interval double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (Range { start: self.start as f64, end: self.end as f64 }).sample_from(rng) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        unit_f64(self) < p
    }

    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++). Deterministic across
    /// platforms; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro: nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let y: u64 = r.gen_range(5..10u64);
            assert!((5..10).contains(&y));
            let z: f64 = r.gen_range(0.9..=1.0);
            assert!((0.9..=1.0).contains(&z));
            let w: i64 = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 17];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
