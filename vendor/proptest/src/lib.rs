//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro
//! (with `pat in strategy` and `name: type` parameters and
//! `#![proptest_config(...)]`), range/tuple/`Just`/`prop_oneof!` and
//! collection strategies, `prop_map`/`prop_flat_map`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from
//! deterministic per-test seeds; there is no shrinking — a failing case
//! reports its case index and seed instead.

use rand::{Rng, RngCore, SeedableRng};

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Per-test configuration. Only `cases` is meaningful in this vendored
/// subset; the rest exists so `..ProptestConfig::default()` compiles.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// The RNG handed to strategies. Deterministic per (test name, case index).
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng { inner: rand::rngs::SmallRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `cases` deterministic cases of `body`. Panics (test failure)
/// propagate with the case index and seed attached for reproduction.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
    let base = fnv1a(name.as_bytes());
    for case in 0..config.cases {
        let seed = base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = TestRng::from_seed(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("proptest case {case}/{} failed (name={name}, seed={seed:#x})", config.cases);
            std::panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The whole-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain integer strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;
    fn arbitrary() -> Self::Strategy {
        crate::bool::Any
    }
}

impl Arbitrary for f64 {
    type Strategy = std::ops::Range<f64>;
    fn arbitrary() -> Self::Strategy {
        -1.0e9..1.0e9
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Rng, Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// A collection size specification: `n`, `a..b`, or `a..=b`.
    /// Mirrors upstream's `SizeRange` so untyped integer literals infer
    /// as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive.
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { start: *r.start(), end: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<E::Value>` with length drawn from `size`.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// A `Vec` strategy: each case draws a length from `size`, then that
    /// many elements from `element`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy { element, size: size.into() }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.start..self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Supports `pat in strategy` and `name: type`
/// parameters, plus `#![proptest_config(expr)]` as the first item.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                $body
            });
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $var:ident : $ty:ty) => {
        let $var = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };
    ($rng:ident, $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Uniformly picks one of the listed strategies per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a property within a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when the precondition does not hold.
/// (No rejection accounting in this vendored subset.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, f64)> {
        (1u64..100, 0.5f64..2.0)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -1.0f64..=1.0, seed: u64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&f));
            let _ = seed;
        }

        #[test]
        fn composite_strategies(v in crate::collection::vec(arb_pair(), 1..20),
                                flag in crate::bool::ANY) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in &v {
                prop_assert!((1..100).contains(a));
                prop_assert!((0.5..2.0).contains(b));
            }
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn oneof_and_flat_map(x in prop_oneof![Just(1u32), Just(2), Just(3)],
                              v in (1usize..5).prop_flat_map(|n|
                                  crate::collection::vec(0u64..10, n..n + 1))) {
            prop_assert!((1..=3).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            let config = ProptestConfig { cases: 10, ..ProptestConfig::default() };
            crate::run_cases(&config, "det", |rng| {
                out.push(crate::Strategy::generate(&(0u64..1000), rng));
            });
        }
        assert_eq!(first, second);
    }
}
