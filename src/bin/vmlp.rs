//! `vmlp` — command-line experiment runner.
//!
//! Runs one scheduling experiment from flags or a JSON config file and
//! prints (or saves) the result — the "downstream user" entry point to the
//! simulator.
//!
//! ```sh
//! vmlp --scheme=v-mlp --pattern=l2 --machines=20 --rate=140 --horizon=60
//! vmlp --config=experiment.json --out=result.json
//! vmlp serve --addr=127.0.0.1:7411 --machines=20
//! vmlp --help
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use v_mlp::engine;
use v_mlp::prelude::*;

const HELP: &str = "\
vmlp — run one v-MLP scheduling experiment

USAGE:
    vmlp [FLAGS]
    vmlp serve [FLAGS]     serve live TCP traffic (vmlp serve --help)

FLAGS:
    --scheme=SPEC     registered scheme, optionally with typed params:
                      fairsched | cursched | partprofile | fullprofile |
                      v-mlp (default) | searchsched
                      params attach as NAME:k=v,k2=v2 — e.g.
                      v-mlp:healing=off  or  searchsched:iters=24,window=4
    --pattern=NAME    l1 | l2 | l3 | const   (default l1)
    --mix=NAME        balanced | low | mid | high | ratio:<0..1>  (default balanced)
    --machines=N      cluster size            (default 20)
    --rate=R          peak req/s              (default 140)
    --horizon=S       run length, seconds     (default 60)
    --seed=N          RNG seed                (default 2022)
    --small-tier=N:S  heterogeneous fleet: N machines at scale S (e.g. 5:0.5)
    --shards=K        partition the cluster into K scheduling shards (default 1)
    --shard-policy=P  rr | capacity   (shard assignment, default rr)
    --workers=N       worker threads ticking the shards; 0 = all cores,
                      1 = inline (default 1; never changes results)
    --config=FILE     load a JSON ExperimentConfig instead of flags
    --out=FILE        save the result as JSON (traceio format)
    --audit=FILE      record the decision-audit trail as JSONL and run the
                      invariant auditor (never changes simulation results)
    --help            this text

EXIT CODES:
    0  success        2  usage / invalid config
    3  malformed or version-skewed file
    4  file I/O failure
";

/// Parses and registry-validates a `--scheme` spec; the error message
/// names the offending key/name and lists the registered schemes.
fn parse_scheme(s: &str) -> Result<SchemeSpec, String> {
    let spec = SchemeSpec::parse(s)?;
    default_registry().validate_spec(&spec).map_err(|e| e.to_string())?;
    Ok(spec)
}

fn parse_pattern(s: &str) -> Option<WorkloadPattern> {
    Some(match s.to_ascii_lowercase().as_str() {
        "l1" => WorkloadPattern::L1Pulse,
        "l2" => WorkloadPattern::L2Fluctuating,
        "l3" => WorkloadPattern::L3PeriodicWide,
        "const" | "constant" => WorkloadPattern::Constant,
        _ => return None,
    })
}

fn parse_mix(s: &str) -> Option<MixSpec> {
    Some(match s.to_ascii_lowercase().as_str() {
        "balanced" => MixSpec::Balanced,
        "low" => MixSpec::SingleClass(VolatilityClass::Low),
        "mid" => MixSpec::SingleClass(VolatilityClass::Mid),
        "high" => MixSpec::SingleClass(VolatilityClass::High),
        other => {
            let r = other.strip_prefix("ratio:")?.parse::<f64>().ok()?;
            MixSpec::HighRatio(r)
        }
    })
}

const USAGE_EXIT: u8 = 2;

const SERVE_HELP: &str = "\
vmlp serve — run the kernel live against the wall clock behind a TCP socket

The same event-application loop the simulator runs — admission, lifecycle,
healing, the invariant auditor — drives real traffic: line protocol
(`RUN <type>` → `OK <latency_us> <request>`) or minimal HTTP/1.1
(`GET /run/<type>`), auto-detected per connection. Ctrl-C (SIGINT/SIGTERM)
drains in-flight requests, then prints the run summary and the auditor's
verdict.

USAGE:
    vmlp serve [FLAGS]

FLAGS:
    --addr=HOST:PORT  bind address            (default 127.0.0.1:7411)
    --scheme=SPEC     registered scheme spec, as in plain vmlp
                      (default v-mlp)
    --machines=N      cluster size            (default 20)
    --seed=N          RNG seed for the simulated cluster (default 2022)
    --net-workers=N   connection worker threads (default 8)
    --queue-cap=N     bounded submission queue; BUSY past it (default 512)
    --drain=S         shutdown drain timeout, seconds (default 10)
    --overload=on|off paper admission gate / breakers / brownout
                      (default off; on ⇒ overload SHED replies)
    --auditor=on|off  live invariant auditing  (default on)
    --audit=FILE      save the decision-audit trail as JSONL on drain
    --help            this text

EXIT CODES:
    0  clean drain, no invariant violations
    1  the auditor caught an invariant violation during the run
    2  usage / invalid config
    4  file I/O failure
";

fn serve_main(args: &[String]) -> ExitCode {
    let mut serve_cfg = mlp_serve::ServeConfig {
        addr: "127.0.0.1:7411".into(),
        workers: 8,
        queue_cap: 512,
        request_timeout: std::time::Duration::from_secs(30),
        drain_timeout: std::time::Duration::from_secs(10),
        experiment: ExperimentConfig {
            machines: 20,
            ..ExperimentConfig::paper_default(Scheme::VMlp)
        }
        // Live runs are open-ended: aggregate in constant memory and cap
        // the profile store so a soak cannot grow without bound.
        .with_stream_stats(true)
        .with_profile_retention(512)
        .with_auditor(true),
    };
    let mut audit_out: Option<PathBuf> = None;

    for arg in args {
        let bad = |msg: &str| {
            eprintln!("error: {msg}\n\n{SERVE_HELP}");
            ExitCode::from(USAGE_EXIT)
        };
        if arg == "--help" || arg == "-h" {
            print!("{SERVE_HELP}");
            return ExitCode::SUCCESS;
        }
        let Some((key, value)) = arg.split_once('=') else {
            return bad(&format!("unrecognized argument '{arg}'"));
        };
        match key {
            "--addr" => serve_cfg.addr = value.to_string(),
            "--scheme" => match parse_scheme(value) {
                Ok(s) => serve_cfg.experiment.scheme = s,
                Err(e) => return bad(&e),
            },
            "--machines" => match value.parse() {
                Ok(n) => serve_cfg.experiment.machines = n,
                Err(_) => return bad("machines must be an integer"),
            },
            "--seed" => match value.parse() {
                Ok(s) => serve_cfg.experiment.seed = s,
                Err(_) => return bad("seed must be an integer"),
            },
            "--net-workers" => match value.parse() {
                Ok(n) if n > 0 => serve_cfg.workers = n,
                _ => return bad("net-workers must be a positive integer"),
            },
            "--queue-cap" => match value.parse() {
                Ok(n) if n > 0 => serve_cfg.queue_cap = n,
                _ => return bad("queue-cap must be a positive integer"),
            },
            "--drain" => match value.parse::<f64>() {
                Ok(s) if s >= 0.0 => {
                    serve_cfg.drain_timeout = std::time::Duration::from_secs_f64(s)
                }
                _ => return bad("drain must be non-negative seconds"),
            },
            "--overload" => match value.to_ascii_lowercase().as_str() {
                "on" => {
                    serve_cfg.experiment = serve_cfg.experiment.with_overload(OverloadConfig {
                        enabled: true,
                        resilience: true,
                        ..OverloadConfig::disabled()
                    })
                }
                "off" => {
                    serve_cfg.experiment =
                        serve_cfg.experiment.with_overload(OverloadConfig::disabled())
                }
                _ => return bad("overload must be on or off"),
            },
            "--auditor" => match value.to_ascii_lowercase().as_str() {
                "on" => serve_cfg.experiment = serve_cfg.experiment.with_auditor(true),
                "off" => serve_cfg.experiment = serve_cfg.experiment.with_auditor(false),
                _ => return bad("auditor must be on or off"),
            },
            "--audit" => audit_out = Some(PathBuf::from(value)),
            _ => return bad(&format!("unknown flag '{key}'")),
        }
    }
    if audit_out.is_some() {
        serve_cfg.experiment = serve_cfg.experiment.with_audit(true).with_auditor(true);
    }

    engine::shutdown::install_signal_handler();
    let server = match mlp_serve::Server::start(serve_cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server on {}: {e}", serve_cfg.addr);
            return ExitCode::from(USAGE_EXIT);
        }
    };
    eprintln!(
        "serving {} on {} machines at {} ({} workers, queue {}, auditor {}) — ctrl-c drains",
        serve_cfg.experiment.scheme.display_name(),
        serve_cfg.experiment.machines,
        server.local_addr(),
        serve_cfg.workers,
        serve_cfg.queue_cap,
        if serve_cfg.experiment.auditor { "on" } else { "off" },
    );

    // Park until a signal arrives, surfacing counters as a heartbeat.
    let mut last_report = std::time::Instant::now();
    while !engine::shutdown::requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if last_report.elapsed() >= std::time::Duration::from_secs(15) {
            let s = server.stats();
            eprintln!(
                "live: {} conns, {} reqs, {} completed, {} shed, {} busy, mean {:.0} us",
                s.connections,
                s.requests,
                s.completed,
                s.shed,
                s.busy,
                if s.completed > 0 { s.latency_us_sum as f64 / s.completed as f64 } else { 0.0 },
            );
            last_report = std::time::Instant::now();
        }
    }
    eprintln!("shutdown requested — draining …");
    let stats = server.stats();
    let out = server.stop();

    println!("requests served:       {}", stats.requests);
    println!("arrived / completed:   {} / {}", out.arrived, stats.completed);
    println!("shed / busy / errors:  {} / {} / {}", stats.shed, stats.busy, stats.errors);
    println!(
        "mean latency:          {:.1} us",
        if stats.completed > 0 {
            stats.latency_us_sum as f64 / stats.completed as f64
        } else {
            0.0
        }
    );
    if let Some(path) = audit_out {
        if let Err(e) = out.audit.write_jsonl(&path) {
            eprintln!("error: cannot save audit trail: {e}");
            return ExitCode::from(4);
        }
        eprintln!("audit: {} decisions saved to {}", out.audit.len(), path.display());
    }
    match &out.invariant_report {
        None if serve_cfg.experiment.auditor => {
            eprintln!("auditor: no invariant violations");
            ExitCode::SUCCESS
        }
        None => ExitCode::SUCCESS,
        Some(report) => {
            eprintln!("auditor: VIOLATIONS DETECTED\n{report}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("serve") {
        return serve_main(&argv[1..]);
    }

    let mut config = ExperimentConfig {
        machines: 20,
        max_rate: 140.0,
        horizon_s: 60.0,
        ..ExperimentConfig::paper_default(Scheme::VMlp)
    };
    let mut out: Option<PathBuf> = None;
    let mut audit_out: Option<PathBuf> = None;

    for arg in std::env::args().skip(1) {
        let bad = |msg: &str| {
            eprintln!("error: {msg}\n\n{HELP}");
            ExitCode::from(USAGE_EXIT)
        };
        if arg == "--help" || arg == "-h" {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        let Some((key, value)) = arg.split_once('=') else {
            return bad(&format!("unrecognized argument '{arg}'"));
        };
        match key {
            "--scheme" => match parse_scheme(value) {
                Ok(s) => config.scheme = s,
                Err(e) => return bad(&e),
            },
            "--pattern" => match parse_pattern(value) {
                Some(p) => config.pattern = p,
                None => return bad(&format!("unknown pattern '{value}'")),
            },
            "--mix" => match parse_mix(value) {
                Some(m) => config.mix = m,
                None => return bad(&format!("unknown mix '{value}'")),
            },
            "--machines" => match value.parse() {
                Ok(n) => config.machines = n,
                Err(_) => return bad("machines must be an integer"),
            },
            "--rate" => match value.parse() {
                Ok(r) => config.max_rate = r,
                Err(_) => return bad("rate must be a number"),
            },
            "--horizon" => match value.parse() {
                Ok(h) => config.horizon_s = h,
                Err(_) => return bad("horizon must be a number"),
            },
            "--seed" => match value.parse() {
                Ok(s) => config.seed = s,
                Err(_) => return bad("seed must be an integer"),
            },
            "--small-tier" => {
                let parsed = value
                    .split_once(':')
                    .and_then(|(n, s)| Some((n.parse().ok()?, s.parse().ok()?)));
                match parsed {
                    Some((n, s)) => config.small_tier = Some((n, s)),
                    None => return bad("small-tier must be N:SCALE, e.g. 5:0.5"),
                }
            }
            "--shards" => match value.parse() {
                Ok(k) => config.shards = k,
                Err(_) => return bad("shards must be an integer"),
            },
            "--shard-policy" => match value.to_ascii_lowercase().as_str() {
                "rr" | "round-robin" => config.shard_policy = ShardPolicy::RoundRobin,
                "capacity" | "balanced" => config.shard_policy = ShardPolicy::CapacityBalanced,
                _ => return bad(&format!("unknown shard policy '{value}'")),
            },
            "--workers" => match value.parse() {
                Ok(n) => config.workers = n,
                Err(_) => return bad("workers must be an integer"),
            },
            "--config" => match Experiment::from_config_file(Path::new(value)) {
                Ok(e) => config = e.config().clone(),
                Err(e) => {
                    eprintln!("error: cannot load config: {e}");
                    return ExitCode::from(e.exit_code());
                }
            },
            "--out" => out = Some(PathBuf::from(value)),
            "--audit" => audit_out = Some(PathBuf::from(value)),
            _ => return bad(&format!("unknown flag '{key}'")),
        }
    }

    eprintln!(
        "running {} on {} machines ({} shard{}), {} @ {} req/s peak, {}s …",
        config.scheme.display_name(),
        config.machines,
        config.shards.max(1),
        if config.shards.max(1) == 1 { "" } else { "s" },
        config.pattern.label(),
        config.max_rate,
        config.horizon_s
    );
    if audit_out.is_some() {
        config = config.with_audit(true).with_auditor(true);
    }
    let catalog = RequestCatalog::paper();
    let (result, sim) = match Experiment::from_config(config.clone()).catalog(&catalog).run_full() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(e.exit_code());
        }
    };

    println!("arrived / completed:   {} / {}", result.arrived, result.completed);
    println!("throughput:            {:.1} req/s", result.throughput());
    println!(
        "latency p50/p90/p99:   {:.1} / {:.1} / {:.1} ms",
        result.latency_ms[0], result.latency_ms[1], result.latency_ms[2]
    );
    println!("SLO violations:        {:.2}%", result.violation_rate * 100.0);
    println!(
        "violations low/mid/high: {:.2}% / {:.2}% / {:.2}%",
        result.violation_by_class[0] * 100.0,
        result.violation_by_class[1] * 100.0,
        result.violation_by_class[2] * 100.0
    );
    println!("mean utilization:      {:.1}%", result.mean_utilization * 100.0);
    let (a, b, c) = result.healing;
    println!("healing (slot/stretch/switch): {a}/{b}/{c}");
    if config.shards.max(1) > 1 {
        println!("shard overflows:       {}", result.shard_overflows);
    }
    if let Some(bd) = result.mean_breakdown {
        println!(
            "critical path (mean ms): queue {:.2} + place {:.2} + comm {:.2} + exec {:.2} + cap {:.2} = {:.2} (healed {:.2})",
            bd.queue_ms, bd.placement_ms, bd.comm_ms, bd.exec_ms, bd.cap_ms, bd.total_ms(), bd.healed_ms
        );
    }

    if let Some(path) = audit_out {
        if let Err(e) = sim.audit.write_jsonl(&path) {
            eprintln!("error: cannot save audit trail: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "audit: {} decisions saved to {} ({} dropped by the ring buffer)",
            sim.audit.len(),
            path.display(),
            sim.audit.dropped()
        );
        match &sim.invariant_report {
            None => eprintln!("auditor: no invariant violations"),
            Some(report) => eprintln!("auditor: VIOLATIONS DETECTED\n{report}"),
        }
    }

    if let Some(path) = out {
        if let Err(e) = traceio::save_experiment(&path, &result) {
            eprintln!("error: cannot save result: {e}");
            return ExitCode::from(e.exit_code());
        }
        eprintln!("saved result to {}", path.display());
    }
    ExitCode::SUCCESS
}
