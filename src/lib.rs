//! # v-MLP — volatility-aware Microservice Level Parallelism
//!
//! Facade crate for the reproduction of Wang et al., *"Exploring Efficient
//! Microservice Level Parallelism"* (IEEE IPDPS 2022). It re-exports every
//! workspace crate under one roof so examples, integration tests, and
//! downstream users have a single dependency:
//!
//! ```
//! use v_mlp::prelude::*;
//!
//! // Volatility of a request is the paper's V_r metric.
//! let v = Volatility::new(2.0 / 3.0);
//! assert_eq!(v.band(), VolatilityBand::Medium);
//! ```
//!
//! See the individual crates for details:
//! - [`mlp_stats`] — statistics substrate (CDFs, histograms, distributions)
//! - [`mlp_sim`] — discrete-event simulation kernel
//! - [`mlp_model`] — microservice DAG & benchmark models
//! - [`mlp_cluster`] — machine/container substrate with resource ledger
//! - [`mlp_net`] — communication-latency model
//! - [`mlp_workload`] — L1/L2/L3 workload patterns and arrival generation
//! - [`mlp_trace`] — Zipkin-like tracing and profile store
//! - [`mlp_sched`] — scheduler framework + the four baselines of Table VI
//! - [`mlp_core`] — the paper's contribution: the v-MLP scheduler
//! - [`mlp_faults`] — deterministic fault injection (crashes, transients)
//! - [`mlp_engine`] — trace-driven evaluation engine and experiment sweeps

pub use mlp_cluster as cluster;
pub use mlp_core as core;
pub use mlp_engine as engine;
pub use mlp_faults as faults;
pub use mlp_model as model;
pub use mlp_net as net;
pub use mlp_sched as sched;
pub use mlp_sim as sim;
pub use mlp_stats as stats;
pub use mlp_trace as trace;
pub use mlp_workload as workload;

/// Commonly used items, re-exported for examples and quick starts.
pub mod prelude {
    pub use mlp_core::volatility::{Volatility, VolatilityBand};
    pub use mlp_core::VMlpScheduler;
    pub use mlp_engine::config::ExperimentConfig;
    pub use mlp_engine::runner::{run_experiment, ExperimentResult};
    pub use mlp_engine::scheme::Scheme;
    pub use mlp_faults::FaultConfig;
    pub use mlp_model::benchmarks;
    pub use mlp_model::requests::RequestCatalog;
    pub use mlp_workload::patterns::WorkloadPattern;
}
