//! # v-MLP — volatility-aware Microservice Level Parallelism
//!
//! Facade crate for the reproduction of Wang et al., *"Exploring Efficient
//! Microservice Level Parallelism"* (IEEE IPDPS 2022).
//!
//! The **stable public surface is [`prelude`]**: experiment configuration,
//! the [`Experiment`](prelude::Experiment) builder, results, schemes, the
//! scheduler trait and its implementations, cluster sharding, and fault
//! injection. Examples, integration tests, and downstream users should
//! import from it rather than reaching into the `mlp_*` workspace crates:
//!
//! ```
//! use v_mlp::prelude::*;
//!
//! let result = Experiment::from_config(ExperimentConfig::smoke(Scheme::VMlp))
//!     .run()
//!     .expect("smoke config is valid");
//! assert!(result.completed > 0);
//!
//! // Volatility of a request is the paper's V_r metric.
//! let v = Volatility::new(2.0 / 3.0);
//! assert_eq!(v.band(), VolatilityBand::Medium);
//! ```
//!
//! The full workspace crates remain re-exported as modules (`v_mlp::engine`,
//! `v_mlp::cluster`, …) for research code that needs internals — that
//! surface is *advanced and unstable*; anything load-bearing should be
//! promoted into the prelude instead. See the individual crates for
//! details:
//! - [`mlp_stats`] — statistics substrate (CDFs, histograms, distributions)
//! - [`mlp_sim`] — discrete-event simulation kernel
//! - [`mlp_model`] — microservice DAG & benchmark models
//! - [`mlp_cluster`] — machine/container substrate with resource ledger
//! - [`mlp_net`] — communication-latency model
//! - [`mlp_workload`] — L1/L2/L3 workload patterns and arrival generation
//! - [`mlp_trace`] — Zipkin-like tracing and profile store
//! - [`mlp_sched`] — scheduler framework + the four baselines of Table VI
//! - [`mlp_core`] — the paper's contribution: the v-MLP scheduler
//! - [`mlp_faults`] — deterministic fault injection (crashes, transients)
//! - [`mlp_engine`] — trace-driven evaluation engine and experiment sweeps

pub use mlp_cluster as cluster;
pub use mlp_core as core;
pub use mlp_engine as engine;
pub use mlp_faults as faults;
pub use mlp_model as model;
pub use mlp_net as net;
pub use mlp_sched as sched;
pub use mlp_sim as sim;
pub use mlp_stats as stats;
pub use mlp_trace as trace;
pub use mlp_workload as workload;

/// The curated stable surface: everything a typical embedder needs to
/// configure, run, and inspect experiments, without deep-importing
/// `mlp_*` internals.
pub mod prelude {
    // Configuring and running experiments.
    pub use mlp_engine::config::{ExperimentConfig, MixSpec};
    pub use mlp_engine::error::Error;
    pub use mlp_engine::experiment::Experiment;
    pub use mlp_engine::registry::{
        default_registry, BuildCtx, ParamValue, RegistryEntry, SchedulerParams, SchedulerRegistry,
        SchemeSpec,
    };
    pub use mlp_engine::report;
    pub use mlp_engine::runner::ExperimentResult;
    pub use mlp_engine::scheme::Scheme;
    pub use mlp_engine::sweep::SweepConfig;
    pub use mlp_engine::traceio;

    // Schedulers: the trait, the paper's contribution, and the baselines.
    pub use mlp_core::volatility::{Volatility, VolatilityBand};
    pub use mlp_core::VMlpScheduler;
    pub use mlp_sched::baselines;
    pub use mlp_sched::scheduler::{HealingAction, Scheduler, SchedulerCtx};
    pub use mlp_sched::{SearchConfig, SearchSched};

    // The simulated substrate: workloads, requests, cluster sharding.
    pub use mlp_cluster::{Cluster, ShardId, ShardMap, ShardPolicy, ShardPool};
    pub use mlp_model::benchmarks;
    pub use mlp_model::requests::RequestCatalog;
    pub use mlp_model::VolatilityClass;
    pub use mlp_workload::patterns::WorkloadPattern;
    pub use mlp_workload::{ArrivalSource, OpenLoopSource, SliceSource, ThinnedSource};

    // Robustness extensions.
    pub use mlp_faults::FaultConfig;
    pub use mlp_sched::OverloadConfig;
}
