//! Property checks of the decision-audit layer: for every scheme, seed,
//! and fault storm, the invariant auditor reports zero violations, the
//! critical-path attribution telescopes exactly to the measured latency,
//! and enabling auditing never changes simulation results.

use proptest::prelude::*;
use v_mlp::engine::sim::SimOutput;
use v_mlp::prelude::*;
use v_mlp::trace::DecisionKind;

/// Test shorthand over the [`Experiment`] builder.
fn run_experiment_full(
    cfg: &ExperimentConfig,
    catalog: &RequestCatalog,
) -> (ExperimentResult, SimOutput) {
    Experiment::from_config(cfg.clone()).catalog(catalog).run_full().expect("test config is valid")
}

/// A fault storm proportioned to the smoke horizon (8 s + drain): two
/// crashes mid-run, elevated transients, a degraded-network window.
fn smoke_storm() -> FaultConfig {
    FaultConfig {
        enabled: true,
        machine_crashes: 2,
        storm_start_ms: 2_000,
        storm_duration_ms: 4_000,
        outage_ms: 1_500,
        transient_fail_prob: 0.05,
        degrade_start_ms: 2_500,
        degrade_duration_ms: 2_000,
        degrade_factor: 4.0,
    }
}

/// Runs one audited config and asserts the tentpole's acceptance
/// criteria: zero invariant violations and exact latency attribution.
fn check(cfg: ExperimentConfig, label: &str) {
    let catalog = RequestCatalog::paper();
    let (r, out) = run_experiment_full(&cfg, &catalog);
    assert_eq!(
        r.invariant_violations, 0,
        "{label}: auditor flagged violations; report: {:?}",
        out.invariant_report
    );
    assert!(out.invariant_report.is_none(), "{label}");
    assert_eq!(out.audit.dropped(), 0, "{label}: ring buffer overflowed");
    for rec in out.collector.requests() {
        let b = rec.breakdown.expect("every completed request carries a breakdown");
        let lat = rec.latency().as_millis_f64();
        assert!(
            (b.total_ms() - lat).abs() < 1e-9,
            "{label}: request {:?} decomposes to {} but measured {lat} ({b:?})",
            rec.id,
            b.total_ms(),
        );
        for (name, part) in [
            ("queue", b.queue_ms),
            ("placement", b.placement_ms),
            ("comm", b.comm_ms),
            ("exec", b.exec_ms),
            ("healed", b.healed_ms),
        ] {
            assert!(part >= 0.0, "{label}: negative {name} component in {b:?}");
        }
    }
    // Every completed request was admitted exactly once, so the trail
    // holds at least that many Admit records (in-flight admissions may
    // add more).
    assert!(
        out.audit.count(DecisionKind::Admit) >= r.completed,
        "{label}: {} admits < {} completions",
        out.audit.count(DecisionKind::Admit),
        r.completed,
    );
    // Injected crashes and the audit trail agree one-to-one.
    assert_eq!(
        out.audit.count(DecisionKind::MachineDown) as u64,
        r.machine_crashes,
        "{label}: MachineDown decisions disagree with the crash counter"
    );
}

#[test]
fn all_schemes_hold_invariants_and_attribute_latency_exactly() {
    for scheme in Scheme::PAPER {
        for faults in [FaultConfig::disabled(), smoke_storm()] {
            let cfg =
                ExperimentConfig::smoke(scheme).with_seed(11).with_faults(faults).with_audit(true);
            let label = format!("{} faults={}", cfg.scheme.display_name(), cfg.faults.is_active());
            check(cfg, &label);
        }
    }
}

#[test]
fn audit_and_auditor_never_change_results() {
    let base = ExperimentConfig::smoke(Scheme::VMlp).with_seed(7).with_faults(smoke_storm());
    let catalog = RequestCatalog::paper();
    let plain =
        run_experiment_full(&base.clone().with_audit(false).with_auditor(false), &catalog).0;
    let audited = run_experiment_full(&base.with_audit(true).with_auditor(true), &catalog).0;
    assert_eq!(plain.completed, audited.completed);
    assert_eq!(plain.arrived, audited.arrived);
    assert_eq!(plain.latency_ms, audited.latency_ms);
    assert_eq!(plain.mean_latency_ms, audited.mean_latency_ms);
    assert_eq!(plain.violation_rate, audited.violation_rate);
    assert_eq!(plain.healing, audited.healing);
    assert_eq!(plain.mean_breakdown, audited.mean_breakdown);
    assert_eq!(plain.crash_replans, audited.crash_replans);
}

#[test]
fn audit_trail_exports_ordered_valid_jsonl() {
    let cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(3).with_audit(true);
    let (_, out) = run_experiment_full(&cfg, &RequestCatalog::paper());
    assert!(!out.audit.is_empty(), "a live run must leave a trail");
    let mut prev = 0u64;
    for line in out.audit.to_jsonl().lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("each line is valid JSON");
        let at = v.get("at_us").and_then(|a| a.as_u64()).expect("every decision is timestamped");
        assert!(at >= prev, "trail not time-ordered: {at} after {prev}");
        prev = at;
        assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
        assert!(v.get("reason").and_then(|r| r.as_str()).is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random bounded configurations (scheme, mix, machines, rate, seed)
    /// with the auditor on: conservation laws hold and attribution stays
    /// exact everywhere, not just at the curated smoke points.
    #[test]
    fn random_configs_stay_clean(
        scheme_i in 0usize..5,
        mix_i in 0usize..4,
        machines in 2usize..8,
        rate in 5.0f64..30.0,
        seed in any::<u64>(),
        stormy in any::<bool>(),
    ) {
        let scheme = Scheme::PAPER[scheme_i];
        let mix = [
            MixSpec::Balanced,
            MixSpec::SingleClass(VolatilityClass::Low),
            MixSpec::SingleClass(VolatilityClass::High),
            MixSpec::HighRatio(0.5),
        ][mix_i];
        let cfg = ExperimentConfig {
            machines,
            max_rate: rate,
            horizon_s: 4.0,
            warmup_cases: 10,
            ..ExperimentConfig::smoke(scheme)
        }
        .with_mix(mix)
        .with_seed(seed)
        .with_faults(if stormy { smoke_storm() } else { FaultConfig::disabled() })
        .with_audit(true);
        check(cfg, &format!("{} mix#{mix_i} m={machines} r={rate:.0} seed={seed}", scheme.label()));
    }
}
