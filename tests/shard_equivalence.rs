//! Sharding equivalence and safety properties (ISSUE 4 acceptance):
//!
//! * `shards = 1` is byte-identical to the unsharded default — for every
//!   scheme and seed, on every reported metric. Sharding is pure overlay
//!   structure; a single shard scans machines in exactly the old order.
//! * `shards > 1` (both policies) never loses requests, never violates an
//!   invariant the auditor checks (including the shard-partition check),
//!   and stays bit-reproducible.
//! * The worker pool changes wall time, never the schedule: for every
//!   shard count, 1, 2, and 8 workers produce byte-identical results —
//!   including under a crash storm that forces cross-shard overflow, so
//!   the barrier merge cannot depend on worker completion order.

use proptest::prelude::*;
use v_mlp::prelude::*;

fn assert_results_identical(a: &ExperimentResult, b: &ExperimentResult, label: &str) {
    assert_eq!(a.arrived, b.arrived, "{label}: arrived");
    assert_eq!(a.completed, b.completed, "{label}: completed");
    assert_eq!(a.completed_in_horizon, b.completed_in_horizon, "{label}: in-horizon");
    assert_eq!(a.unfinished, b.unfinished, "{label}: unfinished");
    assert_eq!(a.latency_ms, b.latency_ms, "{label}: latency percentiles");
    assert_eq!(a.p99_by_class, b.p99_by_class, "{label}: per-class p99");
    assert_eq!(a.mean_latency_ms, b.mean_latency_ms, "{label}: mean latency");
    assert_eq!(a.violation_rate, b.violation_rate, "{label}: violation rate");
    assert_eq!(a.violation_by_class, b.violation_by_class, "{label}: class violations");
    assert_eq!(a.mean_utilization, b.mean_utilization, "{label}: utilization");
    assert_eq!(a.utilization.values(), b.utilization.values(), "{label}: utilization series");
    assert_eq!(a.healing, b.healing, "{label}: healing counters");
    assert_eq!(a.late_fraction, b.late_fraction, "{label}: late fraction");
    assert_eq!(a.capped_fraction, b.capped_fraction, "{label}: capped fraction");
    assert_eq!(a.mean_breakdown, b.mean_breakdown, "{label}: latency attribution");
    assert_eq!(a.shard_overflows, b.shard_overflows, "{label}: overflows");
}

#[test]
fn one_shard_is_byte_identical_to_unsharded() {
    // The load-bearing property of the redesign: asking for a single shard
    // must reproduce the unsharded scan order exactly, so every existing
    // figure stays byte-identical.
    for scheme in Scheme::PAPER {
        for seed in [7u64, 2022] {
            let base = ExperimentConfig::smoke(scheme).with_seed(seed);
            let unsharded = Experiment::from_config(base.clone()).run().unwrap();
            let one_shard = Experiment::from_config(base.with_shards(1, ShardPolicy::RoundRobin))
                .run()
                .unwrap();
            assert_eq!(one_shard.shard_overflows, 0);
            assert_results_identical(
                &unsharded,
                &one_shard,
                &format!("{} seed={seed}", scheme.label()),
            );
        }
    }
}

#[test]
fn sharded_runs_hold_invariants_under_both_policies() {
    // Sharded scheduling must stay conservative: every request accounted
    // for, zero auditor violations (the auditor re-checks the shard
    // partition every sampling tick), for both assignment policies.
    for scheme in Scheme::PAPER {
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::CapacityBalanced] {
            let cfg = ExperimentConfig::smoke(scheme)
                .with_seed(11)
                .with_shards(3, policy)
                .with_auditor(true);
            let catalog = RequestCatalog::paper();
            let (r, out) = Experiment::from_config(cfg).catalog(&catalog).run_full().unwrap();
            let label = format!("{} {policy:?}", scheme.label());
            assert_eq!(
                r.invariant_violations, 0,
                "{label}: auditor flagged violations; report: {:?}",
                out.invariant_report
            );
            assert!(out.invariant_report.is_none(), "{label}");
            assert!(
                r.completed + r.unfinished >= r.arrived,
                "{label}: lost requests ({} + {} < {})",
                r.completed,
                r.unfinished,
                r.arrived
            );
            assert!(r.completed > 0, "{label}: nothing completed");
        }
    }
}

#[test]
fn sharded_runs_are_bit_reproducible() {
    for policy in [ShardPolicy::RoundRobin, ShardPolicy::CapacityBalanced] {
        let cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(5).with_shards(4, policy);
        let a = Experiment::from_config(cfg.clone()).run().unwrap();
        let b = Experiment::from_config(cfg).run().unwrap();
        assert_results_identical(&a, &b, &format!("{policy:?}"));
    }
}

#[test]
fn unavailable_home_shards_overflow_and_still_account() {
    // One machine per shard and a crash storm: every request homed to a
    // downed machine's shard has no feasible window there, so cross-shard
    // overflow must engage — and conservation still holds.
    let storm = FaultConfig {
        enabled: true,
        machine_crashes: 2,
        storm_start_ms: 1_000,
        storm_duration_ms: 2_000,
        outage_ms: 4_000,
        transient_fail_prob: 0.0,
        degrade_start_ms: 0,
        degrade_duration_ms: 0,
        degrade_factor: 1.0,
    };
    let cfg = ExperimentConfig {
        machines: 8,
        max_rate: 30.0,
        horizon_s: 6.0,
        warmup_cases: 10,
        ..ExperimentConfig::paper_default(Scheme::VMlp)
    }
    .with_seed(31)
    .with_shards(8, ShardPolicy::RoundRobin)
    .with_faults(storm)
    .with_auditor(true);
    let r = Experiment::from_config(cfg).run().unwrap();
    assert!(r.machine_crashes > 0, "storm must actually down machines");
    assert!(r.shard_overflows > 0, "requests homed to downed shards must spill");
    assert_eq!(r.invariant_violations, 0);
    assert!(r.completed + r.unfinished >= r.arrived, "lost requests under overflow");
}

#[test]
fn results_are_bit_identical_across_worker_counts() {
    // The parallel-execution determinism claim (ISSUE 7): the worker pool
    // is a wall-time knob only. For every shard count, the 2- and
    // 8-worker runs must reproduce the single-worker run byte for byte,
    // with the invariant auditor staying clean throughout. (At one shard
    // the pool is bypassed entirely; it is in the matrix to pin that the
    // knob is inert there too.)
    let catalog = RequestCatalog::paper();
    for shards in [1usize, 4, 16] {
        let cfg = ExperimentConfig {
            machines: 16,
            max_rate: 80.0,
            ..ExperimentConfig::smoke(Scheme::VMlp)
        }
        .with_seed(13)
        .with_shards(shards, ShardPolicy::RoundRobin)
        .with_auditor(true);
        let (base, out) = Experiment::from_config(cfg.clone().with_workers(1))
            .catalog(&catalog)
            .run_full()
            .unwrap();
        assert_eq!(
            base.invariant_violations, 0,
            "shards={shards} workers=1: {:?}",
            out.invariant_report
        );
        for workers in [2usize, 8] {
            let (r, out) = Experiment::from_config(cfg.clone().with_workers(workers))
                .catalog(&catalog)
                .run_full()
                .unwrap();
            assert_eq!(
                r.invariant_violations, 0,
                "shards={shards} workers={workers}: {:?}",
                out.invariant_report
            );
            assert_results_identical(&base, &r, &format!("shards={shards} workers={workers}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Cross-shard overflow is collected per shard and merged at the
    /// tick barrier in shard-index order, so the schedule cannot depend
    /// on which worker finishes first. Randomize the seed (a different
    /// overflow set each time) and the worker count (a different
    /// completion interleaving) under a crash storm that guarantees
    /// overflows, and assert the run is identical to its single-worker
    /// twin.
    #[test]
    fn overflow_merge_is_independent_of_worker_count(seed in 1u64..500, workers in 2usize..=8) {
        let storm = FaultConfig {
            enabled: true,
            machine_crashes: 2,
            storm_start_ms: 1_000,
            storm_duration_ms: 2_000,
            outage_ms: 4_000,
            transient_fail_prob: 0.0,
            degrade_start_ms: 0,
            degrade_duration_ms: 0,
            degrade_factor: 1.0,
        };
        let cfg = ExperimentConfig {
            machines: 8,
            max_rate: 30.0,
            horizon_s: 6.0,
            warmup_cases: 10,
            ..ExperimentConfig::paper_default(Scheme::VMlp)
        }
        .with_seed(seed)
        .with_shards(8, ShardPolicy::RoundRobin)
        .with_faults(storm)
        .with_auditor(true);
        let a = Experiment::from_config(cfg.clone().with_workers(1)).run().unwrap();
        let b = Experiment::from_config(cfg.with_workers(workers)).run().unwrap();
        prop_assert_eq!(a.machine_crashes, b.machine_crashes);
        prop_assert_eq!(a.invariant_violations, 0);
        prop_assert_eq!(b.invariant_violations, 0);
        assert_results_identical(&a, &b, &format!("seed={seed} workers={workers}"));
    }

    /// The pool contract under adversarial completion order: jobs that
    /// finish in a scrambled order (random per-job sleeps) still come
    /// back in job-index order at any worker count.
    #[test]
    fn scatter_returns_index_order_under_scrambled_completions(
        delays in proptest::collection::vec(0u64..3, 16),
        workers in 2usize..=4,
    ) {
        let pool = ShardPool::new(workers);
        let jobs: Vec<_> = delays
            .iter()
            .map(|&d| {
                move |idx: usize| {
                    std::thread::sleep(std::time::Duration::from_millis(d));
                    idx
                }
            })
            .collect();
        let out = pool.scatter(jobs);
        prop_assert_eq!(out, (0..delays.len()).collect::<Vec<_>>());
    }
}
