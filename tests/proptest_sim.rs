//! Randomized whole-simulation property tests: whatever the (bounded)
//! configuration, the engine never loses requests, never breaks causality,
//! and stays deterministic.

use proptest::prelude::*;
use v_mlp::prelude::*;

/// Test shorthand over the [`Experiment`] builder.
fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    Experiment::from_config(cfg.clone()).run().expect("test config is valid")
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::FairSched),
        Just(Scheme::CurSched),
        Just(Scheme::PartProfile),
        Just(Scheme::FullProfile),
        Just(Scheme::VMlp),
    ]
}

fn arb_pattern() -> impl Strategy<Value = WorkloadPattern> {
    prop_oneof![
        Just(WorkloadPattern::L1Pulse),
        Just(WorkloadPattern::L2Fluctuating),
        Just(WorkloadPattern::L3PeriodicWide),
        Just(WorkloadPattern::Constant),
    ]
}

fn arb_mix() -> impl Strategy<Value = MixSpec> {
    prop_oneof![
        Just(MixSpec::Balanced),
        Just(MixSpec::SingleClass(VolatilityClass::Low)),
        Just(MixSpec::SingleClass(VolatilityClass::Mid)),
        Just(MixSpec::SingleClass(VolatilityClass::High)),
        (0.0f64..=1.0).prop_map(MixSpec::HighRatio),
    ]
}

fn arb_config() -> impl Strategy<Value = ExperimentConfig> {
    (
        arb_scheme(),
        arb_pattern(),
        arb_mix(),
        2usize..10,   // machines
        5.0f64..40.0, // peak rate
        2.0f64..6.0,  // horizon seconds
        any::<u64>(), // seed
    )
        .prop_map(|(scheme, pattern, mix, machines, rate, horizon, seed)| {
            ExperimentConfig {
                machines,
                max_rate: rate,
                horizon_s: horizon,
                pattern,
                mix,
                warmup_cases: 10,
                ..ExperimentConfig::paper_default(scheme)
            }
            .with_seed(seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Conservation: arrived = completed + unfinished, and metrics stay in
    /// their domains — for any scheme, pattern, mix, and seed.
    #[test]
    fn no_configuration_breaks_accounting(cfg in arb_config()) {
        let r = run_experiment(&cfg);
        prop_assert!(r.completed + r.unfinished >= r.arrived,
            "{}: {} + {} < {}", cfg.scheme.display_name(), r.completed, r.unfinished, r.arrived);
        prop_assert!((0.0..=1.0).contains(&r.violation_rate));
        prop_assert!((0.0..=1.0).contains(&r.mean_utilization));
        prop_assert!(r.latency_ms[0] <= r.latency_ms[1] + 1e-9);
        prop_assert!(r.latency_ms[1] <= r.latency_ms[2] + 1e-9);
        prop_assert!(r.completed_in_horizon <= r.completed);
        for v in r.violation_by_class {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Determinism under arbitrary configurations.
    #[test]
    fn any_configuration_is_reproducible(cfg in arb_config()) {
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.latency_ms, b.latency_ms);
        prop_assert_eq!(a.healing, b.healing);
    }
}

fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        0u32..4,       // machine crashes
        0u64..4_000,   // storm start ms
        500u64..4_000, // storm duration ms
        200u64..2_000, // outage ms
        0.0f64..0.4,   // transient failure probability
        1.0f64..6.0,   // degrade factor
    )
        .prop_map(|(crashes, start, dur, outage, prob, degrade)| FaultConfig {
            enabled: true,
            machine_crashes: crashes,
            storm_start_ms: start,
            storm_duration_ms: dur,
            outage_ms: outage,
            transient_fail_prob: prob,
            degrade_start_ms: start,
            degrade_duration_ms: dur,
            degrade_factor: degrade,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Conservation survives arbitrary fault schedules: crashes, transient
    /// failures, and degradation may abandon requests but never lose them.
    #[test]
    fn fault_injection_preserves_accounting(cfg in arb_config(), faults in arb_faults()) {
        let cfg = cfg.with_faults(faults);
        let r = run_experiment(&cfg);
        prop_assert!(r.completed + r.unfinished >= r.arrived,
            "{}: {} + {} < {}", cfg.scheme.display_name(), r.completed, r.unfinished, r.arrived);
        prop_assert!(r.abandoned <= r.unfinished,
            "abandoned {} > unfinished {}", r.abandoned, r.unfinished);
        prop_assert!((0.0..=1.0).contains(&r.violation_rate));
        prop_assert!(r.mttr_ms >= 0.0);
        prop_assert!(r.latency_ms[0] <= r.latency_ms[2] + 1e-9);
    }

    /// Fault storms replay bit-identically under the same seed.
    #[test]
    fn fault_injection_is_deterministic(cfg in arb_config(), faults in arb_faults()) {
        let cfg = cfg.with_faults(faults);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.latency_ms, b.latency_ms);
        prop_assert_eq!(a.abandoned, b.abandoned);
        prop_assert_eq!(a.node_failures, b.node_failures);
        prop_assert_eq!(a.machine_crashes, b.machine_crashes);
        prop_assert_eq!(a.crash_replans, b.crash_replans);
        prop_assert_eq!(a.mttr_ms, b.mttr_ms);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The heterogeneous-fleet extension holds the same invariants.
    #[test]
    fn two_tier_fleets_hold_invariants(
        scheme in arb_scheme(),
        small_count in 1usize..4,
        scale in 0.4f64..0.9,
        seed: u64,
    ) {
        let cfg = ExperimentConfig {
            machines: 8,
            max_rate: 20.0,
            horizon_s: 4.0,
            warmup_cases: 10,
            ..ExperimentConfig::paper_default(scheme)
        }
        .with_seed(seed)
        .with_small_tier(small_count, scale);
        let r = run_experiment(&cfg);
        prop_assert!(r.completed + r.unfinished >= r.arrived);
        prop_assert!((0.0..=1.0).contains(&r.mean_utilization));
    }
}
