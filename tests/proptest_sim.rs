//! Randomized whole-simulation property tests: whatever the (bounded)
//! configuration, the engine never loses requests, never breaks causality,
//! and stays deterministic.

use proptest::prelude::*;
use v_mlp::engine::config::{ExperimentConfig, MixSpec};
use v_mlp::model::VolatilityClass;
use v_mlp::prelude::*;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::FairSched),
        Just(Scheme::CurSched),
        Just(Scheme::PartProfile),
        Just(Scheme::FullProfile),
        Just(Scheme::VMlp),
    ]
}

fn arb_pattern() -> impl Strategy<Value = WorkloadPattern> {
    prop_oneof![
        Just(WorkloadPattern::L1Pulse),
        Just(WorkloadPattern::L2Fluctuating),
        Just(WorkloadPattern::L3PeriodicWide),
        Just(WorkloadPattern::Constant),
    ]
}

fn arb_mix() -> impl Strategy<Value = MixSpec> {
    prop_oneof![
        Just(MixSpec::Balanced),
        Just(MixSpec::SingleClass(VolatilityClass::Low)),
        Just(MixSpec::SingleClass(VolatilityClass::Mid)),
        Just(MixSpec::SingleClass(VolatilityClass::High)),
        (0.0f64..=1.0).prop_map(MixSpec::HighRatio),
    ]
}

fn arb_config() -> impl Strategy<Value = ExperimentConfig> {
    (
        arb_scheme(),
        arb_pattern(),
        arb_mix(),
        2usize..10,     // machines
        5.0f64..40.0,   // peak rate
        2.0f64..6.0,    // horizon seconds
        any::<u64>(),   // seed
    )
        .prop_map(|(scheme, pattern, mix, machines, rate, horizon, seed)| ExperimentConfig {
            machines,
            max_rate: rate,
            horizon_s: horizon,
            pattern,
            mix,
            warmup_cases: 10,
            ..ExperimentConfig::paper_default(scheme)
        }
        .with_seed(seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Conservation: arrived = completed + unfinished, and metrics stay in
    /// their domains — for any scheme, pattern, mix, and seed.
    #[test]
    fn no_configuration_breaks_accounting(cfg in arb_config()) {
        let r = run_experiment(&cfg);
        prop_assert!(r.completed + r.unfinished >= r.arrived,
            "{}: {} + {} < {}", cfg.scheme.label(), r.completed, r.unfinished, r.arrived);
        prop_assert!((0.0..=1.0).contains(&r.violation_rate));
        prop_assert!((0.0..=1.0).contains(&r.mean_utilization));
        prop_assert!(r.latency_ms[0] <= r.latency_ms[1] + 1e-9);
        prop_assert!(r.latency_ms[1] <= r.latency_ms[2] + 1e-9);
        prop_assert!(r.completed_in_horizon <= r.completed);
        for v in r.violation_by_class {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Determinism under arbitrary configurations.
    #[test]
    fn any_configuration_is_reproducible(cfg in arb_config()) {
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.latency_ms, b.latency_ms);
        prop_assert_eq!(a.healing, b.healing);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The heterogeneous-fleet extension holds the same invariants.
    #[test]
    fn two_tier_fleets_hold_invariants(
        scheme in arb_scheme(),
        small_count in 1usize..4,
        scale in 0.4f64..0.9,
        seed: u64,
    ) {
        let cfg = ExperimentConfig {
            machines: 8,
            max_rate: 20.0,
            horizon_s: 4.0,
            warmup_cases: 10,
            ..ExperimentConfig::paper_default(scheme)
        }
        .with_seed(seed)
        .with_small_tier(small_count, scale);
        let r = run_experiment(&cfg);
        prop_assert!(r.completed + r.unfinished >= r.arrived);
        prop_assert!((0.0..=1.0).contains(&r.mean_utilization));
    }
}
