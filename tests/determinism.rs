//! Reproducibility guarantees: identical seeds give bit-identical results;
//! different seeds and schemes face the identical arrival stream.

use v_mlp::prelude::*;
use v_mlp::sim::SimRng;
use v_mlp::workload::generate_stream;

/// Test shorthand over the [`Experiment`] builder.
fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    Experiment::from_config(cfg.clone()).run().expect("test config is valid")
}

#[test]
fn experiments_are_bit_reproducible() {
    for scheme in [Scheme::FairSched, Scheme::VMlp] {
        let cfg = ExperimentConfig::smoke(scheme).with_seed(42);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.mean_utilization, b.mean_utilization);
        assert_eq!(a.healing, b.healing);
        assert_eq!(a.utilization.values(), b.utilization.values());
    }
}

#[test]
fn different_seeds_give_different_streams() {
    let cfg1 = ExperimentConfig::smoke(Scheme::VMlp).with_seed(1);
    let cfg2 = ExperimentConfig::smoke(Scheme::VMlp).with_seed(2);
    let a = run_experiment(&cfg1);
    let b = run_experiment(&cfg2);
    assert_ne!(a.arrived, b.arrived, "distinct seeds should differ");
}

#[test]
fn all_schemes_face_the_same_arrival_stream() {
    // The arrival stream depends only on the seed/pattern/mix — never on
    // the scheme — so scheme comparisons are paired (Section IV).
    let catalog = RequestCatalog::paper();
    let mix = catalog.balanced_mix();
    let s1 = generate_stream(
        WorkloadPattern::L2Fluctuating,
        100.0,
        10.0,
        &mix,
        &mut SimRng::new(9).fork(0),
    );
    let s2 = generate_stream(
        WorkloadPattern::L2Fluctuating,
        100.0,
        10.0,
        &mix,
        &mut SimRng::new(9).fork(0),
    );
    assert_eq!(s1, s2);
    // And the runner's per-scheme results report identical arrivals.
    let a = run_experiment(&ExperimentConfig::smoke(Scheme::FairSched).with_seed(5));
    let b = run_experiment(&ExperimentConfig::smoke(Scheme::FullProfile).with_seed(5));
    assert_eq!(a.arrived, b.arrived);
}

#[test]
fn disabled_faults_leave_runs_byte_identical() {
    // A disabled FaultConfig must be inert no matter what junk the storm
    // fields carry: every fault code path is gated on `is_active()`, so the
    // run must be byte-identical to the plain config's.
    let junk = FaultConfig {
        enabled: false,
        machine_crashes: 7,
        storm_start_ms: 1,
        storm_duration_ms: 99_999,
        outage_ms: 12_345,
        transient_fail_prob: 0.9,
        degrade_start_ms: 0,
        degrade_duration_ms: 99_999,
        degrade_factor: 10.0,
    };
    for scheme in [Scheme::VMlp, Scheme::CurSched] {
        let plain = ExperimentConfig::smoke(scheme).with_seed(77);
        let gated = plain.clone().with_faults(junk);
        let a = run_experiment(&plain);
        let b = run_experiment(&gated);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.mean_utilization, b.mean_utilization);
        assert_eq!(a.healing, b.healing);
        assert_eq!(a.utilization.values(), b.utilization.values());
        assert_eq!(b.abandoned, 0);
        assert_eq!(b.node_failures, 0);
        assert_eq!(b.machine_crashes, 0);
    }
}

#[test]
fn disabled_overload_leaves_runs_byte_identical() {
    // A disabled OverloadConfig must be inert no matter what junk the
    // tuning fields carry: the runtime (and its RNG fork) is only
    // constructed when `enabled`, so the run must be byte-identical to
    // the plain config's.
    let junk = OverloadConfig {
        enabled: false,
        resilience: true,
        surge_multiplier: 9.0,
        surge_start_s: 0.1,
        surge_duration_s: 99.0,
        surge_ramp_s: 1.0,
        max_queue_depth: 1,
        admission_slack: 7.0,
        retry_rate_per_s: 0.001,
        retry_burst: 0.001,
        retry_base_backoff_ms: 500.0,
        breaker_min_samples: 1,
        breaker_failure_rate: 0.01,
        breaker_open_ms: 60_000.0,
        breaker_half_open_probes: 1,
        tier1_pressure: 0.2,
        tier2_pressure: 0.3,
        tier3_pressure: 0.4,
        tier_hysteresis: 0.05,
    };
    for scheme in [Scheme::VMlp, Scheme::CurSched] {
        let plain = ExperimentConfig::smoke(scheme).with_seed(77);
        let gated = plain.clone().with_overload(junk);
        let a = run_experiment(&plain);
        let b = run_experiment(&gated);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.mean_utilization, b.mean_utilization);
        assert_eq!(a.healing, b.healing);
        assert_eq!(a.utilization.values(), b.utilization.values());
        assert_eq!(b.shed_requests, 0);
        assert_eq!(b.branch_sheds, 0);
        assert_eq!(b.retries_denied, 0);
        assert_eq!(b.breaker_opens, 0);
        assert_eq!(b.peak_pressure, 0.0);
    }
}

#[test]
fn overload_runs_are_bit_reproducible() {
    // The resilience stack (admission gate, token bucket, breakers,
    // brownout, jittered backoff from the dedicated RNG fork) must be
    // fully deterministic in the seed.
    let overload =
        OverloadConfig { max_queue_depth: 16, ..OverloadConfig::flash_crowd(4.0, 0.5, 4.0) };
    for scheme in [Scheme::VMlp, Scheme::CurSched] {
        let cfg = ExperimentConfig::smoke(scheme)
            .with_pattern(WorkloadPattern::Constant)
            .with_seed(13)
            .with_overload(overload);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.arrived, b.arrived);
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.utilization.values(), b.utilization.values());
        assert_eq!(a.shed_requests, b.shed_requests);
        assert_eq!(a.branch_sheds, b.branch_sheds);
        assert_eq!(a.retries_denied, b.retries_denied);
        assert_eq!(a.breaker_opens, b.breaker_opens);
        assert_eq!(a.peak_pressure, b.peak_pressure);
        // The surge must actually overload the gate at these settings.
        assert!(a.shed_requests > 0, "{}: surge never tripped admission", scheme.label());
        assert_eq!(a.arrived, a.completed + a.unfinished, "{}", scheme.label());
    }
}

#[test]
fn fault_storms_are_bit_reproducible() {
    let storm = FaultConfig {
        enabled: true,
        machine_crashes: 2,
        storm_start_ms: 1_500,
        storm_duration_ms: 3_000,
        outage_ms: 1_000,
        transient_fail_prob: 0.05,
        degrade_start_ms: 2_000,
        degrade_duration_ms: 2_000,
        degrade_factor: 3.0,
    };
    for scheme in [Scheme::VMlp, Scheme::CurSched] {
        let cfg = ExperimentConfig::smoke(scheme).with_seed(13).with_faults(storm);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.utilization.values(), b.utilization.values());
        assert_eq!(a.abandoned, b.abandoned);
        assert_eq!(a.node_failures, b.node_failures);
        assert_eq!(a.fault_retries, b.fault_retries);
        assert_eq!(a.machine_crashes, b.machine_crashes);
        assert_eq!(a.crash_replans, b.crash_replans);
        assert_eq!(a.mttr_ms, b.mttr_ms);
        // The storm must actually do something at these settings.
        assert!(a.machine_crashes > 0, "{}: storm injected no crashes", scheme.label());
        assert!(a.node_failures > 0, "{}: storm killed no nodes", scheme.label());
    }
}

#[test]
fn parallel_sweep_is_deterministic() {
    use v_mlp::engine::parallel::run_all;
    let configs: Vec<ExperimentConfig> =
        Scheme::PAPER.into_iter().map(|s| ExperimentConfig::smoke(s).with_seed(3)).collect();
    let r1 = run_all(&configs, 2);
    let r2 = run_all(&configs, 5); // different worker count, same results
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms);
    }
}

#[test]
fn reorder_index_matches_sort_based_reference() {
    // The waiting queue is served from the incremental reorder index (per-
    // (shard, type) arrival-ordered deques, lazy head merge, versioned
    // terms cache); the per-round `sort_by_reorder_ratio` survives behind
    // `unindexed_reorder` as the reference. Equivalence must hold at the
    // *schedule* level: the same config run both ways must produce
    // identical results and — modulo the `IndexInvalidate` records only
    // the indexed path emits — a decision-audit trail identical entry for
    // entry, unsharded and sharded.
    use v_mlp::trace::DecisionKind;
    for shards in [1usize, 4] {
        let cfg = ExperimentConfig::smoke(Scheme::VMlp)
            .with_seed(17)
            .with_shards(shards, ShardPolicy::RoundRobin);
        let (idx_r, idx_out) =
            Experiment::from_config(cfg.clone()).audit(true).run_full().expect("indexed path runs");
        let (ref_r, ref_out) = Experiment::from_config(cfg)
            .audit(true)
            .unindexed_reorder(true)
            .run_full()
            .expect("sorted reference path runs");
        let label = format!("shards={shards}");
        assert_eq!(idx_r.completed, ref_r.completed, "{label}: completed");
        assert_eq!(idx_r.latency_ms, ref_r.latency_ms, "{label}: latency percentiles");
        assert_eq!(idx_r.violation_rate, ref_r.violation_rate, "{label}: violation rate");
        assert_eq!(idx_r.healing, ref_r.healing, "{label}: healing counters");
        assert_eq!(idx_r.mean_utilization, ref_r.mean_utilization, "{label}: utilization");
        let idx_ds: Vec<_> = idx_out
            .audit
            .decisions()
            .iter()
            .filter(|d| d.kind != DecisionKind::IndexInvalidate)
            .cloned()
            .collect();
        let ref_ds = ref_out.audit.decisions();
        assert!(
            ref_ds.iter().all(|d| d.kind != DecisionKind::IndexInvalidate),
            "{label}: the sorted path must never emit index invalidations"
        );
        assert_eq!(idx_ds.len(), ref_ds.len(), "{label}: decision counts");
        for (i, (a, b)) in idx_ds.iter().zip(ref_ds.iter()).enumerate() {
            assert_eq!(a, b, "{label}: decision #{i} diverges between queue paths");
        }
    }
}

#[test]
fn banded_dt_fast_path_matches_sort_based_reference() {
    // The banded Δt estimate is served from the per-service rank index
    // plus a (service, band, percentile) memo; the sort-based scan
    // survives as a debug reference. Equivalence must hold at the
    // *schedule* level, not just per estimate: the same config run both
    // ways must produce identical results and a decision-audit trail
    // identical entry for entry (every budget tier, defer, and admit) —
    // unsharded and sharded, where the parallel round buffers decisions
    // on the workers.
    for shards in [1usize, 4] {
        let cfg = ExperimentConfig::smoke(Scheme::VMlp)
            .with_seed(17)
            .with_shards(shards, ShardPolicy::RoundRobin);
        let (fast_r, fast_out) =
            Experiment::from_config(cfg.clone()).audit(true).run_full().expect("fast path runs");
        let (ref_r, ref_out) = Experiment::from_config(cfg)
            .audit(true)
            .unindexed_dt(true)
            .run_full()
            .expect("reference path runs");
        let label = format!("shards={shards}");
        assert_eq!(fast_r.completed, ref_r.completed, "{label}: completed");
        assert_eq!(fast_r.latency_ms, ref_r.latency_ms, "{label}: latency percentiles");
        assert_eq!(fast_r.violation_rate, ref_r.violation_rate, "{label}: violation rate");
        assert_eq!(fast_r.healing, ref_r.healing, "{label}: healing counters");
        let fast_ds = fast_out.audit.decisions();
        let ref_ds = ref_out.audit.decisions();
        assert_eq!(fast_ds.len(), ref_ds.len(), "{label}: decision counts");
        for (i, (a, b)) in fast_ds.iter().zip(ref_ds.iter()).enumerate() {
            assert_eq!(a, b, "{label}: decision #{i} diverges between Δt paths");
        }
    }
}
