//! Reproducibility guarantees: identical seeds give bit-identical results;
//! different seeds and schemes face the identical arrival stream.

use v_mlp::prelude::*;
use v_mlp::sim::SimRng;
use v_mlp::workload::generate_stream;

/// Test shorthand over the [`Experiment`] builder.
fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    Experiment::from_config(*cfg).run().expect("test config is valid")
}

#[test]
fn experiments_are_bit_reproducible() {
    for scheme in [Scheme::FairSched, Scheme::VMlp] {
        let cfg = ExperimentConfig::smoke(scheme).with_seed(42);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.mean_utilization, b.mean_utilization);
        assert_eq!(a.healing, b.healing);
        assert_eq!(a.utilization.values(), b.utilization.values());
    }
}

#[test]
fn different_seeds_give_different_streams() {
    let cfg1 = ExperimentConfig::smoke(Scheme::VMlp).with_seed(1);
    let cfg2 = ExperimentConfig::smoke(Scheme::VMlp).with_seed(2);
    let a = run_experiment(&cfg1);
    let b = run_experiment(&cfg2);
    assert_ne!(a.arrived, b.arrived, "distinct seeds should differ");
}

#[test]
fn all_schemes_face_the_same_arrival_stream() {
    // The arrival stream depends only on the seed/pattern/mix — never on
    // the scheme — so scheme comparisons are paired (Section IV).
    let catalog = RequestCatalog::paper();
    let mix = catalog.balanced_mix();
    let s1 = generate_stream(
        WorkloadPattern::L2Fluctuating,
        100.0,
        10.0,
        &mix,
        &mut SimRng::new(9).fork(0),
    );
    let s2 = generate_stream(
        WorkloadPattern::L2Fluctuating,
        100.0,
        10.0,
        &mix,
        &mut SimRng::new(9).fork(0),
    );
    assert_eq!(s1, s2);
    // And the runner's per-scheme results report identical arrivals.
    let a = run_experiment(&ExperimentConfig::smoke(Scheme::FairSched).with_seed(5));
    let b = run_experiment(&ExperimentConfig::smoke(Scheme::FullProfile).with_seed(5));
    assert_eq!(a.arrived, b.arrived);
}

#[test]
fn disabled_faults_leave_runs_byte_identical() {
    // A disabled FaultConfig must be inert no matter what junk the storm
    // fields carry: every fault code path is gated on `is_active()`, so the
    // run must be byte-identical to the plain config's.
    let junk = FaultConfig {
        enabled: false,
        machine_crashes: 7,
        storm_start_ms: 1,
        storm_duration_ms: 99_999,
        outage_ms: 12_345,
        transient_fail_prob: 0.9,
        degrade_start_ms: 0,
        degrade_duration_ms: 99_999,
        degrade_factor: 10.0,
    };
    for scheme in [Scheme::VMlp, Scheme::CurSched] {
        let plain = ExperimentConfig::smoke(scheme).with_seed(77);
        let gated = plain.with_faults(junk);
        let a = run_experiment(&plain);
        let b = run_experiment(&gated);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.mean_utilization, b.mean_utilization);
        assert_eq!(a.healing, b.healing);
        assert_eq!(a.utilization.values(), b.utilization.values());
        assert_eq!(b.abandoned, 0);
        assert_eq!(b.node_failures, 0);
        assert_eq!(b.machine_crashes, 0);
    }
}

#[test]
fn fault_storms_are_bit_reproducible() {
    let storm = FaultConfig {
        enabled: true,
        machine_crashes: 2,
        storm_start_ms: 1_500,
        storm_duration_ms: 3_000,
        outage_ms: 1_000,
        transient_fail_prob: 0.05,
        degrade_start_ms: 2_000,
        degrade_duration_ms: 2_000,
        degrade_factor: 3.0,
    };
    for scheme in [Scheme::VMlp, Scheme::CurSched] {
        let cfg = ExperimentConfig::smoke(scheme).with_seed(13).with_faults(storm);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.utilization.values(), b.utilization.values());
        assert_eq!(a.abandoned, b.abandoned);
        assert_eq!(a.node_failures, b.node_failures);
        assert_eq!(a.fault_retries, b.fault_retries);
        assert_eq!(a.machine_crashes, b.machine_crashes);
        assert_eq!(a.crash_replans, b.crash_replans);
        assert_eq!(a.mttr_ms, b.mttr_ms);
        // The storm must actually do something at these settings.
        assert!(a.machine_crashes > 0, "{}: storm injected no crashes", scheme.label());
        assert!(a.node_failures > 0, "{}: storm killed no nodes", scheme.label());
    }
}

#[test]
fn parallel_sweep_is_deterministic() {
    use v_mlp::engine::parallel::run_all;
    let configs: Vec<ExperimentConfig> =
        Scheme::PAPER.into_iter().map(|s| ExperimentConfig::smoke(s).with_seed(3)).collect();
    let r1 = run_all(&configs, 2);
    let r2 = run_all(&configs, 5); // different worker count, same results
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms);
    }
}
