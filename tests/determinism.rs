//! Reproducibility guarantees: identical seeds give bit-identical results;
//! different seeds and schemes face the identical arrival stream.

use v_mlp::engine::config::ExperimentConfig;
use v_mlp::model::RequestCatalog;
use v_mlp::prelude::*;
use v_mlp::sim::SimRng;
use v_mlp::workload::generate_stream;

#[test]
fn experiments_are_bit_reproducible() {
    for scheme in [Scheme::FairSched, Scheme::VMlp] {
        let cfg = ExperimentConfig::smoke(scheme).with_seed(42);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.completed, b.completed, "{}", scheme.label());
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
        assert_eq!(a.mean_utilization, b.mean_utilization);
        assert_eq!(a.healing, b.healing);
        assert_eq!(a.utilization.values(), b.utilization.values());
    }
}

#[test]
fn different_seeds_give_different_streams() {
    let cfg1 = ExperimentConfig::smoke(Scheme::VMlp).with_seed(1);
    let cfg2 = ExperimentConfig::smoke(Scheme::VMlp).with_seed(2);
    let a = run_experiment(&cfg1);
    let b = run_experiment(&cfg2);
    assert_ne!(a.arrived, b.arrived, "distinct seeds should differ");
}

#[test]
fn all_schemes_face_the_same_arrival_stream() {
    // The arrival stream depends only on the seed/pattern/mix — never on
    // the scheme — so scheme comparisons are paired (Section IV).
    let catalog = RequestCatalog::paper();
    let mix = catalog.balanced_mix();
    let s1 = generate_stream(
        WorkloadPattern::L2Fluctuating,
        100.0,
        10.0,
        &mix,
        &mut SimRng::new(9).fork(0),
    );
    let s2 = generate_stream(
        WorkloadPattern::L2Fluctuating,
        100.0,
        10.0,
        &mix,
        &mut SimRng::new(9).fork(0),
    );
    assert_eq!(s1, s2);
    // And the runner's per-scheme results report identical arrivals.
    let a = run_experiment(&ExperimentConfig::smoke(Scheme::FairSched).with_seed(5));
    let b = run_experiment(&ExperimentConfig::smoke(Scheme::FullProfile).with_seed(5));
    assert_eq!(a.arrived, b.arrived);
}

#[test]
fn parallel_sweep_is_deterministic() {
    use v_mlp::engine::parallel::run_all;
    let configs: Vec<ExperimentConfig> =
        Scheme::PAPER.into_iter().map(|s| ExperimentConfig::smoke(s).with_seed(3)).collect();
    let r1 = run_all(&configs, 2);
    let r2 = run_all(&configs, 5); // different worker count, same results
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms);
    }
}
