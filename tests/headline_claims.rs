//! The paper's headline claims, asserted as reproducible shapes (see
//! EXPERIMENTS.md for the quantitative ledger):
//!
//! * v-MLP cuts tail latency versus the simple schedulers — "up to 50 %".
//! * v-MLP keeps QoS violations at or below every baseline's on volatile
//!   streams (Fig 10's ordering).
//! * The advantage concentrates on mid/high-volatility streams (Fig 13).

use mlp_bench::evalrun::{run_cells, Cell};
use mlp_bench::Scale;
use v_mlp::prelude::*;

/// A moderately loaded test scale — big enough for scheduling to matter,
/// small enough for CI.
fn scale() -> Scale {
    Scale { machines: 10, max_rate: 70.0, horizon_s: 40.0, seeds: 2, label: "ci" }
}

fn cell(scheme: Scheme, mix: MixSpec, pattern: WorkloadPattern) -> Cell {
    Cell { scheme: scheme.into(), pattern, mix, rate_mult: 1.0 }
}

#[test]
fn vmlp_cuts_tail_latency_versus_fairsched_on_high_vr() {
    let cells = [
        cell(
            Scheme::FairSched,
            MixSpec::SingleClass(VolatilityClass::High),
            WorkloadPattern::L2Fluctuating,
        ),
        cell(
            Scheme::VMlp,
            MixSpec::SingleClass(VolatilityClass::High),
            WorkloadPattern::L2Fluctuating,
        ),
    ];
    let res = run_cells(scale(), &cells, 11);
    let fair = res[0].latency_ms[2];
    let vmlp = res[1].latency_ms[2];
    assert!(
        vmlp <= fair * 0.5,
        "paper claims up to 50% tail reduction; got FairSched {fair:.0} ms vs v-MLP {vmlp:.0} ms"
    );
}

#[test]
fn vmlp_matches_or_beats_everyone_on_violations_high_vr() {
    let cells: Vec<Cell> = Scheme::PAPER
        .into_iter()
        .map(|s| cell(s, MixSpec::SingleClass(VolatilityClass::High), WorkloadPattern::L1Pulse))
        .collect();
    let res = run_cells(scale(), &cells, 13);
    let vmlp = res[4].violation;
    for r in &res[..4] {
        assert!(
            r.violation >= vmlp - 0.01,
            "{} violates less than v-MLP: {:.3} vs {:.3}",
            r.scheme,
            r.violation,
            vmlp
        );
    }
}

#[test]
fn vmlp_beats_simple_schedulers_on_every_pattern() {
    for pattern in WorkloadPattern::PAPER {
        let cells = [
            cell(Scheme::FairSched, MixSpec::Balanced, pattern),
            cell(Scheme::CurSched, MixSpec::Balanced, pattern),
            cell(Scheme::VMlp, MixSpec::Balanced, pattern),
        ];
        let res = run_cells(scale(), &cells, 17);
        let vmlp_p99 = res[2].latency_ms[2];
        for r in &res[..2] {
            assert!(
                vmlp_p99 < r.latency_ms[2],
                "{}: {} p99 {:.0} ms vs v-MLP {:.0} ms",
                pattern.label(),
                r.scheme,
                r.latency_ms[2],
                vmlp_p99
            );
        }
    }
}

#[test]
fn advantage_grows_with_volatility() {
    // Fig 13's story: the v-MLP/FairSched tail ratio shrinks (bigger win)
    // from the low-V_r stream to the high-V_r stream.
    let mk = |class| {
        [
            cell(Scheme::FairSched, MixSpec::SingleClass(class), WorkloadPattern::L2Fluctuating),
            cell(Scheme::VMlp, MixSpec::SingleClass(class), WorkloadPattern::L2Fluctuating),
        ]
    };
    let low = run_cells(scale(), &mk(VolatilityClass::Low), 19);
    let high = run_cells(scale(), &mk(VolatilityClass::High), 19);
    let ratio_low = low[1].latency_ms[2] / low[0].latency_ms[2].max(1e-9);
    let ratio_high = high[1].latency_ms[2] / high[0].latency_ms[2].max(1e-9);
    assert!(
        ratio_high < ratio_low,
        "normalized tail should improve with volatility: low {ratio_low:.2}, high {ratio_high:.2}"
    );
}

#[test]
fn vmlp_outperforms_advanced_baselines_under_fluctuation() {
    let cells: Vec<Cell> = [Scheme::PartProfile, Scheme::FullProfile, Scheme::VMlp]
        .into_iter()
        .map(|s| cell(s, MixSpec::Balanced, WorkloadPattern::L2Fluctuating))
        .collect();
    let res = run_cells(scale(), &cells, 23);
    let vmlp = &res[2];
    for r in &res[..2] {
        assert!(
            vmlp.latency_ms[2] <= r.latency_ms[2] * 1.05,
            "{} p99 {:.0} vs v-MLP {:.0}",
            r.scheme,
            r.latency_ms[2],
            vmlp.latency_ms[2]
        );
    }
}

#[test]
fn healing_actions_only_come_from_vmlp() {
    let cells: Vec<Cell> = Scheme::PAPER
        .into_iter()
        .map(|s| cell(s, MixSpec::Balanced, WorkloadPattern::L1Pulse))
        .collect();
    let res = run_cells(scale(), &cells, 29);
    for r in &res[..4] {
        assert_eq!(r.healing.0, 0.0, "{} should not delay-slot fill", r.scheme);
        assert_eq!(r.healing.1, 0.0, "{} should not stretch", r.scheme);
    }
    assert!(res[4].healing.0 > 0.0, "v-MLP should be actively healing under the pulse");
}
