//! Cross-crate checks of the volatility pipeline: catalog → V_r → bands →
//! Δt estimation against *live* profiles produced by an actual run.

use v_mlp::core::organizer::{DtPolicy, OrganizerPolicy};
use v_mlp::core::volatility::{Volatility, VolatilityBand};
use v_mlp::engine::profiling::warm_profiles;
use v_mlp::model::{RequestCatalog, VolatilityClass};
use v_mlp::net::NetworkModel;
use v_mlp::prelude::*;
use v_mlp::sched::PlanEnv;
use v_mlp::sim::{SimRng, SimTime};

#[test]
fn table5_bands_survive_the_full_pipeline() {
    let catalog = RequestCatalog::paper();
    let expected = [
        ("compose-post", VolatilityBand::High),
        ("getCheapest", VolatilityBand::High),
        ("basicSearch", VolatilityBand::Medium),
        ("read-home-timeline", VolatilityBand::Low),
        ("read-user-timeline", VolatilityBand::Low),
    ];
    for (name, band) in expected {
        let rt = catalog.request_by_name(name).unwrap();
        assert_eq!(Volatility::of_request(rt, &catalog).band(), band, "{name}");
        // Denormalized class agrees with the band.
        assert_eq!(VolatilityBand::from(rt.class()), band, "{name}");
    }
}

#[test]
fn class_and_band_boundaries_agree() {
    for vr in [0.0, 0.1, 0.3, 0.300001, 0.5, 0.699999, 0.7, 0.9, 1.0] {
        let band = Volatility::new(vr).band();
        let class = VolatilityClass::from_vr(vr);
        assert_eq!(VolatilityBand::from(class), band, "vr = {vr}");
    }
}

#[test]
fn delta_t_is_monotone_in_volatility_on_live_profiles() {
    let catalog = RequestCatalog::paper();
    let profiles = warm_profiles(&catalog, 300, &mut SimRng::new(3));
    let net = NetworkModel::paper_default();
    let ctx = PlanEnv { now: SimTime::ZERO, profiles: &profiles, catalog: &catalog, net: &net };
    // For every service with meaningful variance, the high-band budget must
    // dominate the medium-band budget, which must dominate the fastest
    // historical observation.
    for svc in catalog.services.services() {
        // Some catalog templates (e.g. ts-route-service) are not invoked
        // by any Table V request and thus have no profile history.
        let Some(fastest) = profiles.min_exec_ms(svc.id) else { continue };
        let mid = OrganizerPolicy::new(Volatility::new(0.5)).delta_t_ms(svc, 1.0, &ctx);
        let high = OrganizerPolicy::new(Volatility::new(0.8)).delta_t_ms(svc, 1.0, &ctx);
        assert!(high >= mid, "{}: high-band Δt {high:.1} < medium-band {mid:.1}", svc.name);
        assert!(high >= fastest, "{}", svc.name);
    }
}

#[test]
fn dt_policies_order_correctly_on_live_profiles() {
    let catalog = RequestCatalog::paper();
    let profiles = warm_profiles(&catalog, 300, &mut SimRng::new(4));
    let net = NetworkModel::paper_default();
    let ctx = PlanEnv { now: SimTime::ZERO, profiles: &profiles, catalog: &catalog, net: &net };
    let svc = catalog.services.by_name("ts-order-service").unwrap(); // High I
    let mk = |policy| OrganizerPolicy {
        dt_policy: policy,
        ..OrganizerPolicy::new(Volatility::new(0.8))
    };
    let mean = mk(DtPolicy::AlwaysMean).delta_t_ms(svc, 1.0, &ctx);
    let p99 = mk(DtPolicy::AlwaysP99).delta_t_ms(svc, 1.0, &ctx);
    let banded = mk(DtPolicy::Banded).delta_t_ms(svc, 1.0, &ctx);
    assert!(mean < p99, "mean {mean:.1} vs p99 {p99:.1}");
    // High-band banded ≈ p99 for a high-volatility request.
    assert!((banded - p99).abs() / p99 < 0.05, "banded {banded:.1} vs p99 {p99:.1}");
}

#[test]
fn run_enriches_profiles_with_contended_cases() {
    // After a real run, the profile store contains *observed* execution
    // cases whose spread exceeds the warm-up's abundant-resource spread —
    // the feedback loop of Fig 8.
    let cfg = ExperimentConfig::smoke(Scheme::CurSched).with_seed(12);
    let catalog = RequestCatalog::paper();
    let root = SimRng::new(cfg.seed);
    let mut warm_rng = root.fork(2);
    let warm = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);
    let warm_count = warm.case_count(v_mlp::model::benchmarks::sn::NGINX);

    let mut arr_rng = root.fork(0);
    let mut sim_rng = root.fork(1);
    let mix = cfg.mix.resolve(&catalog);
    let arrivals = v_mlp::workload::generate_stream(
        cfg.pattern,
        cfg.max_rate,
        cfg.horizon_s,
        &mix,
        &mut arr_rng,
    );
    let mut sched = default_registry().build(&cfg.scheme, cfg.seed).unwrap();
    let mut source = v_mlp::workload::SliceSource::new(&arrivals);
    let out = v_mlp::engine::sim::simulate(
        &cfg,
        &catalog,
        warm,
        &mut source,
        sched.as_mut(),
        &mut sim_rng,
    );
    let after = out.profiles.case_count(v_mlp::model::benchmarks::sn::NGINX);
    assert!(after > warm_count, "run should append execution cases: {after} vs {warm_count}");
}

#[test]
fn full_run_exports_valid_zipkin_traces() {
    use v_mlp::trace::zipkin;
    let catalog = RequestCatalog::paper();
    let cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(21);
    let (result, raw) =
        Experiment::from_config(cfg).catalog(&catalog).run_full().expect("config is valid");
    let spans = zipkin::export(&raw.collector, &catalog);
    assert_eq!(spans.len(), raw.collector.spans().len());
    // Every non-root span's parent exists in the export.
    use std::collections::HashSet;
    let ids: HashSet<&str> = spans.iter().map(|s| s.id.as_str()).collect();
    for s in &spans {
        if let Some(p) = &s.parent_id {
            assert!(ids.contains(p.as_str()), "dangling parent {p}");
        }
    }
    // The export is consistent with the summary.
    assert!(result.completed > 0);
    let json = zipkin::to_json(&spans).unwrap();
    assert!(json.len() > 1000);
}

#[test]
fn per_type_stats_cover_all_five_types() {
    let catalog = RequestCatalog::paper();
    let cfg = ExperimentConfig::smoke(Scheme::CurSched).with_seed(22);
    let (_, raw) =
        Experiment::from_config(cfg).catalog(&catalog).run_full().expect("config is valid");
    let stats = raw.collector.per_type_stats();
    assert_eq!(stats.len(), 5, "balanced mix exercises every Table V type");
    let total: usize = stats.iter().map(|s| s.1).sum();
    assert_eq!(total, raw.collector.completed());
}
