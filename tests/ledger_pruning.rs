//! Long-run proof that ledger pruning bounds retained timeline points.
//!
//! Every sampling tick the engine prunes each machine's ledger to the
//! trailing 2 s window and publishes the retained timeline lengths through
//! `MetricsRegistry` (`ledger_timeline_m<i>` per machine, plus cluster-wide
//! `ledger_timeline_max` high-water mark and `ledger_timeline_total`).
//! Retention must scale with the *active window* (2 s past + 10 s planning
//! horizon), not with how long the simulation has been running — otherwise
//! ledger queries and memory would grow without bound on long runs.

use v_mlp::engine::profiling::warm_profiles;
use v_mlp::engine::sim::simulate;
use v_mlp::prelude::*;
use v_mlp::sim::SimRng;
use v_mlp::trace::metrics::names;
use v_mlp::workload::{generate_stream, SliceSource, WorkloadPattern};

/// Runs v-MLP under a constant offered load for `horizon_s` simulated
/// seconds and returns (timeline high-water mark, final per-tick total).
fn run_constant_load(horizon_s: f64) -> (f64, f64) {
    let mut cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(7);
    cfg.pattern = WorkloadPattern::Constant;
    cfg.horizon_s = horizon_s;
    let catalog = RequestCatalog::paper();
    let root = SimRng::new(cfg.seed);
    let mut arr_rng = root.fork(0);
    let mut sim_rng = root.fork(1);
    let mut warm_rng = root.fork(2);
    let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);
    let mix = cfg.mix.resolve(&catalog);
    let arrivals = generate_stream(cfg.pattern, cfg.max_rate, cfg.horizon_s, &mix, &mut arr_rng);
    let mut sched = default_registry().build(&cfg.scheme, cfg.seed).unwrap();
    let mut source = SliceSource::new(&arrivals);
    let out = simulate(&cfg, &catalog, profiles, &mut source, sched.as_mut(), &mut sim_rng);

    let max = out
        .metrics
        .gauge(names::LEDGER_TIMELINE_MAX)
        .expect("engine publishes the timeline high-water mark");
    let total = out
        .metrics
        .gauge(names::LEDGER_TIMELINE_TOTAL)
        .expect("engine publishes the per-tick timeline total");
    // Per-machine gauges exist for every machine.
    for m in 0..cfg.machines as u32 {
        assert!(
            out.metrics.gauge(&names::ledger_timeline(m)).is_some(),
            "missing per-machine timeline gauge for machine {m}"
        );
    }
    assert!(max >= 0.0 && total >= 0.0);
    (max, total)
}

#[test]
fn tighter_retention_window_still_passes_the_auditor() {
    // The 2 s default retention is a config knob now; a run pruning much
    // more aggressively (0.5 s) must stay invariant-clean — the auditor
    // cross-checks reservations against run state every tick, so a window
    // that pruned still-needed breakpoints would trip it.
    let cfg = ExperimentConfig::smoke(Scheme::VMlp)
        .with_seed(11)
        .with_ledger_retention(0.5)
        .with_auditor(true);
    let catalog = RequestCatalog::paper();
    let (r, out) = Experiment::from_config(cfg).catalog(&catalog).run_full().unwrap();
    assert_eq!(r.invariant_violations, 0, "report: {:?}", out.invariant_report);
    assert!(out.invariant_report.is_none());
    assert!(r.completed > 0);

    // And the tighter window retains no more than the default one.
    let default_cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(11).with_auditor(true);
    let (_, out_default) =
        Experiment::from_config(default_cfg).catalog(&catalog).run_full().unwrap();
    let tight_max = out.metrics.gauge(names::LEDGER_TIMELINE_MAX).unwrap();
    let default_max = out_default.metrics.gauge(names::LEDGER_TIMELINE_MAX).unwrap();
    assert!(
        tight_max <= default_max,
        "0.5 s window retained more timeline points ({tight_max}) than the 2 s default ({default_max})"
    );
}

#[test]
fn pruning_bounds_retained_timeline_points() {
    // A reserving scheme under sustained load, run 3× longer: the retained
    // timeline must plateau at the active-window size, not keep growing.
    let (short_max, _) = run_constant_load(10.0);
    let (long_max, long_total) = run_constant_load(30.0);

    assert!(short_max > 0.0, "v-MLP reserves, so timelines must be non-empty");

    // Absolute sanity bound: the active window holds ≈12 s of reservations
    // (2 s retained past + 10 s planning horizon). At smoke load (40 req/s,
    // ≤ 8 nodes/request, 2 breakpoints/reservation, 8 machines) that is a
    // few hundred points per machine even before trims release tails early.
    assert!(
        long_max < 4_000.0,
        "per-machine timeline high-water mark {long_max} suggests pruning is not engaged"
    );

    // Scale-invariance: tripling the run length must not triple retention.
    // Both runs see the same offered load, so their plateaus should agree
    // to well within 2×.
    assert!(
        long_max <= short_max * 2.0,
        "timeline grew with run length ({short_max} @10s vs {long_max} @30s): pruning unbounded"
    );

    // The per-tick total is consistent with the per-machine high-water mark.
    assert!(long_total <= long_max * 8.0 + f64::EPSILON, "total exceeds machines × max");
}
