//! Smoke tests for every figure/table regeneration path: each report
//! renders, is non-trivial, and contains its identifying markers. The
//! heavyweight grids run at tiny scale here; the binaries default to
//! `--scale=small`.

use mlp_bench::{
    fig02_heterogeneity, fig03_resources, fig04_comm, fig05_challenge, fig09_patterns, fig10_qos,
    fig11_utilization, fig12_latency, fig13_tail, fig14_throughput, tables, Scale,
};

#[test]
fn fig02_report() {
    let r = fig02_heterogeneity::report(1);
    for svc in ["ts-order", "ts-ticketinfo", "ts-travel", "ts-basic", "ts-seat", "ts-station"] {
        assert!(r.contains(svc), "missing {svc} in:\n{r}");
    }
}

#[test]
fn fig03_reports() {
    assert!(fig03_resources::fig3a_report().contains("social-graph-service"));
    assert!(fig03_resources::fig3b_report(1).contains("surge peaks"));
    let c = fig03_resources::fig3c_report(1);
    assert!(c.contains("High") && c.contains("Moderate") && c.contains("Less"));
}

#[test]
fn fig04_report() {
    let r = fig04_comm::report(1);
    assert!(r.contains("single machine"));
    assert!(r.contains("across machines"));
}

#[test]
fn fig05_report() {
    let r = fig05_challenge::report(1);
    assert!(r.contains("late invocations"));
    assert!(r.contains("v-MLP"));
}

#[test]
fn fig09_report() {
    let r = fig09_patterns::report(Scale::tiny(), 1);
    assert!(r.contains("L1") && r.contains("L2") && r.contains("L3"));
    assert!(r.contains("generated"));
}

#[test]
fn fig10_report_tiny() {
    let r = fig10_qos::report(Scale::tiny(), 1);
    assert!(r.contains("normalized to v-MLP"));
    assert!(r.contains("High V_r"));
    // Three patterns × header rows.
    assert_eq!(r.matches("Fig 10").count(), 3);
}

#[test]
fn fig11_report_tiny() {
    // Needs a horizon long enough to contain the 40 s peak.
    let scale = Scale { machines: 6, max_rate: 30.0, horizon_s: 100.0, seeds: 1, label: "t" };
    let r = fig11_utilization::report(scale, 1);
    assert!(r.contains("peak @ 40s"));
    assert!(r.contains("after/before"));
}

#[test]
fn fig12_report_tiny() {
    let r = fig12_latency::report(Scale::tiny(), 1);
    assert_eq!(r.matches("Fig 12").count(), fig12_latency::LEVELS.len());
    assert!(r.contains("p99"));
}

#[test]
fn fig13_report_tiny() {
    let r = fig13_tail::report(Scale::tiny(), 1);
    assert_eq!(r.matches("Fig 13").count(), 3);
    assert!(r.contains("normalized to FairSched"));
}

#[test]
fn fig14_report_tiny() {
    let r = fig14_throughput::report(Scale::tiny(), 1);
    assert!(r.contains("100% high"));
    assert!(r.contains("0% high"));
}

#[test]
fn tables_report() {
    let t = tables::all();
    for marker in ["Table I", "Table II", "Table III", "Table V", "Table VI"] {
        assert!(t.contains(marker));
    }
}
