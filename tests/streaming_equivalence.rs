//! Streaming-lifecycle equivalence properties (the tentpole contract):
//! the lazy arrival pipeline must be bit-identical to the dense one, a
//! fixed seed must reproduce an open-loop run exactly, and streaming
//! statistics must agree with exact records on everything that is not an
//! estimator.

use proptest::prelude::*;
use v_mlp::engine::profiling::warm_profiles;
use v_mlp::engine::sim::simulate;
use v_mlp::prelude::*;
use v_mlp::sim::SimRng;
use v_mlp::workload::generate_stream;

const SCHEMES: [Scheme; 5] =
    [Scheme::CurSched, Scheme::FairSched, Scheme::PartProfile, Scheme::FullProfile, Scheme::VMlp];

/// The raw slice pipeline the engine used before sources existed:
/// materialize the dense trace, then replay it through a [`SliceSource`].
fn run_slice_pipeline(cfg: &ExperimentConfig) -> (usize, usize, usize, usize) {
    let catalog = RequestCatalog::paper();
    let root = SimRng::new(cfg.seed);
    let mut arr_rng = root.fork(0);
    let mut sim_rng = root.fork(1);
    let mut warm_rng = root.fork(2);
    let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);
    let mix = cfg.mix.resolve(&catalog);
    let arrivals = generate_stream(cfg.pattern, cfg.max_rate, cfg.horizon_s, &mix, &mut arr_rng);
    let mut sched = default_registry().build(&cfg.scheme, cfg.seed).unwrap();
    let mut source = SliceSource::new(&arrivals);
    let out = simulate(cfg, &catalog, profiles, &mut source, sched.as_mut(), &mut sim_rng);
    (out.arrived, out.collector.completed(), out.unfinished, out.request_table_peak)
}

proptest! {
    // Whole-simulation property runs are expensive; a handful of sampled
    // seeds per scheme is plenty on top of the fixed-seed suites.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// SliceSource replay through the `Experiment` builder is byte-identical
    /// to the raw dense-trace pipeline, for every scheme and any seed.
    #[test]
    fn slice_replay_matches_raw_pipeline_across_schemes(seed in 0u64..10_000) {
        for scheme in SCHEMES {
            let cfg = ExperimentConfig::smoke(scheme).with_seed(seed);
            let r = Experiment::from_config(cfg.clone()).run().expect("smoke config is valid");
            let (arrived, completed, unfinished, peak) = run_slice_pipeline(&cfg);
            prop_assert_eq!(r.arrived, arrived, "{}", scheme.label());
            prop_assert_eq!(r.completed, completed, "{}", scheme.label());
            prop_assert_eq!(r.unfinished, unfinished, "{}", scheme.label());
            prop_assert_eq!(r.request_table_peak, peak, "{}", scheme.label());
        }
    }

    /// A request-capped open-loop run with a fixed seed is bit-reproducible:
    /// every float in the summary comes out identical on a second run.
    #[test]
    fn open_loop_fixed_seed_is_bit_reproducible(seed in 0u64..10_000) {
        let cfg = ExperimentConfig::smoke(Scheme::VMlp)
            .with_seed(seed)
            .with_stream_stats(true)
            .with_max_requests(120);
        let a = Experiment::from_config(cfg.clone()).run().expect("valid");
        let b = Experiment::from_config(cfg).run().expect("valid");
        prop_assert_eq!(a.arrived, b.arrived);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.unfinished, b.unfinished);
        prop_assert_eq!(a.latency_ms, b.latency_ms, "percentiles must match bitwise");
        prop_assert_eq!(a.mean_latency_ms.to_bits(), b.mean_latency_ms.to_bits());
        prop_assert_eq!(a.violation_rate.to_bits(), b.violation_rate.to_bits());
        prop_assert_eq!(a.utilization.values(), b.utilization.values());
        prop_assert_eq!(a.request_table_peak, b.request_table_peak);
    }
}

#[test]
fn streaming_stats_agree_with_exact_records() {
    // Streaming mode changes how completions are *summarized*, never how
    // the simulation runs: counts must agree exactly, the Welford mean to
    // float tolerance, and the P² tail to estimator tolerance.
    let base = ExperimentConfig::smoke(Scheme::VMlp).with_seed(77);
    let exact = Experiment::from_config(base.clone()).run().unwrap();
    let streamed = Experiment::from_config(base.with_stream_stats(true)).run().unwrap();

    assert_eq!(streamed.arrived, exact.arrived);
    assert_eq!(streamed.completed, exact.completed);
    assert_eq!(streamed.unfinished, exact.unfinished);
    assert_eq!(streamed.completed_in_horizon, exact.completed_in_horizon);
    assert_eq!(streamed.good_in_horizon, exact.good_in_horizon);
    assert_eq!(streamed.violation_rate, exact.violation_rate);
    assert_eq!(streamed.request_table_peak, exact.request_table_peak);
    assert_eq!(streamed.healing, exact.healing);

    let mean_err = (streamed.mean_latency_ms - exact.mean_latency_ms).abs();
    assert!(mean_err < 1e-6 * exact.mean_latency_ms.max(1.0), "Welford mean drifted {mean_err}");

    // P² quantiles are estimates; at smoke-run sample counts they should
    // land within a quarter of the exact value and preserve ordering.
    for (i, (s, e)) in streamed.latency_ms.iter().zip(exact.latency_ms.iter()).enumerate() {
        assert!((s - e).abs() <= 0.25 * e.max(1.0), "percentile {i}: streaming {s} vs exact {e}");
    }
    assert!(streamed.latency_ms[0] <= streamed.latency_ms[1]);
    assert!(streamed.latency_ms[1] <= streamed.latency_ms[2]);
}

#[test]
fn profile_retention_default_is_byte_identical() {
    // `profile_retention: 0` (the default) must not perturb results, and a
    // bounded window must still produce a sane, clean run.
    let cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(13);
    let a = Experiment::from_config(cfg.clone()).run().unwrap();
    let b = Experiment::from_config(cfg.clone().with_profile_retention(0)).run().unwrap();
    assert_eq!(a.latency_ms, b.latency_ms);
    assert_eq!(a.completed, b.completed);

    let bounded =
        Experiment::from_config(cfg.with_profile_retention(64).with_auditor(true)).run().unwrap();
    assert!(bounded.completed > 0);
    assert_eq!(bounded.invariant_violations, 0, "bounded history must stay invariant-clean");
}
