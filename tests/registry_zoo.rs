//! Acceptance tests for the scheduler registry and the search contender:
//! the deprecated `Scheme` enum path and the registry spec path produce
//! byte-identical results for every paper scheme, `SearchSched` is
//! deterministic from the experiment seed and auditor-clean, and the
//! committed `sweeps/*.json` defaults reproduce the historically
//! hardcoded scheme lists of the figure binaries exactly.

use mlp_bench::{fig14_throughput, fig_faults, fig_overload, fig_soak, fig_zoo};
use v_mlp::prelude::*;

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn run_serialized(cfg: ExperimentConfig) -> String {
    let r = Experiment::from_config(cfg).run().expect("config is valid");
    serde_json::to_string(&r).expect("result serializes")
}

/// The enum shim and the registry spec path are the same scheduler: a
/// fixed-seed smoke run serializes byte-identically whichever way the
/// scheme was named, for all five paper schemes.
#[test]
fn enum_shim_and_registry_specs_are_byte_identical() {
    for scheme in Scheme::PAPER {
        let via_enum = run_serialized(ExperimentConfig::smoke(scheme).with_seed(2022));
        let spec = SchemeSpec::parse(scheme.label()).expect("labels parse as specs");
        assert_eq!(spec, scheme.spec(), "{scheme:?}: label must resolve to the same spec");
        let via_registry = run_serialized(ExperimentConfig::smoke(spec).with_seed(2022));
        assert_eq!(via_enum, via_registry, "{scheme:?}: registry path diverged from the enum path");
    }
}

/// Registry-built and enum-built schedulers carry the same display names
/// everywhere the figures print them.
#[test]
fn display_names_round_trip_through_the_registry() {
    for scheme in Scheme::PAPER {
        assert_eq!(scheme.spec().display_name(), scheme.label());
    }
    assert_eq!(SchemeSpec::parse("vmlp:healing=off").unwrap().display_name(), "v-MLP[healing=off]");
    assert_eq!(SchemeSpec::named("searchsched").display_name(), "SearchSched");
}

/// SearchSched is deterministic from the experiment seed: two identical
/// runs serialize byte-identically, audit trail included.
#[test]
fn searchsched_is_deterministic_from_the_seed() {
    let cfg = || {
        ExperimentConfig::smoke(SchemeSpec::named("searchsched")).with_seed(2022).with_audit(true)
    };
    let catalog = RequestCatalog::paper();
    let (ra, outa) = Experiment::from_config(cfg()).catalog(&catalog).run_full().unwrap();
    let (rb, outb) = Experiment::from_config(cfg()).catalog(&catalog).run_full().unwrap();
    assert_eq!(
        serde_json::to_string(&ra).unwrap(),
        serde_json::to_string(&rb).unwrap(),
        "same-seed SearchSched results diverged"
    );
    assert_eq!(outa.audit.to_jsonl(), outb.audit.to_jsonl(), "audit trails diverged");
    assert!(ra.completed > 0, "the contender must actually schedule");
}

/// SearchSched stays auditor-clean on the plain smoke run and under a
/// fault storm (the fig14/fig_faults acceptance surface at smoke size).
#[test]
fn searchsched_is_auditor_clean_with_and_without_faults() {
    let storm = FaultConfig {
        enabled: true,
        machine_crashes: 2,
        storm_start_ms: 2_000,
        storm_duration_ms: 4_000,
        outage_ms: 1_500,
        transient_fail_prob: 0.05,
        degrade_start_ms: 2_500,
        degrade_duration_ms: 2_000,
        degrade_factor: 4.0,
    };
    for faults in [FaultConfig::disabled(), storm] {
        let stormy = faults.is_active();
        let cfg = ExperimentConfig::smoke(SchemeSpec::named("searchsched"))
            .with_seed(11)
            .with_faults(faults)
            .with_auditor(true);
        let (r, out) =
            Experiment::from_config(cfg).catalog(&RequestCatalog::paper()).run_full().unwrap();
        assert_eq!(
            r.invariant_violations, 0,
            "faults={stormy}: auditor flagged violations; report: {:?}",
            out.invariant_report
        );
        assert!(r.completed > 0, "faults={stormy}: nothing completed");
        if stormy {
            assert!(r.machine_crashes > 0, "the storm must actually land");
        }
    }
}

/// Unknown names and malformed params surface as `InvalidConfig` (exit
/// code 2) naming the offender and the registered schemes — through the
/// `Experiment` builder, not just the registry.
#[test]
fn bad_specs_are_typed_config_errors() {
    let bad_spec = |spec: &str| match Experiment::from_config(ExperimentConfig::smoke(Scheme::VMlp))
        .scheme_spec(spec)
    {
        Ok(_) => panic!("spec `{spec}` should have been rejected"),
        Err(e) => e,
    };
    let err = bad_spec("nosuchsched");
    assert_eq!(err.exit_code(), 2);
    let msg = err.to_string();
    assert!(msg.contains("nosuchsched") && msg.contains("registered schemes"), "{msg}");

    let err = bad_spec("vmlp:healing=sideways");
    assert_eq!(err.exit_code(), 2);
    assert!(err.to_string().contains("healing"), "{err}");
}

/// Malformed spec strings fail at parse with a message naming the spec —
/// empty names, empty tokens, empty keys, and duplicate keys are all
/// rejected rather than silently normalized (a duplicate key used to
/// last-writer-win through the params map).
#[test]
fn malformed_spec_shapes_are_parse_errors() {
    for spec in ["", "  ", ":iters=4", "vmlp:", "vmlp:a=1,,b=2", "vmlp:=3", "vmlp: =3"] {
        let err = SchemeSpec::parse(spec).expect_err(spec);
        assert!(err.contains(&format!("`{spec}`")), "error should name the spec: {err}");
    }
    let err = SchemeSpec::parse("vmlp:healing=off,healing=on").unwrap_err();
    assert!(err.contains("twice") && err.contains("healing"), "{err}");
    // Same key through different value forms is still a duplicate.
    let err = SchemeSpec::parse("searchsched:iters,iters=4").unwrap_err();
    assert!(err.contains("twice"), "{err}");
}

/// Unknown params surface as `InvalidConfig` (exit 2) listing the
/// scheduler's known params, through the Experiment builder.
#[test]
fn unknown_params_are_typed_config_errors() {
    let err = match Experiment::from_config(ExperimentConfig::smoke(Scheme::VMlp))
        .scheme_spec("vmlp:warpdrive=9")
    {
        Ok(_) => panic!("unknown param must be rejected"),
        Err(e) => e,
    };
    assert_eq!(err.exit_code(), 2);
    let msg = err.to_string();
    assert!(msg.contains("warpdrive") && msg.contains("known params"), "{msg}");
}

/// Empty and truncated sweep files are `InvalidConfig` (exit 2), never a
/// panic and never a silently empty sweep: a 0-byte file, a no-scheme
/// document, and a half-written document all fail loudly.
#[test]
fn empty_sweep_files_are_typed_config_errors() {
    let dir = std::env::temp_dir().join(format!("vmlp-sweep-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, contents) in
        [("zero.json", ""), ("none.json", r#"{"schemes": []}"#), ("torn.json", r#"{"schem"#)]
    {
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        let err = SweepConfig::load(&path).and_then(|s| s.validate().map(|()| s)).expect_err(name);
        assert_eq!(err.exit_code(), 2, "{name}: {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed sweep files reproduce the figure binaries' historically
/// hardcoded scheme lists exactly — the config-driven path defaults to
/// today's figures.
#[test]
fn committed_sweeps_match_the_default_sweeps() {
    for (file, default) in [
        ("sweeps/paper.json", fig14_throughput::default_sweep()),
        ("sweeps/faults.json", fig_faults::default_sweep()),
        ("sweeps/soak.json", fig_soak::default_sweep()),
        ("sweeps/overload.json", fig_overload::default_sweep()),
        ("sweeps/zoo.json", fig_zoo::default_sweep()),
    ] {
        let committed = SweepConfig::load(&repo_path(file)).expect("committed sweep loads");
        committed.validate().expect("committed sweep validates");
        assert_eq!(committed, default, "{file} drifted from the binary's default sweep");
    }
}

/// The zoo sweep runs every registered scheme through the steady cell at
/// tiny scale with the auditor on and zero violations — the registry's
/// end-to-end proving ground (CI runs the same gate at small scale via
/// the `fig_zoo` binary).
#[test]
fn zoo_smoke_is_auditor_clean_for_every_registered_scheme() {
    let scale = mlp_bench::Scale::tiny();
    for spec in fig_zoo::default_sweep().schemes {
        let cfg = fig_zoo::steady_config(&scale, spec.clone(), 7);
        let r = Experiment::from_config(cfg).run().expect("zoo config is valid");
        assert_eq!(
            r.invariant_violations,
            0,
            "{}: auditor flagged violations",
            spec.display_name()
        );
        assert!(r.completed > 0, "{}: nothing completed", spec.display_name());
    }
}
