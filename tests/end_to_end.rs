//! Cross-crate end-to-end invariants: every scheduling scheme drives the
//! full simulator without losing requests, violating causality, or
//! breaking resource accounting.

use std::collections::HashMap;
use v_mlp::engine::profiling::warm_profiles;
use v_mlp::engine::sim::simulate;
use v_mlp::prelude::*;
use v_mlp::sim::{SimRng, SimTime};
use v_mlp::trace::RequestId;
use v_mlp::workload::{generate_stream, SliceSource};

fn run_raw(scheme: Scheme, seed: u64) -> (v_mlp::engine::sim::SimOutput, RequestCatalog) {
    let cfg = ExperimentConfig::smoke(scheme).with_seed(seed);
    let catalog = RequestCatalog::paper();
    let root = SimRng::new(cfg.seed);
    let mut arr_rng = root.fork(0);
    let mut sim_rng = root.fork(1);
    let mut warm_rng = root.fork(2);
    let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);
    let mix = cfg.mix.resolve(&catalog);
    let arrivals = generate_stream(cfg.pattern, cfg.max_rate, cfg.horizon_s, &mix, &mut arr_rng);
    let mut sched = default_registry().build(&cfg.scheme, cfg.seed).unwrap();
    let mut source = SliceSource::new(&arrivals);
    let out = simulate(&cfg, &catalog, profiles, &mut source, sched.as_mut(), &mut sim_rng);
    (out, catalog)
}

#[test]
fn no_scheme_loses_requests() {
    for scheme in Scheme::PAPER {
        let (out, _) = run_raw(scheme, 101);
        assert!(out.arrived > 100, "{}: too few arrivals", scheme.label());
        assert!(
            out.collector.completed() + out.unfinished >= out.arrived,
            "{}: {} completed + {} unfinished < {} arrived",
            scheme.label(),
            out.collector.completed(),
            out.unfinished,
            out.arrived
        );
        // Smoke load is light: virtually everything should finish.
        assert!(
            out.collector.completed() as f64 >= 0.95 * out.arrived as f64,
            "{}: only {}/{} completed",
            scheme.label(),
            out.collector.completed(),
            out.arrived
        );
    }
}

#[test]
fn spans_respect_dag_causality_for_all_schemes() {
    for scheme in Scheme::PAPER {
        let (out, catalog) = run_raw(scheme, 202);
        let mut per_req: HashMap<RequestId, Vec<&v_mlp::trace::Span>> = HashMap::new();
        for s in out.collector.spans() {
            per_req.entry(s.request).or_default().push(s);
        }
        for (_, spans) in per_req {
            let dag = &catalog.request(spans[0].request_type).dag;
            let mut start = HashMap::new();
            let mut end = HashMap::new();
            for s in &spans {
                start.insert(s.dag_node, s.start);
                end.insert(s.dag_node, s.end);
            }
            for &(p, c) in dag.edges() {
                if let (Some(&pe), Some(&cs)) = (end.get(&p), start.get(&c)) {
                    assert!(
                        cs >= pe,
                        "{}: child {c} started before parent {p} ended",
                        scheme.label()
                    );
                }
            }
        }
    }
}

#[test]
fn every_span_has_sane_satisfaction_and_duration() {
    for scheme in Scheme::PAPER {
        let (out, _) = run_raw(scheme, 303);
        for s in out.collector.spans() {
            assert!(
                (0.05..=1.0 + 1e-9).contains(&s.satisfaction),
                "{}: satisfaction {} out of range",
                scheme.label(),
                s.satisfaction
            );
            assert!(s.end > s.start, "{}: zero-length span", scheme.label());
        }
    }
}

#[test]
fn latencies_are_bounded_below_by_ideal() {
    let (out, catalog) = run_raw(Scheme::VMlp, 404);
    for rec in out.collector.requests() {
        let rt = catalog.request(rec.request_type);
        let ideal = rt.ideal_latency_ms(&catalog.services);
        let measured = rec.latency().as_millis_f64();
        // Lognormal execution noise can undershoot nominal per node, but
        // never by much across a whole chain (communication adds too).
        assert!(
            measured > ideal * 0.5,
            "request {:?}: measured {measured:.1} ms vs ideal {ideal:.1} ms",
            rec.id
        );
    }
}

#[test]
fn completed_requests_have_all_spans() {
    let (out, catalog) = run_raw(Scheme::PartProfile, 505);
    let mut span_counts: HashMap<RequestId, usize> = HashMap::new();
    for s in out.collector.spans() {
        *span_counts.entry(s.request).or_default() += 1;
    }
    for rec in out.collector.requests() {
        let dag_len = catalog.request(rec.request_type).dag.len();
        assert_eq!(
            span_counts.get(&rec.id).copied().unwrap_or(0),
            dag_len,
            "request {:?} missing spans",
            rec.id
        );
    }
}

#[test]
fn utilization_series_covers_horizon() {
    let (out, _) = run_raw(Scheme::CurSched, 606);
    let cfg = ExperimentConfig::smoke(Scheme::CurSched);
    let expected = (cfg.horizon_s / cfg.sample_period_s) as usize;
    assert!(
        out.utilization.len() + 1 >= expected,
        "only {} utilization samples, expected ≈{expected}",
        out.utilization.len()
    );
    assert!(out.utilization.values().iter().all(|&u| (0.0..=1.0).contains(&u)));
}

#[test]
fn requests_finish_after_they_arrive() {
    let (out, _) = run_raw(Scheme::FullProfile, 707);
    for rec in out.collector.requests() {
        assert!(rec.end > rec.arrival);
        assert!(rec.arrival >= SimTime::ZERO);
    }
}

#[test]
fn saturated_runs_terminate_and_account() {
    // Deliberate overload: offered load far beyond capacity. The run must
    // cut off at the drain wall with every request accounted for (the
    // engine's backoff/throttle hygiene, not a paper scenario).
    for scheme in [Scheme::CurSched, Scheme::PartProfile, Scheme::VMlp] {
        let cfg = ExperimentConfig {
            machines: 2,
            max_rate: 60.0,
            horizon_s: 5.0,
            warmup_cases: 10,
            ..ExperimentConfig::paper_default(scheme)
        }
        .with_seed(31);
        let r = Experiment::from_config(cfg).run().expect("overload config is valid");
        // ≈105 arrivals expected (Poisson, σ≈10); assert well below the
        // mean so the check is about overload, not the RNG stream.
        assert!(r.arrived > 60, "{}: only {} arrivals", scheme.label(), r.arrived);
        assert!(
            r.completed + r.unfinished >= r.arrived,
            "{}: lost requests under saturation",
            scheme.label()
        );
        assert!((0.0..=1.0).contains(&r.violation_rate));
    }
}

#[test]
fn drain_wall_caps_run_length() {
    // Even with an absurd backlog, no request record can end after the
    // hard cap (horizon × drain_factor).
    let cfg = ExperimentConfig {
        machines: 2,
        max_rate: 80.0,
        horizon_s: 3.0,
        warmup_cases: 10,
        drain_factor: 2.0,
        ..ExperimentConfig::paper_default(Scheme::FullProfile)
    }
    .with_seed(37);
    let catalog = RequestCatalog::paper();
    let root = SimRng::new(cfg.seed);
    let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut root.fork(2));
    let mix = cfg.mix.resolve(&catalog);
    let arrivals =
        generate_stream(cfg.pattern, cfg.max_rate, cfg.horizon_s, &mix, &mut root.fork(0));
    let mut sched = default_registry().build(&cfg.scheme, cfg.seed).unwrap();
    let mut source = SliceSource::new(&arrivals);
    let out = simulate(&cfg, &catalog, profiles, &mut source, sched.as_mut(), &mut root.fork(1));
    let wall = SimTime::from_secs_f64(cfg.horizon_s * cfg.drain_factor);
    for rec in out.collector.requests() {
        assert!(rec.end <= wall, "request finished after the drain wall");
    }
}
