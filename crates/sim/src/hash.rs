//! A fast, deterministic hasher for scheduler-internal maps.
//!
//! The simulator's hot paths key hash maps on small integer tuples
//! (machine ids, request ids, probe keys). `std`'s default SipHash is
//! DoS-resistant but costs more than the lookups it guards; this is the
//! classic Fowler–Noll–Vo-style multiply-xor mix (the `rustc`/FxHash
//! recipe), an order of magnitude cheaper on word-sized keys.
//!
//! Two properties matter here:
//!
//! * **Interior state only.** Every map using [`FastHashMap`] is private
//!   scheduler state keyed and consumed by the simulator itself — no
//!   untrusted input picks the keys, so HashDoS resistance buys nothing.
//! * **No observable order.** Swapping the hasher changes bucket order,
//!   which is legal precisely because no simulation result may depend on
//!   map iteration order: `std`'s `RandomState` already seeds every map
//!   instance differently, so the determinism suite (byte-identical
//!   schedules run-to-run) proves order independence continuously.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-xor hasher (FxHash recipe). Deterministic: no random
/// seed, same bits in → same hash out, on every run and platform.
#[derive(Debug, Default, Clone)]
pub struct FastHasher(u64);

/// The FxHash multiplier: 2^64 / φ rounded to odd, spreading entropy
/// across the high bits the map actually indexes with.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

/// `HashMap` keyed through [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed through [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_stream_matches_word_stream_on_aligned_input() {
        let mut a = FastHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<(u64, u64), u64> = FastHashMap::default();
        for i in 0..1000 {
            m.insert((i, i * 3), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(7, 21)), Some(&7));
        assert_eq!(m.get(&(7, 22)), None);
    }
}
