//! Stable discrete-event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry: fire time, insertion sequence (for stable FIFO
/// ordering among same-time events), and the payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour on BinaryHeap (a max-heap):
        // earliest time first; FIFO (lowest seq) among equal times.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in insertion order, which makes
/// whole-simulation runs bit-reproducible — a prerequisite for the paper's
/// scheme-vs-scheme comparisons (identical arrival streams must produce
/// identical environments for every scheduler).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// Creates an empty queue with pre-reserved capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(n), next_seq: 0, now: SimTime::ZERO }
    }

    /// Current simulation time: the fire time of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event), which
    /// would indicate a causality bug in the caller.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < now {}", self.now);
        self.heap.push(Entry { at, seq: self.next_seq, event });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Fire time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.pop();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule(q.now(), 2); // zero-delay follow-up event
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3) + SimDuration::from_micros(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3001)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped times are a sorted permutation of scheduled times, and
        /// equal-time events preserve insertion order (total determinism).
        #[test]
        fn total_order_and_stability(times in prop::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(t), i);
            }
            let mut popped: Vec<(SimTime, usize)> = Vec::new();
            while let Some(x) = q.pop() { popped.push(x); }
            prop_assert_eq!(popped.len(), times.len());
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO violated for same-time events");
                }
            }
            // Multiset of times preserved.
            let mut scheduled: Vec<u64> = times.clone();
            scheduled.sort_unstable();
            let got: Vec<u64> = popped.iter().map(|(t, _)| t.as_micros()).collect();
            prop_assert_eq!(scheduled, got);
        }
    }
}
