//! Virtual time: microsecond-resolution instants and durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in whole microseconds since the
/// start of the run.
///
/// Microsecond resolution matches the paper's measurement granularity
/// (communication times in Fig 4 are reported in fractions of a
/// millisecond) while `u64` arithmetic keeps the event loop allocation- and
/// float-free.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in whole microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero (start of the simulation).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Builds an instant from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from fractional seconds (saturating at 0).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from fractional milliseconds (rounded, floor 0).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e3).round() as u64)
    }

    /// Builds a duration from fractional seconds (rounded, floor 0).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Scales the duration by a non-negative factor (rounded).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis_f64(), 1500.0);
        assert_eq!(SimDuration::from_millis_f64(2.5).as_micros(), 2_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(4), SimDuration::from_millis(11));
        // Saturating: earlier.since(later) is zero.
        assert_eq!(SimTime::from_millis(1).since(SimTime::from_millis(9)), SimDuration::ZERO);
    }

    #[test]
    fn negative_float_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_millis_f64(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimDuration::from_millis(10).mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(SimDuration::from_millis(10).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(2500).to_string(), "2.500ms");
    }
}
