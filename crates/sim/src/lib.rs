//! # mlp-sim — discrete-event simulation kernel
//!
//! The paper's evaluation is trace-driven simulation (Section IV, Fig 8).
//! This crate provides the kernel underneath it: a microsecond-resolution
//! virtual clock ([`SimTime`]), a deterministic, stable event queue
//! ([`EventQueue`]), and seed-forkable random streams ([`SimRng`]) so that
//! parallel experiment sweeps stay reproducible.

pub mod hash;
pub mod queue;
pub mod rng;
pub mod time;

pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
