//! Deterministic, forkable random streams.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// A seeded random stream that can deterministically *fork* independent
/// child streams.
///
/// Experiment sweeps run replicas and schemes in parallel; each worker gets
/// `root.fork(worker_id)` so results are reproducible regardless of thread
/// scheduling, and the *same* arrival stream can be replayed against every
/// scheduler (the paper compares schemes on identical request streams).
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `stream_id`.
    ///
    /// Children with different ids are statistically independent; the same
    /// `(seed, stream_id)` pair always yields the same stream. Uses a
    /// SplitMix64 finalizer over the pair so ids 0,1,2… do not produce
    /// correlated seeds.
    pub fn fork(&self, stream_id: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(stream_id ^ 0x9E37_79B9_7F4A_7C15)))
    }

    /// Mutable access to the underlying `rand` generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

impl std::fmt::Debug for SimRng {
    /// Shows the creation seed, not the evolving generator state: the seed
    /// is what identifies the stream, and the state is both noisy and an
    /// invitation to (incorrectly) compare mid-stream generators.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish_non_exhaustive()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64→64 bijection.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let root = SimRng::new(99);
        let mut f1a = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        let s1a: Vec<u64> = (0..16).map(|_| f1a.next_u64()).collect();
        let s1b: Vec<u64> = (0..16).map(|_| f1b.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| f2.next_u64()).collect();
        assert_eq!(s1a, s1b);
        assert_ne!(s1a, s2);
    }

    #[test]
    fn fork_does_not_consume_parent_state() {
        let mut root = SimRng::new(5);
        let before: u64 = {
            let mut probe = SimRng::new(5);
            probe.next_u64()
        };
        let _child = root.fork(0);
        assert_eq!(root.next_u64(), before);
    }

    #[test]
    fn sequential_stream_ids_are_uncorrelated() {
        // Consecutive ids must not produce near-identical first outputs.
        let root = SimRng::new(0);
        let firsts: Vec<u64> = (0..32).map(|i| root.fork(i).next_u64()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "duplicate first outputs across forks");
    }

    #[test]
    fn works_as_rand_rng() {
        let mut r = SimRng::new(3);
        let x: f64 = r.rng().gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let y: f64 = rand::Rng::gen_range(&mut r, 0.0..1.0); // via RngCore impl
        assert!((0.0..1.0).contains(&y));
    }
}
