//! Structured decision-audit log.
//!
//! Every scheduling choice — admission, deferral, queue reorder, budget-tier
//! selection, delay-slot promotion, resource stretch, retry, shed, crash
//! replan — can emit a typed [`Decision`] record here. The log is a fixed
//! capacity ring buffer behind a cheap shared handle: when auditing is
//! disabled (the default) [`AuditLog::record`] is a branch on an `Option`
//! and nothing is allocated, so the hot path of production-style runs pays
//! nothing. With auditing enabled the retained tail of decisions can be
//! exported as JSONL (one decision per line) for offline analysis.

use crate::span::RequestId;
use mlp_cluster::MachineId;
use mlp_sim::SimTime;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// What kind of scheduling choice a [`Decision`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DecisionKind {
    /// A request was admitted (a plan was produced and accepted).
    Admit,
    /// A request could not be placed this round and stays queued.
    Defer,
    /// The waiting queue was reordered; the record names the new head.
    Reorder,
    /// A budget tier (Δt estimate) was chosen for a request's nodes.
    BudgetTier,
    /// A planned node was promoted into a late invoker's delay slot.
    DelaySlotFill,
    /// A running node's grant was stretched to absorb idle resources.
    Stretch,
    /// A failed node was scheduled for another attempt.
    Retry,
    /// A request was given up on (load shed / retry budget exhausted).
    Shed,
    /// A node was replanned onto a surviving machine after a crash.
    CrashReplan,
    /// A span invoked later than its plan (healing trigger).
    LateInvocation,
    /// A machine crashed.
    MachineDown,
    /// A machine came back.
    MachineUp,
    /// The overload admission gate refused an arrival (queue cap,
    /// deadline infeasibility, or an open circuit breaker).
    AdmissionReject,
    /// A per-service circuit breaker changed state.
    BreakerTransition,
    /// The brownout degradation tier changed.
    Brownout,
    /// A local-search refinement replaced an admitted plan with a
    /// strictly better placement (SearchSched).
    PlacementRefine,
    /// The incremental reorder index recomputed one request type's cached
    /// ratio terms after a profile-store version bump. `value` carries the
    /// request-type id, `rank` the profile version that triggered the
    /// recompute. Emitted only by the indexed queue path, so
    /// schedule-equivalence comparisons against the sort-based path must
    /// filter this kind out.
    IndexInvalidate,
}

/// One audited scheduling decision.
///
/// `reason` is a static human-readable tag (e.g. `"deadline-shed"`); the
/// optional numeric fields carry the inputs that drove the choice — the
/// volatility `V_r`, the reorder rank `R`, the Δt budget — so a JSONL trace
/// can answer *why* the scheduler acted, not just *that* it did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Decision {
    /// Simulation time of the decision, microseconds.
    pub at_us: u64,
    /// What kind of choice this was.
    pub kind: DecisionKind,
    /// Static tag naming the rule that fired.
    pub reason: &'static str,
    /// Affected request, if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub request: Option<u64>,
    /// Affected DAG node, if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub node: Option<usize>,
    /// Affected machine, if any.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub machine: Option<u32>,
    /// Request volatility `V_r` input, if relevant.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub vr: Option<f64>,
    /// Reorder rank `R` (or analogous priority score), if relevant.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub rank: Option<f64>,
    /// Time budget (ms) chosen or consulted, if relevant.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub budget_ms: Option<f64>,
    /// Free-form scalar (stretch factor, promotion gain ms, attempt #…).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub value: Option<f64>,
}

impl Decision {
    /// Starts a record with only the mandatory fields set.
    pub fn new(at: SimTime, kind: DecisionKind, reason: &'static str) -> Self {
        Decision {
            at_us: at.0,
            kind,
            reason,
            request: None,
            node: None,
            machine: None,
            vr: None,
            rank: None,
            budget_ms: None,
            value: None,
        }
    }

    /// Sets the affected request.
    pub fn request(mut self, r: RequestId) -> Self {
        self.request = Some(r.0);
        self
    }

    /// Sets the affected DAG node.
    pub fn node(mut self, n: usize) -> Self {
        self.node = Some(n);
        self
    }

    /// Sets the affected machine.
    pub fn machine(mut self, m: MachineId) -> Self {
        self.machine = Some(m.0);
        self
    }

    /// Sets the volatility input.
    pub fn vr(mut self, v: f64) -> Self {
        self.vr = Some(v);
        self
    }

    /// Sets the rank input.
    pub fn rank(mut self, r: f64) -> Self {
        self.rank = Some(r);
        self
    }

    /// Sets the budget input.
    pub fn budget_ms(mut self, b: f64) -> Self {
        self.budget_ms = Some(b);
        self
    }

    /// Sets the free-form scalar.
    pub fn value(mut self, v: f64) -> Self {
        self.value = Some(v);
        self
    }
}

/// Default ring capacity: enough to retain every decision of a
/// small/tiny-scale run and the tail of a paper-scale one.
pub const DEFAULT_AUDIT_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct Ring {
    buf: VecDeque<Decision>,
    cap: usize,
    dropped: u64,
}

/// Shared handle to the decision ring buffer.
///
/// Cloning is cheap; a disabled log (the [`AuditLog::disabled`]
/// constructor, also `Default`) carries no buffer at all and every
/// operation on it is a no-op, so `ctx.audit.record(..)` costs one
/// `Option` check when auditing is off.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    inner: Option<Arc<Mutex<Ring>>>,
    /// Wall-clock anchor for live mode: the UNIX timestamp (µs) of run
    /// start. Decision times are always µs-since-run-start; with the
    /// anchor set they map to absolute wall-clock instants
    /// (`epoch + d.at`). `None` in sim mode, where "time zero" is not a
    /// real instant — and the JSONL output stays byte-identical.
    epoch_unix_us: Option<u64>,
}

impl AuditLog {
    /// A log that records nothing (the default).
    pub fn disabled() -> Self {
        AuditLog { inner: None, epoch_unix_us: None }
    }

    /// An enabled log with the default ring capacity.
    pub fn enabled() -> Self {
        AuditLog::with_capacity(DEFAULT_AUDIT_CAPACITY)
    }

    /// An enabled log retaining at most `cap` decisions (oldest dropped).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        AuditLog {
            inner: Some(Arc::new(Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap.min(1024)),
                cap,
                dropped: 0,
            }))),
            epoch_unix_us: None,
        }
    }

    /// Anchors decision times to the wall clock (live mode): `unix_us` is
    /// the UNIX timestamp, in µs, of the run's time zero.
    pub fn with_epoch(mut self, unix_us: u64) -> Self {
        self.epoch_unix_us = Some(unix_us);
        self
    }

    /// The wall-clock anchor, when one was set (live mode).
    pub fn epoch_unix_us(&self) -> Option<u64> {
        self.epoch_unix_us
    }

    /// Whether decisions are being retained. Emission sites can use this
    /// to skip building records whose inputs are costly to gather.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn locked(&self) -> Option<MutexGuard<'_, Ring>> {
        // Like the metrics registry: a poisoned lock still yields the data;
        // observability must never compound a failure.
        self.inner.as_ref().map(|m| m.lock().unwrap_or_else(|poisoned| poisoned.into_inner()))
    }

    /// Appends one decision (no-op when disabled).
    pub fn record(&self, d: Decision) {
        if let Some(mut ring) = self.locked() {
            if ring.buf.len() == ring.cap {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(d);
        }
    }

    /// Number of retained decisions.
    pub fn len(&self) -> usize {
        self.locked().map_or(0, |r| r.buf.len())
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decisions evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.locked().map_or(0, |r| r.dropped)
    }

    /// Snapshot of the retained decisions, oldest first.
    pub fn decisions(&self) -> Vec<Decision> {
        self.locked().map_or_else(Vec::new, |r| r.buf.iter().copied().collect())
    }

    /// How many retained decisions are of `kind`.
    pub fn count(&self, kind: DecisionKind) -> usize {
        self.locked().map_or(0, |r| r.buf.iter().filter(|d| d.kind == kind).count())
    }

    /// Renders the retained decisions as JSONL (one JSON object per line).
    /// A live-mode log leads with one header object carrying the
    /// wall-clock epoch; sim-mode output is unchanged byte for byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(epoch) = self.epoch_unix_us {
            out.push_str(&format!("{{\"epoch_unix_us\":{epoch}}}\n"));
        }
        for d in self.decisions() {
            out.push_str(&serde_json::to_string(&d).expect("decisions serialize"));
            out.push('\n');
        }
        out
    }

    /// Writes the retained decisions as JSONL to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(at_us: u64, kind: DecisionKind) -> Decision {
        Decision::new(SimTime(at_us), kind, "test")
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = AuditLog::disabled();
        assert!(!log.is_enabled());
        log.record(d(1, DecisionKind::Admit));
        assert_eq!(log.len(), 0);
        assert!(log.is_empty());
        assert_eq!(log.decisions(), vec![]);
        assert_eq!(log.to_jsonl(), "");
    }

    #[test]
    fn enabled_log_retains_in_order() {
        let log = AuditLog::enabled();
        assert!(log.is_enabled());
        log.record(d(1, DecisionKind::Admit).request(RequestId(7)));
        log.record(d(2, DecisionKind::Defer).request(RequestId(8)));
        let ds = log.decisions();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].kind, DecisionKind::Admit);
        assert_eq!(ds[0].request, Some(7));
        assert_eq!(ds[1].at_us, 2);
        assert_eq!(log.count(DecisionKind::Admit), 1);
        assert_eq!(log.count(DecisionKind::Stretch), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let log = AuditLog::with_capacity(3);
        for i in 0..5 {
            log.record(d(i, DecisionKind::Admit));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let first = log.decisions()[0];
        assert_eq!(first.at_us, 2, "oldest two evicted");
    }

    #[test]
    fn clones_share_the_ring() {
        let log = AuditLog::enabled();
        let clone = log.clone();
        clone.record(d(1, DecisionKind::Stretch));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn jsonl_skips_unset_fields() {
        let log = AuditLog::enabled();
        log.record(d(5, DecisionKind::Shed).request(RequestId(1)).value(2.0));
        let line = log.to_jsonl();
        assert!(line.contains("\"kind\":\"Shed\""), "{line}");
        assert!(line.contains("\"request\":1"), "{line}");
        assert!(line.contains("\"value\":2"), "{line}");
        assert!(!line.contains("machine"), "unset fields omitted: {line}");
        assert_eq!(line.matches('\n').count(), 1);
    }

    #[test]
    fn builder_sets_every_field() {
        let full = Decision::new(SimTime(9), DecisionKind::BudgetTier, "banded")
            .request(RequestId(3))
            .node(2)
            .machine(MachineId(4))
            .vr(0.5)
            .rank(0.9)
            .budget_ms(12.0)
            .value(1.0);
        assert_eq!(full.at_us, 9);
        assert_eq!(full.node, Some(2));
        assert_eq!(full.machine, Some(4));
        assert_eq!(full.vr, Some(0.5));
        assert_eq!(full.rank, Some(0.9));
        assert_eq!(full.budget_ms, Some(12.0));
        assert_eq!(full.value, Some(1.0));
    }
}
