//! Historical execution profiles — the paper's `s_i` matrix.
//!
//! Section III-E describes each microservice as a matrix
//! `s_i = [u_cpu, u_mem, u_io, l, Δt]` whose **rows are historical
//! execution cases**. Schedulers consume this store in different ways:
//! PartProfile looks only at execution times, FullProfile at times and
//! resource usage, and v-MLP's self-organizing module derives its
//! volatility-banded Δt estimates (median / p99 of the fastest `x`%
//! executions) from the same history.

use mlp_model::{ResourceVector, ServiceId};
use mlp_sim::FastHashMap;
use mlp_stats::{Cdf, RankedSamples, Summary};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// One historical execution case — one row of `s_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionCase {
    /// Resource usage during the execution.
    pub usage: ResourceVector,
    /// Machine load (utilization fraction) at the time.
    pub machine_load: f64,
    /// Execution time in ms (the paper's Δt column).
    pub exec_ms: f64,
}

/// Per-service history of execution cases with cached aggregates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ServiceHistory {
    cases: Vec<ExecutionCase>,
    #[serde(skip)]
    exec_summary: Summary,
    #[serde(skip)]
    usage_summary: [Summary; 3],
    /// Always-sorted index over `cases[i].exec_ms`, kept in lockstep with
    /// `cases` so banded-Δt queries are order-statistic lookups instead of
    /// full re-sorts. Skipped by serde (like the summaries) and rebuilt on
    /// the first mutation after deserialization; until then `ranked.len()
    /// != cases.len()` flags it stale and queries take the sort path.
    #[serde(skip)]
    ranked: RankedSamples,
    /// Bumped on every mutation of `cases`; versions the Δt memo.
    #[serde(skip)]
    version: u64,
}

impl ServiceHistory {
    fn record(&mut self, case: ExecutionCase) {
        self.exec_summary.record(case.exec_ms);
        self.usage_summary[0].record(case.usage.cpu);
        self.usage_summary[1].record(case.usage.mem);
        self.usage_summary[2].record(case.usage.io);
        if self.ranked.len() != self.cases.len() {
            self.rebuild_ranked();
        }
        self.ranked.insert(case.exec_ms);
        self.cases.push(case);
        self.version += 1;
    }

    /// Drops the `overflow` oldest cases, keeping the ranked index in
    /// lockstep (or rebuilding it if it was stale).
    fn evict(&mut self, overflow: usize) {
        let in_sync = self.ranked.len() == self.cases.len();
        for c in self.cases.drain(..overflow) {
            if in_sync {
                self.ranked.remove_one(c.exec_ms);
            }
        }
        if !in_sync {
            self.rebuild_ranked();
        }
        self.version += 1;
    }

    fn rebuild_ranked(&mut self) {
        let samples: Vec<f64> = self.cases.iter().map(|c| c.exec_ms).collect();
        self.ranked = RankedSamples::from_samples(&samples);
    }
}

/// Memo key for a banded-Δt query: (service, `x_percent` bits, `q` bits).
/// The value is independent of the caller's fallback (a non-empty history
/// always yields a quantile), so the fallback is deliberately not keyed.
type DeltaKey = (u32, u64, u64);

/// The historical profile store shared by all profile-driven schedulers.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct ProfileStore {
    histories: FastHashMap<u32, ServiceHistory>,
    /// Cap on retained cases per service (ring-buffer semantics); `0`
    /// means unbounded.
    retention: usize,
    /// Banded-Δt memo: `(service, x, q) → (history version, Δt)`. Entries
    /// are validated against the service's current version, so a stale hit
    /// is impossible; interior mutability keeps `delta_t_ms` a `&self`
    /// query (and the `Mutex` keeps the store shareable across shard
    /// workers). Never serialized; cleared by `clone`.
    #[serde(skip)]
    memo: Mutex<FastHashMap<DeltaKey, (u64, f64)>>,
    /// Debug escape hatch: `true` forces the historical sort-based Δt
    /// path, bypassing the ranked index and the memo. Used by equivalence
    /// tests to prove the fast path changes no scheduling decision.
    #[serde(skip)]
    force_unindexed: bool,
}

impl Clone for ProfileStore {
    fn clone(&self) -> Self {
        ProfileStore {
            histories: self.histories.clone(),
            retention: self.retention,
            memo: Mutex::new(FastHashMap::default()),
            force_unindexed: self.force_unindexed,
        }
    }
}

impl ProfileStore {
    /// Creates an empty, unbounded store.
    pub fn new() -> Self {
        ProfileStore::default()
    }

    /// Creates a store that retains at most `retention` recent cases per
    /// service (cheap online operation for long runs).
    pub fn with_retention(retention: usize) -> Self {
        ProfileStore { retention, ..ProfileStore::default() }
    }

    /// Changes the retention cap (`0` = unbounded) and trims any history
    /// already over it. Lets a warmed store be bounded before a long run
    /// without re-profiling.
    pub fn set_retention(&mut self, retention: usize) {
        self.retention = retention;
        if retention == 0 {
            return;
        }
        for h in self.histories.values_mut() {
            if h.cases.len() > retention {
                let overflow = h.cases.len() - retention;
                h.evict(overflow);
            }
        }
    }

    /// Forces the historical sort-based Δt path (debug/test aid; see
    /// `memo`/`force_unindexed` docs). The fast path is exact, so toggling
    /// this must not change any scheduling decision.
    pub fn set_unindexed(&mut self, force: bool) {
        self.force_unindexed = force;
    }

    /// The current retention cap (`0` = unbounded).
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Records one execution case for `service`.
    pub fn record(&mut self, service: ServiceId, case: ExecutionCase) {
        let h = self.histories.entry(service.0).or_default();
        h.record(case);
        if self.retention > 0 && h.cases.len() > self.retention {
            let overflow = h.cases.len() - self.retention;
            h.evict(overflow);
            // Summaries intentionally stay cumulative — they describe the
            // service's lifetime behaviour, while `cases` bounds the Δt
            // estimation window.
        }
    }

    /// Number of retained cases for `service`.
    pub fn case_count(&self, service: ServiceId) -> usize {
        self.histories.get(&service.0).map_or(0, |h| h.cases.len())
    }

    /// Retained execution cases (oldest first).
    pub fn cases(&self, service: ServiceId) -> &[ExecutionCase] {
        self.histories.get(&service.0).map_or(&[], |h| h.cases.as_slice())
    }

    /// Mean observed execution time (ms); `None` with no history.
    pub fn mean_exec_ms(&self, service: ServiceId) -> Option<f64> {
        let h = self.histories.get(&service.0)?;
        if h.exec_summary.count() == 0 {
            // Rebuilt after deserialization: summaries are skipped.
            return self.rebuild_exec_summary(service).map(|s| s.mean());
        }
        Some(h.exec_summary.mean())
    }

    /// Mean observed resource usage; zero vector with no history.
    pub fn mean_usage(&self, service: ServiceId) -> ResourceVector {
        match self.histories.get(&service.0) {
            Some(h) if h.usage_summary[0].count() > 0 => ResourceVector::new(
                h.usage_summary[0].mean(),
                h.usage_summary[1].mean(),
                h.usage_summary[2].mean(),
            ),
            Some(h) if !h.cases.is_empty() => {
                let mut v = ResourceVector::ZERO;
                for c in &h.cases {
                    v += c.usage;
                }
                v * (1.0 / h.cases.len() as f64)
            }
            _ => ResourceVector::ZERO,
        }
    }

    fn rebuild_exec_summary(&self, service: ServiceId) -> Option<Summary> {
        let h = self.histories.get(&service.0)?;
        if h.cases.is_empty() {
            return None;
        }
        let mut s = Summary::new();
        for c in &h.cases {
            s.record(c.exec_ms);
        }
        Some(s)
    }

    /// Execution-time CDF of the retained cases; empty CDF with no history.
    pub fn exec_cdf(&self, service: ServiceId) -> Cdf {
        let mut cdf = Cdf::new();
        for c in self.cases(service) {
            cdf.record(c.exec_ms);
        }
        cdf
    }

    /// Algorithm 1's Δt estimator: the `q`-quantile latency of the fastest
    /// `x`% of historical executions.
    ///
    /// * medium volatility: `q = 0.5` ("Δt = 50 % latency of x % executions")
    /// * high volatility: `q = 0.99` ("Δt = 99 % latency of x % executions")
    ///
    /// Falls back to `fallback_ms` when no history exists (cold start).
    ///
    /// Answered from the per-service ranked index when it is in sync: the
    /// truncate-then-quantile composition is `sorted[idx]` with
    /// `keep = ⌈x/100·n⌉` (clamped to `1..=n`) and
    /// `idx = min(max(⌈q·keep⌉, 1) − 1, keep − 1)` — exactly the
    /// [`Cdf::truncate_fastest`]/[`Cdf::quantile`] arithmetic — so the
    /// fast path returns bit-identical values to the sort path (proven in
    /// tests). Results are memoized per `(service, x, q)` keyed on the
    /// history version.
    pub fn delta_t_ms(&self, service: ServiceId, x_percent: f64, q: f64, fallback_ms: f64) -> f64 {
        let Some(h) = self.histories.get(&service.0) else { return fallback_ms };
        let n = h.cases.len();
        if n == 0 {
            return fallback_ms;
        }
        if self.force_unindexed {
            return self.delta_t_ms_unindexed(service, x_percent, q, fallback_ms);
        }
        let key: DeltaKey = (service.0, x_percent.to_bits(), q.to_bits());
        if let Ok(memo) = self.memo.lock() {
            if let Some(&(version, value)) = memo.get(&key) {
                if version == h.version {
                    return value;
                }
            }
        }
        let value = if h.ranked.len() == n {
            let keep = (((x_percent / 100.0) * n as f64).ceil() as usize).clamp(1.min(n), n);
            let idx = (((q * keep as f64).ceil() as usize).max(1) - 1).min(keep - 1);
            h.ranked.select(idx).unwrap_or(fallback_ms)
        } else {
            // Freshly deserialized: the index is stale until the next
            // mutation rebuilds it. Take the sort path (still memoized).
            self.delta_t_ms_unindexed(service, x_percent, q, fallback_ms)
        };
        if let Ok(mut memo) = self.memo.lock() {
            memo.insert(key, (h.version, value));
        }
        value
    }

    /// The historical sort-based Δt computation (builds and truncates a
    /// fresh [`Cdf`] per call). Kept as the reference implementation the
    /// indexed path must match bit-for-bit, and as the fallback while the
    /// index is stale after deserialization.
    pub fn delta_t_ms_unindexed(
        &self,
        service: ServiceId,
        x_percent: f64,
        q: f64,
        fallback_ms: f64,
    ) -> f64 {
        let mut cdf = self.exec_cdf(service);
        if cdf.is_empty() {
            return fallback_ms;
        }
        let mut truncated = cdf.truncate_fastest(x_percent);
        truncated.quantile(q).unwrap_or(fallback_ms)
    }

    /// Most recent observed execution time; `None` with no history.
    /// ("For requests with low V_r, Δt is directly determined by
    /// historical value.")
    pub fn last_exec_ms(&self, service: ServiceId) -> Option<f64> {
        self.cases(service).last().map(|c| c.exec_ms)
    }

    /// Smallest retained execution time (the `Δt₀` of the reorder ratio).
    /// `O(1)` off the ranked index when in sync (same `total_cmp` order,
    /// so the returned bits match the scan).
    pub fn min_exec_ms(&self, service: ServiceId) -> Option<f64> {
        if !self.force_unindexed {
            if let Some(h) = self.histories.get(&service.0) {
                if h.ranked.len() == h.cases.len() {
                    return h.ranked.min();
                }
            }
        }
        self.cases(service).iter().map(|c| c.exec_ms).min_by(|a, b| a.total_cmp(b))
    }

    /// The profile-history version of `service`: bumped on every recorded
    /// or evicted case, `0` while the service has no history. Derived
    /// caches (the Δt memo internally, the reorder index's per-type
    /// `RatioTerms` externally) revalidate against this in O(1) — an
    /// unchanged version means every profile query for the service answers
    /// bit-identically to when the cache entry was built.
    pub fn version(&self, service: ServiceId) -> u64 {
        self.histories.get(&service.0).map_or(0, |h| h.version)
    }

    /// Services with any history.
    pub fn services(&self) -> Vec<ServiceId> {
        let mut ids: Vec<ServiceId> = self.histories.keys().map(|&k| ServiceId(k)).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(exec_ms: f64) -> ExecutionCase {
        ExecutionCase { usage: ResourceVector::new(1.0, 100.0, 10.0), machine_load: 0.5, exec_ms }
    }

    const S: ServiceId = ServiceId(7);

    #[test]
    fn empty_store() {
        let p = ProfileStore::new();
        assert_eq!(p.case_count(S), 0);
        assert!(p.mean_exec_ms(S).is_none());
        assert_eq!(p.mean_usage(S), ResourceVector::ZERO);
        assert_eq!(p.delta_t_ms(S, 90.0, 0.5, 42.0), 42.0, "cold start uses fallback");
        assert!(p.last_exec_ms(S).is_none());
        assert!(p.services().is_empty());
    }

    #[test]
    fn record_and_aggregate() {
        let mut p = ProfileStore::new();
        for ms in [10.0, 20.0, 30.0] {
            p.record(S, case(ms));
        }
        assert_eq!(p.case_count(S), 3);
        assert_eq!(p.mean_exec_ms(S), Some(20.0));
        assert_eq!(p.last_exec_ms(S), Some(30.0));
        assert_eq!(p.min_exec_ms(S), Some(10.0));
        assert_eq!(p.mean_usage(S), ResourceVector::new(1.0, 100.0, 10.0));
        assert_eq!(p.services(), vec![S]);
    }

    #[test]
    fn delta_t_quantiles() {
        let mut p = ProfileStore::new();
        for ms in 1..=100 {
            p.record(S, case(ms as f64));
        }
        // p50 of all executions.
        assert_eq!(p.delta_t_ms(S, 100.0, 0.5, 0.0), 50.0);
        // p99 of all executions.
        assert_eq!(p.delta_t_ms(S, 100.0, 0.99, 0.0), 99.0);
        // p99 of the fastest 50%: 99th percentile of 1..=50.
        let d = p.delta_t_ms(S, 50.0, 0.99, 0.0);
        assert!((49.0..=50.0).contains(&d), "got {d}");
        // Smaller x ⇒ tighter (more optimistic) Δt.
        assert!(p.delta_t_ms(S, 10.0, 0.99, 0.0) < p.delta_t_ms(S, 90.0, 0.99, 0.0));
    }

    #[test]
    fn retention_bounds_cases_but_not_lifetime_stats() {
        let mut p = ProfileStore::with_retention(10);
        for ms in 1..=100 {
            p.record(S, case(ms as f64));
        }
        assert_eq!(p.case_count(S), 10);
        // Window keeps the most recent cases.
        assert_eq!(p.cases(S)[0].exec_ms, 91.0);
        // Lifetime mean still covers all 100 recordings.
        assert_eq!(p.mean_exec_ms(S), Some(50.5));
    }

    #[test]
    fn set_retention_trims_existing_history() {
        let mut p = ProfileStore::new();
        for ms in 1..=100 {
            p.record(S, case(ms as f64));
        }
        p.set_retention(10);
        assert_eq!(p.retention(), 10);
        assert_eq!(p.case_count(S), 10, "existing overflow trimmed immediately");
        assert_eq!(p.cases(S)[0].exec_ms, 91.0, "most recent cases kept");
        // Subsequent recordings keep honoring the cap.
        p.record(S, case(200.0));
        assert_eq!(p.case_count(S), 10);
        assert_eq!(p.last_exec_ms(S), Some(200.0));
        // Zero restores unbounded growth.
        p.set_retention(0);
        for ms in 1..=20 {
            p.record(S, case(ms as f64));
        }
        assert_eq!(p.case_count(S), 30);
    }

    #[test]
    fn indexed_delta_t_matches_reference_bitwise() {
        let mut p = ProfileStore::with_retention(16);
        // Awkward values: duplicates, sub-ms, and a retention window that
        // keeps evicting — the index must track the survivors exactly.
        for i in 0..200u32 {
            p.record(S, case(((i * 37) % 50) as f64 / 7.0 + 0.013));
            for &(x, q) in &[(100.0, 0.5), (62.5, 0.99), (30.0, 0.5), (5.0, 0.99)] {
                let fast = p.delta_t_ms(S, x, q, -1.0);
                let slow = p.delta_t_ms_unindexed(S, x, q, -1.0);
                assert_eq!(fast.to_bits(), slow.to_bits(), "i={i} x={x} q={q}");
            }
            assert_eq!(
                p.min_exec_ms(S),
                p.cases(S).iter().map(|c| c.exec_ms).min_by(|a, b| a.total_cmp(b))
            );
        }
    }

    #[test]
    fn memo_invalidated_by_new_history() {
        let mut p = ProfileStore::new();
        p.record(S, case(10.0));
        assert_eq!(p.delta_t_ms(S, 100.0, 0.99, 0.0), 10.0);
        // A repeated query hits the memo; a new recording must invalidate.
        assert_eq!(p.delta_t_ms(S, 100.0, 0.99, 0.0), 10.0);
        p.record(S, case(90.0));
        assert_eq!(p.delta_t_ms(S, 100.0, 0.99, 0.0), 90.0);
        // Eviction invalidates too.
        p.set_retention(1);
        assert_eq!(p.delta_t_ms(S, 100.0, 0.5, 0.0), 90.0);
    }

    #[test]
    fn deserialized_store_answers_exactly_then_reindexes() {
        let mut p = ProfileStore::new();
        for ms in [14.0, 3.0, 8.0, 3.0] {
            p.record(S, case(ms));
        }
        let js = serde_json::to_string(&p).unwrap();
        let mut q: ProfileStore = serde_json::from_str(&js).unwrap();
        // Stale index: queries take the sort path but stay exact.
        assert_eq!(q.delta_t_ms(S, 100.0, 0.5, 0.0), p.delta_t_ms(S, 100.0, 0.5, 0.0));
        assert_eq!(q.min_exec_ms(S), Some(3.0));
        // First mutation rebuilds the index; answers stay in lockstep.
        q.record(S, case(1.0));
        p.record(S, case(1.0));
        assert_eq!(q.delta_t_ms(S, 80.0, 0.99, 0.0), p.delta_t_ms(S, 80.0, 0.99, 0.0));
        assert_eq!(q.min_exec_ms(S), Some(1.0));
    }

    #[test]
    fn json_roundtrip_preserves_cases() {
        let mut p = ProfileStore::new();
        p.record(S, case(12.5));
        p.record(S, case(14.0));
        let js = serde_json::to_string(&p).unwrap();
        let q: ProfileStore = serde_json::from_str(&js).unwrap();
        assert_eq!(q.case_count(S), 2);
        // Summaries are rebuilt lazily from cases after deserialization.
        assert_eq!(q.mean_exec_ms(S), Some(13.25));
        assert_eq!(q.mean_usage(S), ResourceVector::new(1.0, 100.0, 10.0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Δt estimates are monotone in q and bounded by the observed range.
        #[test]
        fn delta_t_monotone_and_bounded(times in prop::collection::vec(0.1f64..1e4, 1..100),
                                        x in 1.0f64..100.0) {
            let mut p = ProfileStore::new();
            for &t in &times {
                p.record(ServiceId(0), ExecutionCase {
                    usage: ResourceVector::ZERO, machine_load: 0.0, exec_ms: t });
            }
            let d50 = p.delta_t_ms(ServiceId(0), x, 0.5, 0.0);
            let d99 = p.delta_t_ms(ServiceId(0), x, 0.99, 0.0);
            prop_assert!(d50 <= d99);
            let max = times.iter().copied().fold(0.0f64, f64::max);
            let min = times.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert!(d99 <= max + 1e-9);
            prop_assert!(d50 >= min - 1e-9);
        }

        /// The indexed Δt path is bit-identical to the sort-based
        /// reference for arbitrary histories, bands, and retention caps.
        #[test]
        fn indexed_equals_reference(times in prop::collection::vec(0.01f64..1e4, 1..200),
                                    x in 0.5f64..100.0,
                                    q in 0.0f64..1.0,
                                    retention in 0usize..64) {
            let mut p = ProfileStore::with_retention(retention);
            for &t in &times {
                p.record(ServiceId(3), ExecutionCase {
                    usage: ResourceVector::ZERO, machine_load: 0.0, exec_ms: t });
            }
            let fast = p.delta_t_ms(ServiceId(3), x, q, -1.0);
            let slow = p.delta_t_ms_unindexed(ServiceId(3), x, q, -1.0);
            prop_assert_eq!(fast.to_bits(), slow.to_bits());
        }
    }
}
