//! Historical execution profiles — the paper's `s_i` matrix.
//!
//! Section III-E describes each microservice as a matrix
//! `s_i = [u_cpu, u_mem, u_io, l, Δt]` whose **rows are historical
//! execution cases**. Schedulers consume this store in different ways:
//! PartProfile looks only at execution times, FullProfile at times and
//! resource usage, and v-MLP's self-organizing module derives its
//! volatility-banded Δt estimates (median / p99 of the fastest `x`%
//! executions) from the same history.

use mlp_model::{ResourceVector, ServiceId};
use mlp_stats::{Cdf, Summary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One historical execution case — one row of `s_i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionCase {
    /// Resource usage during the execution.
    pub usage: ResourceVector,
    /// Machine load (utilization fraction) at the time.
    pub machine_load: f64,
    /// Execution time in ms (the paper's Δt column).
    pub exec_ms: f64,
}

/// Per-service history of execution cases with cached aggregates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ServiceHistory {
    cases: Vec<ExecutionCase>,
    #[serde(skip)]
    exec_summary: Summary,
    #[serde(skip)]
    usage_summary: [Summary; 3],
}

impl ServiceHistory {
    fn record(&mut self, case: ExecutionCase) {
        self.exec_summary.record(case.exec_ms);
        self.usage_summary[0].record(case.usage.cpu);
        self.usage_summary[1].record(case.usage.mem);
        self.usage_summary[2].record(case.usage.io);
        self.cases.push(case);
    }
}

/// The historical profile store shared by all profile-driven schedulers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProfileStore {
    histories: HashMap<u32, ServiceHistory>,
    /// Cap on retained cases per service (ring-buffer semantics); `0`
    /// means unbounded.
    retention: usize,
}

impl ProfileStore {
    /// Creates an empty, unbounded store.
    pub fn new() -> Self {
        ProfileStore::default()
    }

    /// Creates a store that retains at most `retention` recent cases per
    /// service (cheap online operation for long runs).
    pub fn with_retention(retention: usize) -> Self {
        ProfileStore { histories: HashMap::new(), retention }
    }

    /// Changes the retention cap (`0` = unbounded) and trims any history
    /// already over it. Lets a warmed store be bounded before a long run
    /// without re-profiling.
    pub fn set_retention(&mut self, retention: usize) {
        self.retention = retention;
        if retention == 0 {
            return;
        }
        for h in self.histories.values_mut() {
            if h.cases.len() > retention {
                let overflow = h.cases.len() - retention;
                h.cases.drain(..overflow);
            }
        }
    }

    /// The current retention cap (`0` = unbounded).
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Records one execution case for `service`.
    pub fn record(&mut self, service: ServiceId, case: ExecutionCase) {
        let h = self.histories.entry(service.0).or_default();
        h.record(case);
        if self.retention > 0 && h.cases.len() > self.retention {
            let overflow = h.cases.len() - self.retention;
            h.cases.drain(..overflow);
            // Summaries intentionally stay cumulative — they describe the
            // service's lifetime behaviour, while `cases` bounds the Δt
            // estimation window.
        }
    }

    /// Number of retained cases for `service`.
    pub fn case_count(&self, service: ServiceId) -> usize {
        self.histories.get(&service.0).map_or(0, |h| h.cases.len())
    }

    /// Retained execution cases (oldest first).
    pub fn cases(&self, service: ServiceId) -> &[ExecutionCase] {
        self.histories.get(&service.0).map_or(&[], |h| h.cases.as_slice())
    }

    /// Mean observed execution time (ms); `None` with no history.
    pub fn mean_exec_ms(&self, service: ServiceId) -> Option<f64> {
        let h = self.histories.get(&service.0)?;
        if h.exec_summary.count() == 0 {
            // Rebuilt after deserialization: summaries are skipped.
            return self.rebuild_exec_summary(service).map(|s| s.mean());
        }
        Some(h.exec_summary.mean())
    }

    /// Mean observed resource usage; zero vector with no history.
    pub fn mean_usage(&self, service: ServiceId) -> ResourceVector {
        match self.histories.get(&service.0) {
            Some(h) if h.usage_summary[0].count() > 0 => ResourceVector::new(
                h.usage_summary[0].mean(),
                h.usage_summary[1].mean(),
                h.usage_summary[2].mean(),
            ),
            Some(h) if !h.cases.is_empty() => {
                let mut v = ResourceVector::ZERO;
                for c in &h.cases {
                    v += c.usage;
                }
                v * (1.0 / h.cases.len() as f64)
            }
            _ => ResourceVector::ZERO,
        }
    }

    fn rebuild_exec_summary(&self, service: ServiceId) -> Option<Summary> {
        let h = self.histories.get(&service.0)?;
        if h.cases.is_empty() {
            return None;
        }
        let mut s = Summary::new();
        for c in &h.cases {
            s.record(c.exec_ms);
        }
        Some(s)
    }

    /// Execution-time CDF of the retained cases; empty CDF with no history.
    pub fn exec_cdf(&self, service: ServiceId) -> Cdf {
        let mut cdf = Cdf::new();
        for c in self.cases(service) {
            cdf.record(c.exec_ms);
        }
        cdf
    }

    /// Algorithm 1's Δt estimator: the `q`-quantile latency of the fastest
    /// `x`% of historical executions.
    ///
    /// * medium volatility: `q = 0.5` ("Δt = 50 % latency of x % executions")
    /// * high volatility: `q = 0.99` ("Δt = 99 % latency of x % executions")
    ///
    /// Falls back to `fallback_ms` when no history exists (cold start).
    pub fn delta_t_ms(&self, service: ServiceId, x_percent: f64, q: f64, fallback_ms: f64) -> f64 {
        let mut cdf = self.exec_cdf(service);
        if cdf.is_empty() {
            return fallback_ms;
        }
        let mut truncated = cdf.truncate_fastest(x_percent);
        truncated.quantile(q).unwrap_or(fallback_ms)
    }

    /// Most recent observed execution time; `None` with no history.
    /// ("For requests with low V_r, Δt is directly determined by
    /// historical value.")
    pub fn last_exec_ms(&self, service: ServiceId) -> Option<f64> {
        self.cases(service).last().map(|c| c.exec_ms)
    }

    /// Smallest retained execution time (the `Δt₀` of the reorder ratio).
    pub fn min_exec_ms(&self, service: ServiceId) -> Option<f64> {
        self.cases(service).iter().map(|c| c.exec_ms).min_by(|a, b| a.total_cmp(b))
    }

    /// Services with any history.
    pub fn services(&self) -> Vec<ServiceId> {
        let mut ids: Vec<ServiceId> = self.histories.keys().map(|&k| ServiceId(k)).collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(exec_ms: f64) -> ExecutionCase {
        ExecutionCase { usage: ResourceVector::new(1.0, 100.0, 10.0), machine_load: 0.5, exec_ms }
    }

    const S: ServiceId = ServiceId(7);

    #[test]
    fn empty_store() {
        let p = ProfileStore::new();
        assert_eq!(p.case_count(S), 0);
        assert!(p.mean_exec_ms(S).is_none());
        assert_eq!(p.mean_usage(S), ResourceVector::ZERO);
        assert_eq!(p.delta_t_ms(S, 90.0, 0.5, 42.0), 42.0, "cold start uses fallback");
        assert!(p.last_exec_ms(S).is_none());
        assert!(p.services().is_empty());
    }

    #[test]
    fn record_and_aggregate() {
        let mut p = ProfileStore::new();
        for ms in [10.0, 20.0, 30.0] {
            p.record(S, case(ms));
        }
        assert_eq!(p.case_count(S), 3);
        assert_eq!(p.mean_exec_ms(S), Some(20.0));
        assert_eq!(p.last_exec_ms(S), Some(30.0));
        assert_eq!(p.min_exec_ms(S), Some(10.0));
        assert_eq!(p.mean_usage(S), ResourceVector::new(1.0, 100.0, 10.0));
        assert_eq!(p.services(), vec![S]);
    }

    #[test]
    fn delta_t_quantiles() {
        let mut p = ProfileStore::new();
        for ms in 1..=100 {
            p.record(S, case(ms as f64));
        }
        // p50 of all executions.
        assert_eq!(p.delta_t_ms(S, 100.0, 0.5, 0.0), 50.0);
        // p99 of all executions.
        assert_eq!(p.delta_t_ms(S, 100.0, 0.99, 0.0), 99.0);
        // p99 of the fastest 50%: 99th percentile of 1..=50.
        let d = p.delta_t_ms(S, 50.0, 0.99, 0.0);
        assert!((49.0..=50.0).contains(&d), "got {d}");
        // Smaller x ⇒ tighter (more optimistic) Δt.
        assert!(p.delta_t_ms(S, 10.0, 0.99, 0.0) < p.delta_t_ms(S, 90.0, 0.99, 0.0));
    }

    #[test]
    fn retention_bounds_cases_but_not_lifetime_stats() {
        let mut p = ProfileStore::with_retention(10);
        for ms in 1..=100 {
            p.record(S, case(ms as f64));
        }
        assert_eq!(p.case_count(S), 10);
        // Window keeps the most recent cases.
        assert_eq!(p.cases(S)[0].exec_ms, 91.0);
        // Lifetime mean still covers all 100 recordings.
        assert_eq!(p.mean_exec_ms(S), Some(50.5));
    }

    #[test]
    fn set_retention_trims_existing_history() {
        let mut p = ProfileStore::new();
        for ms in 1..=100 {
            p.record(S, case(ms as f64));
        }
        p.set_retention(10);
        assert_eq!(p.retention(), 10);
        assert_eq!(p.case_count(S), 10, "existing overflow trimmed immediately");
        assert_eq!(p.cases(S)[0].exec_ms, 91.0, "most recent cases kept");
        // Subsequent recordings keep honoring the cap.
        p.record(S, case(200.0));
        assert_eq!(p.case_count(S), 10);
        assert_eq!(p.last_exec_ms(S), Some(200.0));
        // Zero restores unbounded growth.
        p.set_retention(0);
        for ms in 1..=20 {
            p.record(S, case(ms as f64));
        }
        assert_eq!(p.case_count(S), 30);
    }

    #[test]
    fn json_roundtrip_preserves_cases() {
        let mut p = ProfileStore::new();
        p.record(S, case(12.5));
        p.record(S, case(14.0));
        let js = serde_json::to_string(&p).unwrap();
        let q: ProfileStore = serde_json::from_str(&js).unwrap();
        assert_eq!(q.case_count(S), 2);
        // Summaries are rebuilt lazily from cases after deserialization.
        assert_eq!(q.mean_exec_ms(S), Some(13.25));
        assert_eq!(q.mean_usage(S), ResourceVector::new(1.0, 100.0, 10.0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Δt estimates are monotone in q and bounded by the observed range.
        #[test]
        fn delta_t_monotone_and_bounded(times in prop::collection::vec(0.1f64..1e4, 1..100),
                                        x in 1.0f64..100.0) {
            let mut p = ProfileStore::new();
            for &t in &times {
                p.record(ServiceId(0), ExecutionCase {
                    usage: ResourceVector::ZERO, machine_load: 0.0, exec_ms: t });
            }
            let d50 = p.delta_t_ms(ServiceId(0), x, 0.5, 0.0);
            let d99 = p.delta_t_ms(ServiceId(0), x, 0.99, 0.0);
            prop_assert!(d50 <= d99);
            let max = times.iter().copied().fold(0.0f64, f64::max);
            let min = times.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert!(d99 <= max + 1e-9);
            prop_assert!(d50 >= min - 1e-9);
        }
    }
}
