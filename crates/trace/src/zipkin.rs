//! Zipkin-compatible span export.
//!
//! The paper's deployment collects traces with Zipkin/Jaeger (Table III);
//! our simulated collector can export its spans in the Zipkin v2 JSON
//! shape, so recorded runs can be loaded into real tracing UIs (or any
//! downstream tooling that speaks the format). Parent links are
//! reconstructed from the request DAG: a span's parent is its latest-
//! finishing DAG predecessor.

use crate::collector::TraceCollector;
use crate::span::Span;
use mlp_model::RequestCatalog;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One span in Zipkin v2 JSON shape (subset of fields).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ZipkinSpan {
    /// 16-hex trace id (one per request).
    #[serde(rename = "traceId")]
    pub trace_id: String,
    /// 16-hex span id.
    pub id: String,
    /// Parent span id, absent for root spans.
    #[serde(rename = "parentId", skip_serializing_if = "Option::is_none")]
    pub parent_id: Option<String>,
    /// Service name.
    pub name: String,
    /// Start timestamp in microseconds.
    pub timestamp: u64,
    /// Duration in microseconds.
    pub duration: u64,
    /// Local endpoint (the machine the span ran on).
    #[serde(rename = "localEndpoint")]
    pub local_endpoint: Endpoint,
    /// Extra key/value tags.
    pub tags: HashMap<String, String>,
}

/// Zipkin local endpoint.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Endpoint {
    /// Service name as shown in the Zipkin UI.
    #[serde(rename = "serviceName")]
    pub service_name: String,
}

fn hex16(hi: u64, lo: u64) -> String {
    format!("{:08x}{:08x}", hi as u32, lo as u32)
}

/// Converts one simulator span (plus its resolved parent) into Zipkin form.
fn convert(span: &Span, parent: Option<&Span>, catalog: &RequestCatalog) -> ZipkinSpan {
    let svc_name = catalog.services.get(span.service).name.clone();
    let mut tags = HashMap::new();
    tags.insert("machine".to_string(), format!("m{}", span.machine.0));
    tags.insert("dag.node".to_string(), span.dag_node.to_string());
    tags.insert("satisfaction".to_string(), format!("{:.3}", span.satisfaction));
    tags.insert("planned.start.us".to_string(), span.planned_start.as_micros().to_string());
    ZipkinSpan {
        trace_id: hex16(span.request.0, 0xC0DE),
        id: hex16(span.request.0, span.dag_node as u64 + 1),
        parent_id: parent.map(|p| hex16(p.request.0, p.dag_node as u64 + 1)),
        name: svc_name.clone(),
        timestamp: span.start.as_micros(),
        duration: span.duration().as_micros(),
        local_endpoint: Endpoint { service_name: svc_name },
        tags,
    }
}

/// Exports every span of a collector as Zipkin v2 spans. Parents are the
/// latest-finishing DAG predecessors within the same request.
pub fn export(collector: &TraceCollector, catalog: &RequestCatalog) -> Vec<ZipkinSpan> {
    // Group spans per request for parent resolution.
    let mut per_req: HashMap<u64, Vec<&Span>> = HashMap::new();
    for s in collector.spans() {
        per_req.entry(s.request.0).or_default().push(s);
    }
    let mut out = Vec::with_capacity(collector.spans().len());
    for spans in per_req.values() {
        let dag = &catalog.request(spans[0].request_type).dag;
        let by_node: HashMap<usize, &Span> = spans.iter().map(|s| (s.dag_node, *s)).collect();
        for s in spans {
            let parent = dag
                .parents(s.dag_node)
                .into_iter()
                .filter_map(|p| by_node.get(&p).copied())
                .max_by_key(|p| p.end);
            out.push(convert(s, parent, catalog));
        }
    }
    // Deterministic order for stable exports.
    out.sort_by(|a, b| a.timestamp.cmp(&b.timestamp).then_with(|| a.id.cmp(&b.id)));
    out
}

/// Serializes an export to the Zipkin v2 JSON array format.
pub fn to_json(spans: &[ZipkinSpan]) -> serde_json::Result<String> {
    serde_json::to_string_pretty(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use crate::span::RequestId;
    use mlp_cluster::MachineId;
    use mlp_sim::{SimDuration, SimTime};

    /// Builds a collector holding a full read-user-timeline request
    /// (chain 0→1→2).
    fn collector_with_chain(catalog: &RequestCatalog) -> TraceCollector {
        let rt = catalog.request_by_name("read-user-timeline").unwrap();
        let mut c = TraceCollector::new();
        let mut t = SimTime::from_millis(10);
        for (i, node) in rt.dag.nodes().iter().enumerate() {
            let end = t + SimDuration::from_millis(5);
            c.record_span(Span {
                request: RequestId(7),
                request_type: rt.id,
                service: node.service,
                dag_node: i,
                machine: MachineId(i as u32),
                planned_start: t,
                start: t,
                end,
                satisfaction: 1.0,
            });
            t = end + SimDuration::from_micros(500);
        }
        c
    }

    #[test]
    fn export_reconstructs_parent_links() {
        let catalog = RequestCatalog::paper();
        let c = collector_with_chain(&catalog);
        let spans = export(&c, &catalog);
        assert_eq!(spans.len(), 3);
        // Root has no parent; each subsequent span points at its DAG parent.
        assert!(spans[0].parent_id.is_none());
        assert_eq!(spans[1].parent_id.as_deref(), Some(spans[0].id.as_str()));
        assert_eq!(spans[2].parent_id.as_deref(), Some(spans[1].id.as_str()));
        // All share one trace id.
        assert!(spans.iter().all(|s| s.trace_id == spans[0].trace_id));
    }

    #[test]
    fn tags_carry_simulator_context() {
        let catalog = RequestCatalog::paper();
        let c = collector_with_chain(&catalog);
        let spans = export(&c, &catalog);
        let s = &spans[1];
        assert_eq!(s.tags["machine"], "m1");
        assert_eq!(s.tags["dag.node"], "1");
        assert_eq!(s.tags["satisfaction"], "1.000");
        assert_eq!(s.name, "user-timeline-read");
    }

    #[test]
    fn json_roundtrip() {
        let catalog = RequestCatalog::paper();
        let c = collector_with_chain(&catalog);
        let spans = export(&c, &catalog);
        let json = to_json(&spans).unwrap();
        assert!(json.contains("\"traceId\""));
        assert!(json.contains("\"localEndpoint\""));
        let back: Vec<ZipkinSpan> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn durations_are_microseconds() {
        let catalog = RequestCatalog::paper();
        let c = collector_with_chain(&catalog);
        let spans = export(&c, &catalog);
        assert!(spans.iter().all(|s| s.duration == 5_000));
        assert_eq!(spans[0].timestamp, 10_000);
    }
}
