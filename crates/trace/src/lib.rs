//! # mlp-trace — tracing, profiling, and metrics substrate
//!
//! The simulation-side equivalent of the paper's observability stack
//! (Section III-D / Table III): *Zipkin/Jaeger* distributed tracing becomes
//! [`span`] + [`collector`]; the per-container *dockerstats* history that
//! feeds scheduling becomes the [`profile`] store (the paper's
//! `s_i = [u_cpu, u_mem, u_io, l, Δt]` matrix of historical execution
//! cases); *Prometheus*-style counters live in [`metrics`].

pub mod audit;
pub mod collector;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod zipkin;

pub use audit::{AuditLog, Decision, DecisionKind};
pub use collector::{LatencyBreakdown, RequestRecord, StreamingStats, TraceCollector};
pub use metrics::MetricsRegistry;
pub use profile::{ExecutionCase, ProfileStore};
pub use span::{RequestId, Span};
