//! Prometheus-style counters and gauges.
//!
//! A minimal metrics registry standing in for the Prometheus + cAdvisor
//! monitoring sub-system of Section II. The engine publishes scheduler
//! internals (delay-slot fills, resource stretches, queue switches) here so
//! experiments and ablations can introspect *why* a scheme behaved as it
//! did, not just its end metrics.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A thread-safe registry of named counters and gauges.
///
/// Cloning is cheap (shared handle) so the engine, scheduler, and
/// self-healing module can all publish to the same registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Locks the shared state; a poisoned lock (publisher panicked) still
    /// yields the data — metrics must never compound a failure.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Increments a counter by 1.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&self, name: &str, n: u64) {
        let mut inner = self.locked();
        *inner.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.locked().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.locked().gauges.insert(name.to_string(), v);
    }

    /// Reads a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.locked().gauges.get(name).copied()
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.locked().counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Snapshot of all gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.locked().gauges.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Clears everything (between experiment repetitions).
    pub fn reset(&self) {
        let mut inner = self.locked();
        inner.counters.clear();
        inner.gauges.clear();
    }
}

/// Well-known metric names published by the v-MLP engine.
pub mod names {
    /// Requests that entered the waiting queue.
    pub const REQUESTS_ARRIVED: &str = "requests_arrived";
    /// Requests fully completed.
    pub const REQUESTS_COMPLETED: &str = "requests_completed";
    /// Delay-slot candidates promoted into stalls (self-healing).
    pub const DELAY_SLOT_FILLS: &str = "delay_slot_fills";
    /// Resource-stretch actions taken (self-healing).
    pub const RESOURCE_STRETCHES: &str = "resource_stretches";
    /// Waiting-queue switches (Algorithm 1 line 26).
    pub const QUEUE_SWITCHES: &str = "queue_switches";
    /// Spans that invoked later than planned.
    pub const LATE_INVOCATIONS: &str = "late_invocations";
    /// Running invocations killed by fault injection (transient or crash).
    pub const NODE_FAILURES: &str = "node_failures";
    /// Failed nodes re-attempted (scheduler retry or engine fallback).
    pub const RETRIES: &str = "retries";
    /// Requests given up on (load shedding / exhausted retry budget).
    pub const ABANDONS: &str = "abandons";
    /// Machine crash events injected.
    pub const MACHINE_CRASHES: &str = "machine_crashes";
    /// Nodes moved to a surviving machine after a crash.
    pub const CRASH_REPLANS: &str = "crash_replans";
    /// Recoverable bookkeeping invariant violations (should stay 0).
    pub const INVARIANT_VIOLATIONS: &str = "invariant_violations";
    /// Gauge: mean time-to-recover crash-orphaned nodes, in ms.
    pub const MTTR_MS: &str = "mttr_ms";
    /// Gauge: largest per-machine ledger timeline (retained breakpoints)
    /// seen at any sampling tick — the figure pruning must keep bounded.
    pub const LEDGER_TIMELINE_MAX: &str = "ledger_timeline_max";
    /// Gauge: total retained ledger breakpoints across the cluster at the
    /// latest sampling tick.
    pub const LEDGER_TIMELINE_TOTAL: &str = "ledger_timeline_total";
    /// Placements that spilled out of the request's home shard because no
    /// member machine had a feasible window (cross-shard work stealing).
    /// Always 0 with one shard.
    pub const SHARD_OVERFLOWS: &str = "shard_overflows";
    /// Gauge: high-water mark of the engine's request table (live admitted
    /// requests). Proves memory tracks *in-flight* work, not total
    /// arrivals: on a healthy open-loop run this plateaus near
    /// rate × residence time while arrivals grow without bound.
    pub const REQUEST_TABLE_PEAK: &str = "request_table_peak";
    /// Requests shed at the overload admission gate (queue cap, deadline
    /// infeasibility, or open circuit). Always 0 with the subsystem off.
    pub const OVERLOAD_SHED_REQUESTS: &str = "overload_shed_requests";
    /// Optional DAG branches skipped under brownout tier ≥ 2.
    pub const OVERLOAD_BRANCH_SHEDS: &str = "overload_branch_sheds";
    /// Retries refused by the exhausted global retry budget.
    pub const OVERLOAD_RETRIES_DENIED: &str = "overload_retries_denied";
    /// Stretch healing actions suppressed under brownout tier ≥ 1.
    pub const OVERLOAD_STRETCHES_SUPPRESSED: &str = "overload_stretches_suppressed";
    /// Cached reorder-ratio terms recomputed after a profile-store version
    /// bump (incremental reorder-index invalidations). Always 0 on the
    /// sort-based queue path.
    pub const INDEX_INVALIDATIONS: &str = "index_invalidations";
    /// Gauge: cluster pressure signal in [0, 1] at the latest tick.
    pub const OVERLOAD_PRESSURE: &str = "overload_pressure";
    /// Gauge: highest pressure sample of the run.
    pub const OVERLOAD_PRESSURE_PEAK: &str = "overload_pressure_peak";
    /// Gauge: brownout degradation tier (0–3) at the latest tick.
    pub const BROWNOUT_TIER: &str = "brownout_tier";
    /// Gauge: circuits currently not Closed at the latest tick.
    pub const BREAKER_OPEN_CIRCUITS: &str = "breaker_open_circuits";
    /// Gauge: total circuit-breaker Open trips over the run.
    pub const BREAKER_OPENS: &str = "breaker_opens";
    /// Gauge: whole retry tokens left in the global budget.
    pub const RETRY_TOKENS: &str = "retry_tokens";
    /// Gauge: retries granted by the global budget over the run.
    pub const OVERLOAD_RETRIES_GRANTED: &str = "overload_retries_granted";

    /// Gauge name for one machine's retained ledger timeline length.
    pub fn ledger_timeline(machine: u32) -> String {
        format!("ledger_timeline_m{machine}")
    }

    /// Gauge name for one shard's mean instantaneous utilization.
    pub fn shard_utilization(shard: u32) -> String {
        format!("shard_utilization_s{shard}")
    }

    /// Gauge name for one shard's peak sampled utilization — a high-water
    /// mark across ticks, so it survives the end-of-run drain (the last
    /// instantaneous sample is always ≈0).
    pub fn shard_utilization_peak(shard: u32) -> String {
        format!("shard_utilization_peak_s{shard}")
    }

    /// Gauge name for one shard's retained ledger breakpoints (sum over
    /// its member machines).
    pub fn shard_ledger_timeline(shard: u32) -> String {
        format!("shard_ledger_timeline_s{shard}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc(names::DELAY_SLOT_FILLS);
        m.add(names::DELAY_SLOT_FILLS, 4);
        assert_eq!(m.counter(names::DELAY_SLOT_FILLS), 5);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = MetricsRegistry::new();
        m.set_gauge("util", 0.4);
        m.set_gauge("util", 0.7);
        assert_eq!(m.gauge("util"), Some(0.7));
        assert_eq!(m.gauge("other"), None);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.inc("x");
        assert_eq!(m.counter("x"), 1);
    }

    #[test]
    fn snapshots_are_sorted() {
        let m = MetricsRegistry::new();
        m.inc("zebra");
        m.inc("aardvark");
        let names: Vec<String> = m.counters().into_iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["aardvark".to_string(), "zebra".to_string()]);
    }

    #[test]
    fn reset_clears() {
        let m = MetricsRegistry::new();
        m.inc("x");
        m.set_gauge("g", 1.0);
        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert_eq!(m.gauge("g"), None);
    }

    #[test]
    fn concurrent_increments() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.inc("hits");
                    }
                });
            }
        });
        assert_eq!(m.counter("hits"), 8000);
    }
}
