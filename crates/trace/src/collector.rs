//! Trace collection and end-to-end request accounting.
//!
//! Two retention modes:
//!
//! * **exact** (the default): every [`Span`] and [`RequestRecord`] is kept,
//!   so any statistic can be computed after the fact and fixed-seed figure
//!   runs stay byte-identical. Memory is O(total requests).
//! * **streaming** ([`TraceCollector::streaming`]): records are folded
//!   into O(1) running aggregates on arrival — Welford mean, P² quantile
//!   markers, per-class and per-type counters, breakdown sums — and
//!   optionally spilled to a JSONL sink for offline analysis. Memory is
//!   O(request types), which is what lets a soak run push millions of
//!   requests through a laptop.

use crate::span::{RequestId, Span};
use mlp_model::{RequestTypeId, VolatilityClass};
use mlp_sim::{SimDuration, SimTime};
use mlp_stats::{Cdf, P2Quantile, Summary};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Critical-path decomposition of one request's end-to-end latency.
///
/// The engine walks the request's critical chain (the dependency path that
/// actually gated completion) and attributes every microsecond of
/// `end − arrival` to exactly one bucket, so the first five components
/// telescope to the measured latency ([`Self::total_ms`]). `healed_ms` is
/// informational — wall-clock the self-healing module reclaimed (it is
/// already absent from the other components, not part of the sum).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Waiting before admission / before a dependency-ready node was
    /// planned to run.
    pub queue_ms: f64,
    /// Scheduler-chosen delay between physical readiness and planned
    /// start (ledger alignment).
    pub placement_ms: f64,
    /// Caller→callee communication on the critical chain.
    pub comm_ms: f64,
    /// Pure execution time (what the spans would have taken uncapped).
    pub exec_ms: f64,
    /// Extra execution time caused by resource capping.
    pub cap_ms: f64,
    /// Wall-clock reclaimed by healing stretches (informational).
    pub healed_ms: f64,
}

impl LatencyBreakdown {
    /// Sum of the attributed components — equals the measured end-to-end
    /// latency (`healed_ms` excluded; it is already reflected in the
    /// shortened execution the other components measure).
    pub fn total_ms(&self) -> f64 {
        self.queue_ms + self.placement_ms + self.comm_ms + self.exec_ms + self.cap_ms
    }
}

/// End-to-end record of one finished request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request instance.
    pub id: RequestId,
    /// Its type.
    pub request_type: RequestTypeId,
    /// Volatility class of the type (denormalized for cheap filtering).
    pub class: VolatilityClass,
    /// Arrival time.
    pub arrival: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// SLO for this request, ms.
    pub slo_ms: f64,
    /// Critical-path latency attribution (absent in traces recorded
    /// before the field existed).
    #[serde(default)]
    pub breakdown: Option<LatencyBreakdown>,
}

impl RequestRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.end.since(self.arrival)
    }

    /// Whether the request violated its SLO (the QoS metric of Fig 10).
    pub fn violated(&self) -> bool {
        self.latency().as_millis_f64() > self.slo_ms
    }
}

/// Collects spans and request completions for one simulation run and
/// answers the questions the evaluation section asks: latency
/// distributions (Fig 12), tail latency (Fig 13), QoS-violation rates
/// (Fig 10), throughput (Fig 14), and lateness diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    spans: Vec<Span>,
    requests: Vec<RequestRecord>,
    /// Streaming-mode aggregates; `None` means exact mode (retain all).
    stream: Option<Box<StreamingStats>>,
}

impl TraceCollector {
    /// Creates an empty collector in exact mode (every record retained).
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Creates a collector in streaming mode: records are folded into
    /// constant-size aggregates instead of retained, with within-`horizon`
    /// completions counted separately (the throughput numerator). Record-
    /// level queries ([`spans`](Self::spans), [`requests`](Self::requests),
    /// [`completed_where`](Self::completed_where), [`latency_cdf`](Self::latency_cdf))
    /// see nothing in this mode; use [`streaming`](Self::streaming_stats)
    /// for the aggregate view.
    pub fn streaming(horizon: SimTime) -> Self {
        TraceCollector {
            spans: Vec::new(),
            requests: Vec::new(),
            stream: Some(Box::new(StreamingStats::new(horizon))),
        }
    }

    /// Attaches a JSONL spill sink (streaming mode only): every completed
    /// request is appended to `path` as one JSON object per line, so full
    /// records stay available offline while in-memory state stays O(1).
    pub fn with_spill(mut self, path: &Path) -> std::io::Result<Self> {
        let s = self.stream.as_mut().expect("spill sink requires a streaming-mode collector");
        s.spill = Some(JsonlSink::create(path)?);
        Ok(self)
    }

    /// The streaming aggregates, when in streaming mode.
    pub fn streaming_stats(&self) -> Option<&StreamingStats> {
        self.stream.as_deref()
    }

    /// Whether this collector folds instead of retains.
    pub fn is_streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// Approximate bytes of trace state currently held in memory. Exact
    /// mode grows with the run; streaming mode stays flat (the soak bench
    /// records this to prove it).
    pub fn approx_retained_bytes(&self) -> usize {
        let base = std::mem::size_of::<TraceCollector>()
            + self.spans.capacity() * std::mem::size_of::<Span>()
            + self.requests.capacity() * std::mem::size_of::<RequestRecord>();
        match &self.stream {
            None => base,
            Some(s) => {
                base + std::mem::size_of::<StreamingStats>()
                    + s.types.len()
                        * (std::mem::size_of::<TypeAgg>()
                            + std::mem::size_of::<RequestTypeId>()
                            + 32)
            }
        }
    }

    /// Records one completed span.
    pub fn record_span(&mut self, span: Span) {
        match &mut self.stream {
            Some(s) => s.fold_span(&span),
            None => self.spans.push(span),
        }
    }

    /// Records one completed request.
    pub fn record_request(&mut self, rec: RequestRecord) {
        match &mut self.stream {
            Some(s) => s.fold_request(&rec),
            None => self.requests.push(rec),
        }
    }

    /// All spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All completed requests.
    pub fn requests(&self) -> &[RequestRecord] {
        &self.requests
    }

    /// Number of completed requests (throughput numerator: "the number of
    /// finished requests within certain scheduling period").
    pub fn completed(&self) -> usize {
        match &self.stream {
            Some(s) => s.completed,
            None => self.requests.len(),
        }
    }

    /// Number of completed requests matching a predicate.
    pub fn completed_where(&self, mut pred: impl FnMut(&RequestRecord) -> bool) -> usize {
        self.requests.iter().filter(|r| pred(r)).count()
    }

    /// Mean critical-path latency attribution over completed requests that
    /// carry a breakdown. `None` when no request has one (attribution off
    /// or no completions).
    pub fn mean_breakdown(&self) -> Option<LatencyBreakdown> {
        if let Some(s) = &self.stream {
            return s.mean_breakdown();
        }
        let mut acc = LatencyBreakdown::default();
        let mut n = 0usize;
        for b in self.requests.iter().filter_map(|r| r.breakdown.as_ref()) {
            acc.queue_ms += b.queue_ms;
            acc.placement_ms += b.placement_ms;
            acc.comm_ms += b.comm_ms;
            acc.exec_ms += b.exec_ms;
            acc.cap_ms += b.cap_ms;
            acc.healed_ms += b.healed_ms;
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let inv = 1.0 / n as f64;
        acc.queue_ms *= inv;
        acc.placement_ms *= inv;
        acc.comm_ms *= inv;
        acc.exec_ms *= inv;
        acc.cap_ms *= inv;
        acc.healed_ms *= inv;
        Some(acc)
    }

    /// Fraction of completed requests that violated their SLO, optionally
    /// restricted to one volatility class.
    pub fn violation_rate(&self, class: Option<VolatilityClass>) -> f64 {
        if let Some(s) = &self.stream {
            return s.violation_rate(class);
        }
        let (mut total, mut bad) = (0usize, 0usize);
        for r in &self.requests {
            if class.is_none_or(|c| r.class == c) {
                total += 1;
                if r.violated() {
                    bad += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }

    /// Latency CDF (ms), optionally restricted to one volatility class.
    pub fn latency_cdf(&self, class: Option<VolatilityClass>) -> Cdf {
        let mut cdf = Cdf::new();
        for r in &self.requests {
            if class.is_none_or(|c| r.class == c) {
                cdf.record(r.latency().as_millis_f64());
            }
        }
        cdf
    }

    /// The `p`-percentile latency in ms (e.g. 99.0 for the tail of Fig 13);
    /// `None` when no matching requests completed. Streaming mode answers
    /// from its P² estimators, which track p50/p90/p99 overall and p99 per
    /// class; other combinations return `None` there.
    pub fn latency_percentile(&self, p: f64, class: Option<VolatilityClass>) -> Option<f64> {
        if let Some(s) = &self.stream {
            return s.latency_percentile(p, class);
        }
        self.latency_cdf(class).percentile(p)
    }

    /// Per-service execution-time summaries (ms) across all spans.
    pub fn service_exec_summaries(&self) -> HashMap<mlp_model::ServiceId, Summary> {
        let mut map: HashMap<mlp_model::ServiceId, Summary> = HashMap::new();
        for s in &self.spans {
            map.entry(s.service).or_default().record(s.duration().as_millis_f64());
        }
        map
    }

    /// Fraction of spans that started later than planned, and their mean
    /// lateness (ms) — how disturbed the schedule was.
    pub fn lateness_stats(&self) -> (f64, f64) {
        if let Some(s) = &self.stream {
            return s.lateness_stats();
        }
        if self.spans.is_empty() {
            return (0.0, 0.0);
        }
        let late: Vec<&Span> = self.spans.iter().filter(|s| s.was_late()).collect();
        let frac = late.len() as f64 / self.spans.len() as f64;
        let mean = if late.is_empty() {
            0.0
        } else {
            late.iter().map(|s| s.lateness().as_millis_f64()).sum::<f64>() / late.len() as f64
        };
        (frac, mean)
    }

    /// Per-request-type end-to-end statistics: `(type, completed,
    /// violation fraction, p50 ms, p99 ms)`, sorted by type id. The
    /// per-type view behind Table V's category rows.
    pub fn per_type_stats(&self) -> Vec<(RequestTypeId, usize, f64, f64, f64)> {
        if let Some(s) = &self.stream {
            return s.per_type_stats();
        }
        let mut by_type: HashMap<RequestTypeId, Vec<&RequestRecord>> = HashMap::new();
        for r in &self.requests {
            by_type.entry(r.request_type).or_default().push(r);
        }
        let mut out: Vec<_> = by_type
            .into_iter()
            .map(|(ty, recs)| {
                let n = recs.len();
                let viol = recs.iter().filter(|r| r.violated()).count() as f64 / n as f64;
                let mut cdf = Cdf::new();
                for r in &recs {
                    cdf.record(r.latency().as_millis_f64());
                }
                let p50 = cdf.percentile(50.0).unwrap_or(0.0);
                let p99 = cdf.percentile(99.0).unwrap_or(0.0);
                (ty, n, viol, p50, p99)
            })
            .collect();
        out.sort_by_key(|(ty, ..)| *ty);
        out
    }

    /// Fraction of spans that ran resource-capped (contention indicator).
    pub fn capped_fraction(&self) -> f64 {
        if let Some(s) = &self.stream {
            return s.capped_fraction();
        }
        if self.spans.is_empty() {
            return 0.0;
        }
        self.spans.iter().filter(|s| s.was_capped()).count() as f64 / self.spans.len() as f64
    }
}

fn class_idx(c: VolatilityClass) -> usize {
    match c {
        VolatilityClass::Low => 0,
        VolatilityClass::Mid => 1,
        VolatilityClass::High => 2,
    }
}

/// Per-volatility-class streaming aggregates.
#[derive(Debug, Clone)]
struct ClassAgg {
    total: usize,
    violated: usize,
    p99: P2Quantile,
}

impl ClassAgg {
    fn new() -> Self {
        ClassAgg { total: 0, violated: 0, p99: P2Quantile::new(0.99) }
    }
}

/// Per-request-type streaming aggregates.
#[derive(Debug, Clone)]
struct TypeAgg {
    count: usize,
    violated: usize,
    latency: Summary,
    p50: P2Quantile,
    p99: P2Quantile,
}

impl TypeAgg {
    fn new() -> Self {
        TypeAgg {
            count: 0,
            violated: 0,
            latency: Summary::new(),
            p50: P2Quantile::new(0.50),
            p99: P2Quantile::new(0.99),
        }
    }
}

/// Constant-memory request/span statistics: what a streaming-mode
/// [`TraceCollector`] holds instead of the records themselves.
///
/// Counts are exact (completions, violations, horizon splits, breakdown
/// sums via plain accumulation; mean/variance via Welford's update inside
/// [`Summary`]); quantiles are P² five-marker estimates. Everything is
/// O(1) per record and O(request types) total.
#[derive(Debug, Clone)]
pub struct StreamingStats {
    horizon: SimTime,
    completed: usize,
    completed_in_horizon: usize,
    good_in_horizon: usize,
    violated: usize,
    latency: Summary,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
    class: [ClassAgg; 3],
    types: BTreeMap<RequestTypeId, TypeAgg>,
    breakdown_sum: LatencyBreakdown,
    breakdown_n: usize,
    spans_total: usize,
    spans_late: usize,
    lateness_sum_ms: f64,
    spans_capped: usize,
    spill: Option<JsonlSink>,
}

impl StreamingStats {
    fn new(horizon: SimTime) -> Self {
        StreamingStats {
            horizon,
            completed: 0,
            completed_in_horizon: 0,
            good_in_horizon: 0,
            violated: 0,
            latency: Summary::new(),
            p50: P2Quantile::new(0.50),
            p90: P2Quantile::new(0.90),
            p99: P2Quantile::new(0.99),
            class: [ClassAgg::new(), ClassAgg::new(), ClassAgg::new()],
            types: BTreeMap::new(),
            breakdown_sum: LatencyBreakdown::default(),
            breakdown_n: 0,
            spans_total: 0,
            spans_late: 0,
            lateness_sum_ms: 0.0,
            spans_capped: 0,
            spill: None,
        }
    }

    fn fold_span(&mut self, span: &Span) {
        self.spans_total += 1;
        if span.was_late() {
            self.spans_late += 1;
            self.lateness_sum_ms += span.lateness().as_millis_f64();
        }
        if span.was_capped() {
            self.spans_capped += 1;
        }
    }

    fn fold_request(&mut self, rec: &RequestRecord) {
        let lat = rec.latency().as_millis_f64();
        let violated = rec.violated();
        self.completed += 1;
        if rec.end <= self.horizon {
            self.completed_in_horizon += 1;
            if !violated {
                self.good_in_horizon += 1;
            }
        }
        if violated {
            self.violated += 1;
        }
        self.latency.record(lat);
        self.p50.record(lat);
        self.p90.record(lat);
        self.p99.record(lat);
        let c = &mut self.class[class_idx(rec.class)];
        c.total += 1;
        if violated {
            c.violated += 1;
        }
        c.p99.record(lat);
        let t = self.types.entry(rec.request_type).or_insert_with(TypeAgg::new);
        t.count += 1;
        if violated {
            t.violated += 1;
        }
        t.latency.record(lat);
        t.p50.record(lat);
        t.p99.record(lat);
        if let Some(b) = &rec.breakdown {
            self.breakdown_sum.queue_ms += b.queue_ms;
            self.breakdown_sum.placement_ms += b.placement_ms;
            self.breakdown_sum.comm_ms += b.comm_ms;
            self.breakdown_sum.exec_ms += b.exec_ms;
            self.breakdown_sum.cap_ms += b.cap_ms;
            self.breakdown_sum.healed_ms += b.healed_ms;
            self.breakdown_n += 1;
        }
        if let Some(sink) = &self.spill {
            sink.append(rec);
        }
    }

    /// Completed requests.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Completions with `end <= horizon` (throughput numerator).
    pub fn completed_in_horizon(&self) -> usize {
        self.completed_in_horizon
    }

    /// Within-horizon completions that also met their SLO (goodput).
    pub fn good_in_horizon(&self) -> usize {
        self.good_in_horizon
    }

    /// Completed-and-violated count (excludes unfinished requests, which
    /// the engine accounts separately).
    pub fn violated(&self) -> usize {
        self.violated
    }

    /// Mean end-to-end latency, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latency.count() == 0 {
            0.0
        } else {
            self.latency.mean()
        }
    }

    fn violation_rate(&self, class: Option<VolatilityClass>) -> f64 {
        let (total, bad) = match class {
            None => (self.completed, self.violated),
            Some(c) => {
                let a = &self.class[class_idx(c)];
                (a.total, a.violated)
            }
        };
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }

    fn latency_percentile(&self, p: f64, class: Option<VolatilityClass>) -> Option<f64> {
        match class {
            None => {
                let est = if (p - 50.0).abs() < 1e-9 {
                    &self.p50
                } else if (p - 90.0).abs() < 1e-9 {
                    &self.p90
                } else if (p - 99.0).abs() < 1e-9 {
                    &self.p99
                } else {
                    return None;
                };
                est.estimate()
            }
            Some(c) if (p - 99.0).abs() < 1e-9 => self.class[class_idx(c)].p99.estimate(),
            Some(_) => None,
        }
    }

    fn mean_breakdown(&self) -> Option<LatencyBreakdown> {
        if self.breakdown_n == 0 {
            return None;
        }
        let inv = 1.0 / self.breakdown_n as f64;
        Some(LatencyBreakdown {
            queue_ms: self.breakdown_sum.queue_ms * inv,
            placement_ms: self.breakdown_sum.placement_ms * inv,
            comm_ms: self.breakdown_sum.comm_ms * inv,
            exec_ms: self.breakdown_sum.exec_ms * inv,
            cap_ms: self.breakdown_sum.cap_ms * inv,
            healed_ms: self.breakdown_sum.healed_ms * inv,
        })
    }

    fn lateness_stats(&self) -> (f64, f64) {
        if self.spans_total == 0 {
            return (0.0, 0.0);
        }
        let frac = self.spans_late as f64 / self.spans_total as f64;
        let mean =
            if self.spans_late == 0 { 0.0 } else { self.lateness_sum_ms / self.spans_late as f64 };
        (frac, mean)
    }

    fn capped_fraction(&self) -> f64 {
        if self.spans_total == 0 {
            0.0
        } else {
            self.spans_capped as f64 / self.spans_total as f64
        }
    }

    fn per_type_stats(&self) -> Vec<(RequestTypeId, usize, f64, f64, f64)> {
        self.types
            .iter()
            .map(|(&ty, a)| {
                let viol = if a.count == 0 { 0.0 } else { a.violated as f64 / a.count as f64 };
                (
                    ty,
                    a.count,
                    viol,
                    a.p50.estimate().unwrap_or(0.0),
                    a.p99.estimate().unwrap_or(0.0),
                )
            })
            .collect()
    }

    /// Spans folded so far.
    pub fn spans_total(&self) -> usize {
        self.spans_total
    }

    /// Records the spill sink failed to write (I/O errors are counted,
    /// never allowed to kill a multi-hour soak run).
    pub fn spill_errors(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.errors())
    }

    /// Flushes the spill sink, returning its path when one is attached.
    pub fn flush_spill(&self) -> Option<&Path> {
        self.spill.as_ref().map(|s| {
            s.flush();
            s.path.as_path()
        })
    }
}

/// Append-only JSONL sink for spilled [`RequestRecord`]s.
///
/// Shared behind `Arc<Mutex<_>>` so the collector stays `Clone` (clones
/// append to the same file); write failures are counted, not propagated —
/// a full disk must degrade the spill, not abort the simulation.
#[derive(Clone)]
struct JsonlSink {
    path: PathBuf,
    writer: Arc<Mutex<std::io::BufWriter<std::fs::File>>>,
    errors: Arc<std::sync::atomic::AtomicU64>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").field("path", &self.path).finish_non_exhaustive()
    }
}

impl JsonlSink {
    fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            path: path.to_path_buf(),
            writer: Arc::new(Mutex::new(std::io::BufWriter::new(file))),
            errors: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        })
    }

    fn append(&self, rec: &RequestRecord) {
        let line = match serde_json::to_string(rec) {
            Ok(l) => l,
            Err(_) => {
                self.errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return;
            }
        };
        let mut w = match self.writer.lock() {
            Ok(w) => w,
            Err(poisoned) => poisoned.into_inner(),
        };
        if writeln!(w, "{line}").is_err() {
            self.errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let mut w = match self.writer.lock() {
            Ok(w) => w,
            Err(poisoned) => poisoned.into_inner(),
        };
        if w.flush().is_err() {
            self.errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn errors(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::MachineId;
    use mlp_model::ServiceId;

    fn req(
        id: u64,
        class: VolatilityClass,
        arrival_ms: u64,
        end_ms: u64,
        slo: f64,
    ) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            request_type: RequestTypeId(0),
            class,
            arrival: SimTime::from_millis(arrival_ms),
            end: SimTime::from_millis(end_ms),
            slo_ms: slo,
            breakdown: None,
        }
    }

    fn span(service: u32, start: u64, end: u64, planned: u64, sat: f64) -> Span {
        Span {
            request: RequestId(0),
            request_type: RequestTypeId(0),
            service: ServiceId(service),
            dag_node: 0,
            machine: MachineId(0),
            planned_start: SimTime::from_millis(planned),
            start: SimTime::from_millis(start),
            end: SimTime::from_millis(end),
            satisfaction: sat,
        }
    }

    #[test]
    fn violation_rate_by_class() {
        let mut c = TraceCollector::new();
        c.record_request(req(1, VolatilityClass::High, 0, 100, 50.0)); // violated
        c.record_request(req(2, VolatilityClass::High, 0, 30, 50.0)); // ok
        c.record_request(req(3, VolatilityClass::Low, 0, 10, 50.0)); // ok
        assert!((c.violation_rate(None) - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.violation_rate(Some(VolatilityClass::High)) - 0.5).abs() < 1e-12);
        assert_eq!(c.violation_rate(Some(VolatilityClass::Low)), 0.0);
        assert_eq!(c.violation_rate(Some(VolatilityClass::Mid)), 0.0);
    }

    #[test]
    fn latency_percentiles() {
        let mut c = TraceCollector::new();
        for i in 1..=100u64 {
            c.record_request(req(i, VolatilityClass::Mid, 0, i, 1e9));
        }
        assert_eq!(c.latency_percentile(50.0, None), Some(50.0));
        assert_eq!(c.latency_percentile(99.0, None), Some(99.0));
        assert_eq!(c.latency_percentile(99.0, Some(VolatilityClass::High)), None);
    }

    #[test]
    fn lateness_and_capping() {
        let mut c = TraceCollector::new();
        c.record_span(span(1, 10, 20, 10, 1.0)); // on time, uncapped
        c.record_span(span(1, 15, 30, 10, 0.5)); // 5ms late, capped
        c.record_span(span(2, 8, 20, 10, 1.0)); // early
        let (frac, mean) = c.lateness_stats();
        assert!((frac - 1.0 / 3.0).abs() < 1e-12);
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((c.capped_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn service_summaries_group_by_template() {
        let mut c = TraceCollector::new();
        c.record_span(span(1, 0, 10, 0, 1.0));
        c.record_span(span(1, 0, 20, 0, 1.0));
        c.record_span(span(2, 0, 40, 0, 1.0));
        let sums = c.service_exec_summaries();
        assert_eq!(sums[&ServiceId(1)].count(), 2);
        assert_eq!(sums[&ServiceId(1)].mean(), 15.0);
        assert_eq!(sums[&ServiceId(2)].mean(), 40.0);
    }

    #[test]
    fn per_type_stats_partition_requests() {
        let mut c = TraceCollector::new();
        for i in 0..10u64 {
            let ty = RequestTypeId((i % 2) as u32);
            c.record_request(RequestRecord {
                id: RequestId(i),
                request_type: ty,
                class: VolatilityClass::Low,
                arrival: SimTime::ZERO,
                end: SimTime::from_millis(10 + i * 10),
                slo_ms: 55.0,
                breakdown: None,
            });
        }
        let stats = c.per_type_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, RequestTypeId(0));
        assert_eq!(stats[0].1 + stats[1].1, 10);
        // Latencies 10..100ms, slo 55: some of each type violate.
        assert!(stats.iter().all(|s| s.2 > 0.0 && s.2 < 1.0));
        assert!(stats.iter().all(|s| s.3 <= s.4));
    }

    #[test]
    fn empty_collector_is_calm() {
        let c = TraceCollector::new();
        assert_eq!(c.completed(), 0);
        assert_eq!(c.violation_rate(None), 0.0);
        assert_eq!(c.lateness_stats(), (0.0, 0.0));
        assert_eq!(c.capped_fraction(), 0.0);
        assert_eq!(c.latency_percentile(50.0, None), None);
    }

    /// Feeds the same records through both modes and checks the streaming
    /// aggregates agree with the exact answers (exactly for counts and
    /// means, approximately for P² quantiles).
    #[test]
    fn streaming_mode_matches_exact_aggregates() {
        let horizon = SimTime::from_millis(60);
        let mut exact = TraceCollector::new();
        let mut stream = TraceCollector::streaming(horizon);
        for i in 1..=200u64 {
            let class = match i % 3 {
                0 => VolatilityClass::Low,
                1 => VolatilityClass::Mid,
                _ => VolatilityClass::High,
            };
            let mut r = req(i, class, 0, i % 100, 50.0);
            r.request_type = RequestTypeId((i % 2) as u32);
            r.breakdown = Some(LatencyBreakdown {
                queue_ms: 1.0,
                placement_ms: 2.0,
                comm_ms: 3.0,
                exec_ms: (i % 100) as f64 - 6.0,
                cap_ms: 0.0,
                healed_ms: 0.5,
            });
            exact.record_request(r);
            stream.record_request(r);
            let s = span(
                1,
                10,
                20,
                if i % 4 == 0 { 5 } else { 10 },
                if i % 5 == 0 { 0.5 } else { 1.0 },
            );
            exact.record_span(s);
            stream.record_span(s);
        }
        assert!(stream.is_streaming() && !exact.is_streaming());
        assert_eq!(stream.completed(), exact.completed());
        assert_eq!(stream.violation_rate(None), exact.violation_rate(None));
        for c in [VolatilityClass::Low, VolatilityClass::Mid, VolatilityClass::High] {
            assert_eq!(stream.violation_rate(Some(c)), exact.violation_rate(Some(c)));
        }
        assert_eq!(stream.lateness_stats(), exact.lateness_stats());
        assert_eq!(stream.capped_fraction(), exact.capped_fraction());
        let (se, ee) = (stream.mean_breakdown().unwrap(), exact.mean_breakdown().unwrap());
        assert!((se.total_ms() - ee.total_ms()).abs() < 1e-9);
        assert!((se.healed_ms - ee.healed_ms).abs() < 1e-9);
        let ss = stream.streaming_stats().unwrap();
        assert_eq!(
            ss.completed_in_horizon(),
            exact.completed_where(|r| r.end <= horizon),
            "horizon split must be exact"
        );
        assert_eq!(
            ss.good_in_horizon(),
            exact.completed_where(|r| r.end <= horizon && !r.violated()),
        );
        let exact_mean = exact.latency_cdf(None).mean();
        assert!((ss.mean_latency_ms() - exact_mean).abs() < 1e-9, "Welford mean must be exact");
        // P² estimates: approximate, but close on a smooth distribution.
        let p50e = exact.latency_percentile(50.0, None).unwrap();
        let p50s = stream.latency_percentile(50.0, None).unwrap();
        assert!((p50s - p50e).abs() < 10.0, "p50 stream {p50s} vs exact {p50e}");
        // Per-type partition survives folding.
        let st = stream.per_type_stats();
        let et = exact.per_type_stats();
        assert_eq!(st.len(), et.len());
        for (s, e) in st.iter().zip(&et) {
            assert_eq!(s.0, e.0);
            assert_eq!(s.1, e.1, "per-type counts must be exact");
            assert!((s.2 - e.2).abs() < 1e-12, "per-type violation fractions must be exact");
        }
        // Streaming retains no records and stays flat-memory.
        assert!(stream.requests().is_empty() && stream.spans().is_empty());
        assert!(stream.approx_retained_bytes() < 16 * 1024);
        assert!(exact.approx_retained_bytes() > stream.approx_retained_bytes());
    }

    #[test]
    fn streaming_spill_writes_jsonl() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vmlp-spill-{}.jsonl", std::process::id()));
        let mut c = TraceCollector::streaming(SimTime::from_secs(1)).with_spill(&path).unwrap();
        for i in 0..10u64 {
            c.record_request(req(i, VolatilityClass::Low, 0, 10 + i, 50.0));
        }
        let ss = c.streaming_stats().unwrap();
        assert_eq!(ss.flush_spill(), Some(path.as_path()));
        assert_eq!(ss.spill_errors(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        // Each line round-trips to the record it spilled.
        let back: RequestRecord = serde_json::from_str(lines[3]).unwrap();
        assert_eq!(back.id, RequestId(3));
        assert_eq!(back.latency(), SimDuration::from_millis(13));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "streaming-mode collector")]
    fn spill_on_exact_collector_panics() {
        let dir = std::env::temp_dir();
        let path = dir.join("vmlp-never-created.jsonl");
        let _ = TraceCollector::new().with_spill(&path);
    }
}
