//! Trace collection and end-to-end request accounting.

use crate::span::{RequestId, Span};
use mlp_model::{RequestTypeId, VolatilityClass};
use mlp_sim::{SimDuration, SimTime};
use mlp_stats::{Cdf, Summary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Critical-path decomposition of one request's end-to-end latency.
///
/// The engine walks the request's critical chain (the dependency path that
/// actually gated completion) and attributes every microsecond of
/// `end − arrival` to exactly one bucket, so the first five components
/// telescope to the measured latency ([`Self::total_ms`]). `healed_ms` is
/// informational — wall-clock the self-healing module reclaimed (it is
/// already absent from the other components, not part of the sum).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Waiting before admission / before a dependency-ready node was
    /// planned to run.
    pub queue_ms: f64,
    /// Scheduler-chosen delay between physical readiness and planned
    /// start (ledger alignment).
    pub placement_ms: f64,
    /// Caller→callee communication on the critical chain.
    pub comm_ms: f64,
    /// Pure execution time (what the spans would have taken uncapped).
    pub exec_ms: f64,
    /// Extra execution time caused by resource capping.
    pub cap_ms: f64,
    /// Wall-clock reclaimed by healing stretches (informational).
    pub healed_ms: f64,
}

impl LatencyBreakdown {
    /// Sum of the attributed components — equals the measured end-to-end
    /// latency (`healed_ms` excluded; it is already reflected in the
    /// shortened execution the other components measure).
    pub fn total_ms(&self) -> f64 {
        self.queue_ms + self.placement_ms + self.comm_ms + self.exec_ms + self.cap_ms
    }
}

/// End-to-end record of one finished request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request instance.
    pub id: RequestId,
    /// Its type.
    pub request_type: RequestTypeId,
    /// Volatility class of the type (denormalized for cheap filtering).
    pub class: VolatilityClass,
    /// Arrival time.
    pub arrival: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// SLO for this request, ms.
    pub slo_ms: f64,
    /// Critical-path latency attribution (absent in traces recorded
    /// before the field existed).
    #[serde(default)]
    pub breakdown: Option<LatencyBreakdown>,
}

impl RequestRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.end.since(self.arrival)
    }

    /// Whether the request violated its SLO (the QoS metric of Fig 10).
    pub fn violated(&self) -> bool {
        self.latency().as_millis_f64() > self.slo_ms
    }
}

/// Collects spans and request completions for one simulation run and
/// answers the questions the evaluation section asks: latency
/// distributions (Fig 12), tail latency (Fig 13), QoS-violation rates
/// (Fig 10), throughput (Fig 14), and lateness diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    spans: Vec<Span>,
    requests: Vec<RequestRecord>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Records one completed span.
    pub fn record_span(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Records one completed request.
    pub fn record_request(&mut self, rec: RequestRecord) {
        self.requests.push(rec);
    }

    /// All spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All completed requests.
    pub fn requests(&self) -> &[RequestRecord] {
        &self.requests
    }

    /// Number of completed requests (throughput numerator: "the number of
    /// finished requests within certain scheduling period").
    pub fn completed(&self) -> usize {
        self.requests.len()
    }

    /// Number of completed requests matching a predicate.
    pub fn completed_where(&self, mut pred: impl FnMut(&RequestRecord) -> bool) -> usize {
        self.requests.iter().filter(|r| pred(r)).count()
    }

    /// Mean critical-path latency attribution over completed requests that
    /// carry a breakdown. `None` when no request has one (attribution off
    /// or no completions).
    pub fn mean_breakdown(&self) -> Option<LatencyBreakdown> {
        let mut acc = LatencyBreakdown::default();
        let mut n = 0usize;
        for b in self.requests.iter().filter_map(|r| r.breakdown.as_ref()) {
            acc.queue_ms += b.queue_ms;
            acc.placement_ms += b.placement_ms;
            acc.comm_ms += b.comm_ms;
            acc.exec_ms += b.exec_ms;
            acc.cap_ms += b.cap_ms;
            acc.healed_ms += b.healed_ms;
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let inv = 1.0 / n as f64;
        acc.queue_ms *= inv;
        acc.placement_ms *= inv;
        acc.comm_ms *= inv;
        acc.exec_ms *= inv;
        acc.cap_ms *= inv;
        acc.healed_ms *= inv;
        Some(acc)
    }

    /// Fraction of completed requests that violated their SLO, optionally
    /// restricted to one volatility class.
    pub fn violation_rate(&self, class: Option<VolatilityClass>) -> f64 {
        let (mut total, mut bad) = (0usize, 0usize);
        for r in &self.requests {
            if class.is_none_or(|c| r.class == c) {
                total += 1;
                if r.violated() {
                    bad += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }

    /// Latency CDF (ms), optionally restricted to one volatility class.
    pub fn latency_cdf(&self, class: Option<VolatilityClass>) -> Cdf {
        let mut cdf = Cdf::new();
        for r in &self.requests {
            if class.is_none_or(|c| r.class == c) {
                cdf.record(r.latency().as_millis_f64());
            }
        }
        cdf
    }

    /// The `p`-percentile latency in ms (e.g. 99.0 for the tail of Fig 13);
    /// `None` when no matching requests completed.
    pub fn latency_percentile(&self, p: f64, class: Option<VolatilityClass>) -> Option<f64> {
        self.latency_cdf(class).percentile(p)
    }

    /// Per-service execution-time summaries (ms) across all spans.
    pub fn service_exec_summaries(&self) -> HashMap<mlp_model::ServiceId, Summary> {
        let mut map: HashMap<mlp_model::ServiceId, Summary> = HashMap::new();
        for s in &self.spans {
            map.entry(s.service).or_default().record(s.duration().as_millis_f64());
        }
        map
    }

    /// Fraction of spans that started later than planned, and their mean
    /// lateness (ms) — how disturbed the schedule was.
    pub fn lateness_stats(&self) -> (f64, f64) {
        if self.spans.is_empty() {
            return (0.0, 0.0);
        }
        let late: Vec<&Span> = self.spans.iter().filter(|s| s.was_late()).collect();
        let frac = late.len() as f64 / self.spans.len() as f64;
        let mean = if late.is_empty() {
            0.0
        } else {
            late.iter().map(|s| s.lateness().as_millis_f64()).sum::<f64>() / late.len() as f64
        };
        (frac, mean)
    }

    /// Per-request-type end-to-end statistics: `(type, completed,
    /// violation fraction, p50 ms, p99 ms)`, sorted by type id. The
    /// per-type view behind Table V's category rows.
    pub fn per_type_stats(&self) -> Vec<(RequestTypeId, usize, f64, f64, f64)> {
        let mut by_type: HashMap<RequestTypeId, Vec<&RequestRecord>> = HashMap::new();
        for r in &self.requests {
            by_type.entry(r.request_type).or_default().push(r);
        }
        let mut out: Vec<_> = by_type
            .into_iter()
            .map(|(ty, recs)| {
                let n = recs.len();
                let viol = recs.iter().filter(|r| r.violated()).count() as f64 / n as f64;
                let mut cdf = Cdf::new();
                for r in &recs {
                    cdf.record(r.latency().as_millis_f64());
                }
                let p50 = cdf.percentile(50.0).unwrap_or(0.0);
                let p99 = cdf.percentile(99.0).unwrap_or(0.0);
                (ty, n, viol, p50, p99)
            })
            .collect();
        out.sort_by_key(|(ty, ..)| *ty);
        out
    }

    /// Fraction of spans that ran resource-capped (contention indicator).
    pub fn capped_fraction(&self) -> f64 {
        if self.spans.is_empty() {
            return 0.0;
        }
        self.spans.iter().filter(|s| s.was_capped()).count() as f64 / self.spans.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::MachineId;
    use mlp_model::ServiceId;

    fn req(
        id: u64,
        class: VolatilityClass,
        arrival_ms: u64,
        end_ms: u64,
        slo: f64,
    ) -> RequestRecord {
        RequestRecord {
            id: RequestId(id),
            request_type: RequestTypeId(0),
            class,
            arrival: SimTime::from_millis(arrival_ms),
            end: SimTime::from_millis(end_ms),
            slo_ms: slo,
            breakdown: None,
        }
    }

    fn span(service: u32, start: u64, end: u64, planned: u64, sat: f64) -> Span {
        Span {
            request: RequestId(0),
            request_type: RequestTypeId(0),
            service: ServiceId(service),
            dag_node: 0,
            machine: MachineId(0),
            planned_start: SimTime::from_millis(planned),
            start: SimTime::from_millis(start),
            end: SimTime::from_millis(end),
            satisfaction: sat,
        }
    }

    #[test]
    fn violation_rate_by_class() {
        let mut c = TraceCollector::new();
        c.record_request(req(1, VolatilityClass::High, 0, 100, 50.0)); // violated
        c.record_request(req(2, VolatilityClass::High, 0, 30, 50.0)); // ok
        c.record_request(req(3, VolatilityClass::Low, 0, 10, 50.0)); // ok
        assert!((c.violation_rate(None) - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.violation_rate(Some(VolatilityClass::High)) - 0.5).abs() < 1e-12);
        assert_eq!(c.violation_rate(Some(VolatilityClass::Low)), 0.0);
        assert_eq!(c.violation_rate(Some(VolatilityClass::Mid)), 0.0);
    }

    #[test]
    fn latency_percentiles() {
        let mut c = TraceCollector::new();
        for i in 1..=100u64 {
            c.record_request(req(i, VolatilityClass::Mid, 0, i, 1e9));
        }
        assert_eq!(c.latency_percentile(50.0, None), Some(50.0));
        assert_eq!(c.latency_percentile(99.0, None), Some(99.0));
        assert_eq!(c.latency_percentile(99.0, Some(VolatilityClass::High)), None);
    }

    #[test]
    fn lateness_and_capping() {
        let mut c = TraceCollector::new();
        c.record_span(span(1, 10, 20, 10, 1.0)); // on time, uncapped
        c.record_span(span(1, 15, 30, 10, 0.5)); // 5ms late, capped
        c.record_span(span(2, 8, 20, 10, 1.0)); // early
        let (frac, mean) = c.lateness_stats();
        assert!((frac - 1.0 / 3.0).abs() < 1e-12);
        assert!((mean - 5.0).abs() < 1e-12);
        assert!((c.capped_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn service_summaries_group_by_template() {
        let mut c = TraceCollector::new();
        c.record_span(span(1, 0, 10, 0, 1.0));
        c.record_span(span(1, 0, 20, 0, 1.0));
        c.record_span(span(2, 0, 40, 0, 1.0));
        let sums = c.service_exec_summaries();
        assert_eq!(sums[&ServiceId(1)].count(), 2);
        assert_eq!(sums[&ServiceId(1)].mean(), 15.0);
        assert_eq!(sums[&ServiceId(2)].mean(), 40.0);
    }

    #[test]
    fn per_type_stats_partition_requests() {
        let mut c = TraceCollector::new();
        for i in 0..10u64 {
            let ty = RequestTypeId((i % 2) as u32);
            c.record_request(RequestRecord {
                id: RequestId(i),
                request_type: ty,
                class: VolatilityClass::Low,
                arrival: SimTime::ZERO,
                end: SimTime::from_millis(10 + i * 10),
                slo_ms: 55.0,
                breakdown: None,
            });
        }
        let stats = c.per_type_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, RequestTypeId(0));
        assert_eq!(stats[0].1 + stats[1].1, 10);
        // Latencies 10..100ms, slo 55: some of each type violate.
        assert!(stats.iter().all(|s| s.2 > 0.0 && s.2 < 1.0));
        assert!(stats.iter().all(|s| s.3 <= s.4));
    }

    #[test]
    fn empty_collector_is_calm() {
        let c = TraceCollector::new();
        assert_eq!(c.completed(), 0);
        assert_eq!(c.violation_rate(None), 0.0);
        assert_eq!(c.lateness_stats(), (0.0, 0.0));
        assert_eq!(c.capped_fraction(), 0.0);
        assert_eq!(c.latency_percentile(50.0, None), None);
    }
}
