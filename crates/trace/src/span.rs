//! Trace spans: one microservice execution within one request.

use mlp_cluster::MachineId;
use mlp_model::{RequestTypeId, ServiceId};
use mlp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifier of one request instance flowing through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

/// One completed microservice execution — what Zipkin would report for one
/// span: who ran, where, when it was *planned* to start, when it actually
/// started (the gap is the "late invocation" the self-healing module
/// reacts to), and when it finished.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// The request instance this span belongs to.
    pub request: RequestId,
    /// The request's type.
    pub request_type: RequestTypeId,
    /// The microservice template that executed.
    pub service: ServiceId,
    /// Node index within the request's DAG (a DAG may invoke the same
    /// template at multiple vertices).
    pub dag_node: usize,
    /// Machine the span ran on.
    pub machine: MachineId,
    /// When the scheduler planned the span to start.
    pub planned_start: SimTime,
    /// When it actually started.
    pub start: SimTime,
    /// When it finished.
    pub end: SimTime,
    /// Resource-satisfaction fraction it ran with (1.0 = uncontended).
    pub satisfaction: f64,
}

impl Span {
    /// Execution duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// How late the span started versus the plan (zero if on time or
    /// early).
    pub fn lateness(&self) -> SimDuration {
        self.start.since(self.planned_start)
    }

    /// Whether the span started later than planned.
    pub fn was_late(&self) -> bool {
        self.start > self.planned_start
    }

    /// Whether the span ran resource-capped.
    pub fn was_capped(&self) -> bool {
        self.satisfaction < 1.0 - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(planned_ms: u64, start_ms: u64, end_ms: u64, sat: f64) -> Span {
        Span {
            request: RequestId(1),
            request_type: RequestTypeId(0),
            service: ServiceId(3),
            dag_node: 2,
            machine: MachineId(7),
            planned_start: SimTime::from_millis(planned_ms),
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            satisfaction: sat,
        }
    }

    #[test]
    fn duration_and_lateness() {
        let s = span(10, 15, 40, 1.0);
        assert_eq!(s.duration(), SimDuration::from_millis(25));
        assert_eq!(s.lateness(), SimDuration::from_millis(5));
        assert!(s.was_late());
        assert!(!s.was_capped());
    }

    #[test]
    fn on_time_span() {
        let s = span(10, 10, 20, 0.5);
        assert_eq!(s.lateness(), SimDuration::ZERO);
        assert!(!s.was_late());
        assert!(s.was_capped());
    }

    #[test]
    fn early_start_has_zero_lateness() {
        // Delay-slot promotion can start spans *before* their plan.
        let s = span(20, 12, 30, 1.0);
        assert_eq!(s.lateness(), SimDuration::ZERO);
        assert!(!s.was_late());
    }
}
