//! Constant-memory online quantile estimation (the P² algorithm).
//!
//! [`Cdf`](crate::Cdf) stores every sample; [`LogHistogram`](crate::LogHistogram)
//! buckets them. For long-running monitors that need *one* specific
//! quantile (e.g. a per-service p99 the interface layer tracks live), the
//! P² algorithm of Jain & Chlamtac (1985) maintains a five-marker estimate
//! in O(1) memory and O(1) per observation.

use serde::{Deserialize, Serialize};

/// Streaming estimator of a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the quantile curve).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: usize,
    /// Non-finite samples skipped (NaN/±inf would poison the marker
    /// interpolation). Absent in estimators serialized before the field
    /// existed.
    #[serde(default)]
    skipped: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` (clamped into (0.001, 0.999)).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(0.001, 0.999);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            skipped: 0,
        }
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of non-finite observations that were skipped.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Adds one observation. Non-finite samples (NaN, ±inf) are skipped
    /// and counted: the parabolic marker adjustment assumes finite heights,
    /// and a single NaN would corrupt every later estimate — a latency
    /// monitor must survive a poisoned input instead.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.skipped += 1;
            return;
        }
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }

        // Find the cell k with heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        self.count += 1;

        // Adjust the three interior markers with parabolic interpolation.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate; `None` before any observation. With fewer than 5
    /// observations the exact nearest-rank quantile of what was seen is
    /// returned.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut seen = self.heights[..n].to_vec();
                seen.sort_by(f64::total_cmp);
                let idx = ((self.q * n as f64).ceil() as usize).clamp(1, n) - 1;
                Some(seen[idx])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_small_counts() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.record(10.0);
        assert_eq!(p.estimate(), Some(10.0));
        p.record(20.0);
        p.record(30.0);
        // Median of {10,20,30} = 20.
        assert_eq!(p.estimate(), Some(20.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Dist::Uniform { lo: 0.0, hi: 100.0 };
        for _ in 0..50_000 {
            p.record(d.sample(&mut rng));
        }
        let est = p.estimate().unwrap();
        assert!((est - 50.0).abs() < 2.0, "median estimate {est}");
    }

    #[test]
    fn p99_of_lognormal_stream() {
        let mut p = P2Quantile::new(0.99);
        let mut exact = crate::Cdf::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Dist::lognormal_mean_cv(50.0, 0.4);
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            p.record(x);
            exact.record(x);
        }
        let est = p.estimate().unwrap();
        let truth = exact.percentile(99.0).unwrap();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.05, "p99 estimate {est} vs exact {truth} ({rel:.3} rel err)");
    }

    #[test]
    fn monotone_input_is_tracked() {
        let mut p = P2Quantile::new(0.9);
        for i in 1..=1000 {
            p.record(i as f64);
        }
        let est = p.estimate().unwrap();
        assert!((850.0..=950.0).contains(&est), "p90 of 1..=1000 ≈ 900, got {est}");
    }

    #[test]
    fn non_finite_samples_are_skipped_not_fatal() {
        let mut p = P2Quantile::new(0.5);
        // Below 5 samples: a NaN must not land in the marker array.
        p.record(f64::NAN);
        assert_eq!(p.count(), 0);
        assert_eq!(p.estimate(), None);
        for x in [10.0, 20.0, 30.0, 40.0, 50.0] {
            p.record(x);
        }
        // At exactly 5 the marker sort runs; the earlier NaN must not
        // have reached it, and later non-finite samples are ignored too.
        p.record(f64::NAN);
        p.record(f64::INFINITY);
        p.record(f64::NEG_INFINITY);
        assert_eq!(p.count(), 5);
        assert_eq!(p.skipped(), 4);
        assert_eq!(p.estimate(), Some(30.0));
        // The estimator still works on further finite input.
        for x in [25.0, 35.0, 28.0, 32.0] {
            p.record(x);
        }
        let est = p.estimate().unwrap();
        assert!(est.is_finite() && (10.0..=50.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn extreme_quantiles_clamped() {
        let p = P2Quantile::new(0.0);
        assert!(p.q() > 0.0);
        let p = P2Quantile::new(1.0);
        assert!(p.q() < 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The estimate always lies within the observed range.
        #[test]
        fn estimate_within_range(xs in prop::collection::vec(-1e6f64..1e6, 5..400),
                                 q in 0.05f64..0.95) {
            let mut p = P2Quantile::new(q);
            for &x in &xs { p.record(x); }
            let est = p.estimate().unwrap();
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9,
                "estimate {est} outside [{lo}, {hi}]");
        }
    }
}
