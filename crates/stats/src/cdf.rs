//! Exact empirical CDFs and quantiles over collected samples.

use serde::{Deserialize, Serialize};

/// An exact empirical cumulative distribution function.
///
/// Stores all samples (sorted lazily on first query). Used for the paper's
/// CDF figures (Fig 2, Fig 3c) and for the self-organizing module's Δt
/// estimation, which needs "the 50% latency of x% executions" and "the 99%
/// tail of x% executions" (Algorithm 1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf { samples: Vec::new(), sorted: true }
    }

    /// Builds a CDF from existing samples.
    pub fn from_samples(samples: impl Into<Vec<f64>>) -> Self {
        let mut c = Cdf { samples: samples.into(), sorted: false };
        c.ensure_sorted();
        c
    }

    /// Adds a sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // `total_cmp`, not `partial_cmp().unwrap()`: a NaN-bearing
            // sample set must degrade (NaNs sort to the top, inflating the
            // extreme quantiles) instead of panicking mid-soak.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0,1]`) by nearest-rank; `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[idx.min(self.samples.len() - 1)])
    }

    /// Percentile helper: `percentile(99.0)` = p99. `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        self.quantile(p / 100.0)
    }

    /// Fraction of samples `<= x` (the CDF evaluated at `x`).
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// A new CDF containing only the fastest `x`% of executions.
    ///
    /// This implements the "`x`% executions" truncation in Algorithm 1: for a
    /// mid-volatility request Δt = 50%-latency of the fastest `x`% runs; for
    /// high volatility Δt = 99%-tail of the fastest `x`% runs, with
    /// `x ∝ SLA · V_r`.
    pub fn truncate_fastest(&mut self, x_percent: f64) -> Cdf {
        self.ensure_sorted();
        let x = x_percent.clamp(1.0, 100.0);
        let keep = (((x / 100.0) * self.samples.len() as f64).ceil() as usize)
            .clamp(1.min(self.samples.len()), self.samples.len());
        Cdf { samples: self.samples[..keep].to_vec(), sorted: true }
    }

    /// Evenly spaced `(value, cumulative_fraction)` points for plotting.
    pub fn points(&mut self, n_points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || n_points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=n_points)
            .map(|i| {
                let frac = i as f64 / n_points as f64;
                let idx = ((frac * n as f64).ceil() as usize).max(1) - 1;
                (self.samples[idx.min(n - 1)], frac)
            })
            .collect()
    }

    /// Sorted view of the raw samples.
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }

    /// Arithmetic mean of all samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_below(10.0), 0.0);
        assert!(c.points(5).is_empty());
    }

    #[test]
    fn quantiles_of_known_data() {
        let mut c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(c.quantile(0.5), Some(5.0));
        assert_eq!(c.quantile(1.0), Some(10.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.percentile(90.0), Some(9.0));
    }

    #[test]
    fn fraction_below_matches_definition() {
        let mut c = Cdf::from_samples(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.fraction_below(0.5), 0.0);
        assert_eq!(c.fraction_below(2.0), 0.75);
        assert_eq!(c.fraction_below(3.0), 1.0);
    }

    #[test]
    fn unsorted_input_is_sorted_on_query() {
        let mut c = Cdf::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            c.record(x);
        }
        assert_eq!(c.quantile(0.2), Some(1.0));
        assert_eq!(c.sorted_samples(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn truncate_fastest_keeps_prefix() {
        let mut c = Cdf::from_samples((1..=100).map(|i| i as f64).collect::<Vec<_>>());
        let mut t = c.truncate_fastest(50.0);
        assert_eq!(t.len(), 50);
        assert_eq!(t.quantile(1.0), Some(50.0));
        // Truncating to even 1% keeps at least one sample.
        let t1 = c.truncate_fastest(0.0);
        assert_eq!(t1.len(), 1);
    }

    /// Regression: a NaN sample used to panic the lazy sort
    /// (`partial_cmp().expect(..)`) on the next query, killing a soak run
    /// mid-flight. With `total_cmp` the NaN sorts above every finite value:
    /// low/mid quantiles stay exact, only the extreme tail degrades.
    #[test]
    fn nan_samples_degrade_instead_of_panicking() {
        let mut c = Cdf::from_samples(vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(c.quantile(0.25), Some(1.0));
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert!(c.quantile(1.0).unwrap().is_nan(), "NaN lands in the top rank");
        assert_eq!(c.fraction_below(3.0), 0.75);
        // Truncating away the slow tail also drops the NaN.
        let mut fast = c.truncate_fastest(75.0);
        assert_eq!(fast.quantile(1.0), Some(3.0));
    }

    #[test]
    fn points_are_monotone() {
        let mut c = Cdf::from_samples((0..57).map(|i| (i * 7 % 57) as f64).collect::<Vec<_>>());
        let pts = c.points(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantile_is_monotone(xs in prop::collection::vec(0.0f64..1e9, 1..200),
                                 q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            let mut c = Cdf::from_samples(xs);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(c.quantile(lo).unwrap() <= c.quantile(hi).unwrap());
        }

        #[test]
        fn quantile_is_a_sample(xs in prop::collection::vec(0.0f64..1e9, 1..200),
                                 q in 0.0f64..=1.0) {
            let mut c = Cdf::from_samples(xs.clone());
            let v = c.quantile(q).unwrap();
            prop_assert!(xs.contains(&v));
        }

        #[test]
        fn fraction_below_max_is_one(xs in prop::collection::vec(0.0f64..1e9, 1..100)) {
            let mut c = Cdf::from_samples(xs);
            let max = c.sorted_samples().last().copied().unwrap();
            prop_assert_eq!(c.fraction_below(max), 1.0);
        }
    }
}
