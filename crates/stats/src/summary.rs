//! Streaming mean/variance summaries (Welford's algorithm) with merging.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming summary of a sequence of `f64` observations.
///
/// Tracks count, mean, variance (via Welford's M2), min and max. Summaries
/// can be [merged](Summary::merge) (Chan et al. parallel variance), which
/// lets per-thread experiment workers aggregate without locks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.record(x);
        }
        s
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0.0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/µ); 0.0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative spread `(max − min) / min`, the paper's Section II-A
    /// "largest variation in execution time" used to classify inner-logic
    /// variability (`I`). Returns 0.0 when empty or `min == 0`.
    pub fn relative_spread(&self) -> f64 {
        if self.count == 0 || self.min <= 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.min
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.record(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = Summary::from_slice(&xs);
        let (m, v) = naive_mean_var(&xs);
        assert!((s.mean() - m).abs() < 1e-12);
        assert!((s.variance() - v).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let ys = [9.0, 2.0, 6.0, 5.0];
        let mut a = Summary::from_slice(&xs);
        let b = Summary::from_slice(&ys);
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let whole = Summary::from_slice(&all);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn relative_spread_classifies_variability() {
        // 100 → 110 is a 10% spread: "low variation" (< 15%) per Section II-A.
        let s = Summary::from_slice(&[100.0, 105.0, 110.0]);
        assert!((s.relative_spread() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn cv_zero_mean() {
        let s = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(s.cv(), 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn merge_is_order_insensitive(xs in prop::collection::vec(-1e6f64..1e6, 1..50),
                                      ys in prop::collection::vec(-1e6f64..1e6, 1..50)) {
            let a = Summary::from_slice(&xs);
            let b = Summary::from_slice(&ys);
            let mut ab = a; ab.merge(&b);
            let mut ba = b; ba.merge(&a);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-3);
        }

        #[test]
        fn mean_within_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::from_slice(&xs);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }
    }
}
