//! Log-bucketed latency histogram (HDR-style, constant memory).

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two bucket. 16 gives ~6%
/// relative error, which is plenty for figure-level percentile reporting
/// while keeping the histogram 2–3 KiB.
const SUB_BUCKETS: usize = 16;
/// Number of power-of-two major buckets (covers values up to 2^40 ≈ 10^12).
const MAJOR_BUCKETS: usize = 40;

/// Constant-memory histogram of non-negative integer values (e.g.
/// microsecond latencies) with logarithmic bucketing.
///
/// Unlike [`crate::Cdf`] this never stores raw samples, so it is used for the
/// high-volume metrics the tracing substrate keeps per microservice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; MAJOR_BUCKETS * SUB_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_index(value: u64) -> usize {
        // Values below SUB_BUCKETS map 1:1 into the first major bucket.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize; // position of top bit
        let major = msb - (SUB_BUCKETS.trailing_zeros() as usize) + 1;
        let shift = msb - SUB_BUCKETS.trailing_zeros() as usize;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        (major * SUB_BUCKETS + sub).min(MAJOR_BUCKETS * SUB_BUCKETS - 1)
    }

    /// Representative (upper-edge) value for a bucket index.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let major = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        let shift = major - 1;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values (sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate `q`-quantile (`q ∈ [0,1]`); `None` when empty. The
    /// returned value is the upper edge of the bucket containing the
    /// quantile rank, so it over-estimates by at most one bucket width
    /// (~6% relative).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_value(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Percentile helper: `percentile(99.0)` = p99.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.quantile(p / 100.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn quantile_error_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000f64), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q).unwrap() as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.07, "q={q}: got {got}, expect {expect}, rel {rel}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
            c.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.mean(), c.mean());
        assert_eq!(a.quantile(0.99), c.quantile(0.99));
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).is_some());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantiles_monotone(vals in prop::collection::vec(0u64..1_000_000, 1..300)) {
            let mut h = LogHistogram::new();
            for &v in &vals { h.record(v); }
            let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = 0u64;
            for &q in &qs {
                let v = h.quantile(q).unwrap();
                prop_assert!(v >= prev, "quantile not monotone at q={}", q);
                prev = v;
            }
        }

        #[test]
        fn quantile_within_recorded_range(vals in prop::collection::vec(0u64..1_000_000, 1..300),
                                          q in 0.0f64..=1.0) {
            let mut h = LogHistogram::new();
            for &v in &vals { h.record(v); }
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= h.min() && v <= h.max());
        }

        #[test]
        fn bucket_roundtrip_error_bounded(v in 16u64..1_000_000_000) {
            let idx = LogHistogram::bucket_index(v);
            let rep = LogHistogram::bucket_value(idx);
            // Representative value within ~1/SUB_BUCKETS of the original.
            let rel = (rep as f64 - v as f64).abs() / v as f64;
            prop_assert!(rel <= 1.0 / 16.0 + 1e-9, "v={} rep={} rel={}", v, rep, rel);
        }
    }
}
