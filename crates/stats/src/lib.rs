//! # mlp-stats — statistics substrate for the v-MLP reproduction
//!
//! Streaming summaries, histograms, empirical CDFs, random-variate
//! distributions, and fixed-step time series. Every evaluation figure in the
//! paper (CDFs in Figs 2/3c, percentile plots in Figs 12/13, utilization
//! curves in Figs 3b/11) is computed through this crate.
//!
//! Distributions are implemented directly on top of [`rand`]'s uniform
//! source (inverse transform / Box–Muller) so no extra dependency is needed.

pub mod cdf;
pub mod dist;
pub mod histogram;
pub mod quantile;
pub mod ranked;
pub mod summary;
pub mod timeseries;

pub use cdf::Cdf;
pub use dist::{Dist, Distribution};
pub use histogram::LogHistogram;
pub use quantile::P2Quantile;
pub use ranked::RankedSamples;
pub use summary::Summary;
pub use timeseries::TimeSeries;
