//! Fixed-step time series for utilization curves and workload patterns.

use serde::{Deserialize, Serialize};

/// A time series sampled at a fixed step, used for cluster-utilization
/// curves (Fig 11), the Alibaba-style container trace (Fig 3b), and the
/// workload rate patterns L1/L2/L3 (Fig 9).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Sampling step in the caller's time unit (e.g. seconds).
    step: f64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given sampling step (> 0).
    pub fn new(step: f64) -> Self {
        assert!(step > 0.0, "time series step must be positive");
        TimeSeries { step, values: Vec::new() }
    }

    /// Builds a series by sampling `f(t)` at `n` steps: t = 0, step, 2·step…
    pub fn from_fn(step: f64, n: usize, mut f: impl FnMut(f64) -> f64) -> Self {
        let mut ts = TimeSeries::new(step);
        ts.values.reserve_exact(n);
        for i in 0..n {
            ts.values.push(f(i as f64 * step));
        }
        ts
    }

    /// Builds a series from existing values.
    pub fn from_values(step: f64, values: Vec<f64>) -> Self {
        assert!(step > 0.0, "time series step must be positive");
        TimeSeries { step, values }
    }

    /// Appends a sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Sampling step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at continuous time `t` with linear interpolation, clamped to
    /// the series ends. Returns 0.0 for an empty series.
    pub fn at(&self, t: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let pos = (t / self.step).max(0.0);
        let i = pos.floor() as usize;
        if i + 1 >= self.values.len() {
            return *self.values.last().unwrap();
        }
        let frac = pos - i as f64;
        self.values[i] * (1.0 - frac) + self.values[i + 1] * frac
    }

    /// Total duration covered (len·step).
    pub fn duration(&self) -> f64 {
        self.values.len() as f64 * self.step
    }

    /// Maximum sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean of samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Centered moving average over a window of `w` samples (`w ≥ 1`).
    pub fn smoothed(&self, w: usize) -> TimeSeries {
        let w = w.max(1);
        let half = w / 2;
        let n = self.values.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let sum: f64 = self.values[lo..hi].iter().sum();
            out.push(sum / (hi - lo) as f64);
        }
        TimeSeries { step: self.step, values: out }
    }

    /// Rescales all values so that the maximum equals `target_max`
    /// (no-op on an all-zero or empty series).
    pub fn normalized_to(&self, target_max: f64) -> TimeSeries {
        let m = self.max();
        if m == 0.0 {
            return self.clone();
        }
        let k = target_max / m;
        TimeSeries { step: self.step, values: self.values.iter().map(|v| v * k).collect() }
    }

    /// Indices of local maxima above `threshold` (peak detection for the
    /// workload-surge analysis of Fig 3b).
    pub fn peaks_above(&self, threshold: f64) -> Vec<usize> {
        let v = &self.values;
        let mut out = Vec::new();
        for i in 0..v.len() {
            if v[i] < threshold {
                continue;
            }
            let left_ok = i == 0 || v[i - 1] <= v[i];
            let right_ok = i + 1 == v.len() || v[i + 1] < v[i];
            if left_ok && right_ok {
                out.push(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_samples_grid() {
        let ts = TimeSeries::from_fn(0.5, 4, |t| t * 2.0);
        assert_eq!(ts.values(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ts.duration(), 2.0);
    }

    #[test]
    fn interpolation_and_clamping() {
        let ts = TimeSeries::from_values(1.0, vec![0.0, 10.0, 20.0]);
        assert_eq!(ts.at(0.5), 5.0);
        assert_eq!(ts.at(-3.0), 0.0);
        assert_eq!(ts.at(99.0), 20.0);
        assert_eq!(ts.at(1.0), 10.0);
    }

    #[test]
    fn empty_series_at_is_zero() {
        let ts = TimeSeries::new(1.0);
        assert_eq!(ts.at(1.0), 0.0);
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.max(), 0.0);
    }

    #[test]
    fn smoothing_preserves_constant() {
        let ts = TimeSeries::from_values(1.0, vec![5.0; 10]);
        assert_eq!(ts.smoothed(3).values(), &[5.0; 10]);
    }

    #[test]
    fn smoothing_reduces_variance() {
        let ts = TimeSeries::from_values(
            1.0,
            (0..100).map(|i| if i % 2 == 0 { 0.0 } else { 10.0 }).collect(),
        );
        let sm = ts.smoothed(5);
        let raw_spread = ts.max() - ts.values().iter().copied().fold(f64::INFINITY, f64::min);
        let sm_spread = sm.max() - sm.values().iter().copied().fold(f64::INFINITY, f64::min);
        assert!(sm_spread < raw_spread);
    }

    #[test]
    fn normalization_hits_target() {
        let ts = TimeSeries::from_values(1.0, vec![1.0, 2.0, 4.0]);
        let n = ts.normalized_to(1000.0);
        assert_eq!(n.max(), 1000.0);
        assert_eq!(n.values()[0], 250.0);
    }

    #[test]
    fn peaks_detected() {
        let ts = TimeSeries::from_values(1.0, vec![0.0, 5.0, 1.0, 7.0, 7.0, 2.0, 9.0]);
        let peaks = ts.peaks_above(4.0);
        assert!(peaks.contains(&1));
        assert!(peaks.contains(&6));
        assert!(!peaks.contains(&2));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_rejected() {
        TimeSeries::new(0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn interpolation_within_bounds(vals in prop::collection::vec(0.0f64..100.0, 2..50),
                                       t in 0.0f64..100.0) {
            let ts = TimeSeries::from_values(1.0, vals.clone());
            let v = ts.at(t);
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn smoothed_mean_preserved_for_interior(vals in prop::collection::vec(1.0f64..10.0, 10..60)) {
            let ts = TimeSeries::from_values(1.0, vals);
            let sm = ts.smoothed(3);
            // Means stay close (edges differ slightly).
            prop_assert!((ts.mean() - sm.mean()).abs() < 1.5);
        }
    }
}
