//! Random-variate distributions built directly on `rand`'s uniform source.
//!
//! The microservice model needs log-normal-ish service times (right-skewed,
//! heavy-ish tail), exponential arrival gaps, and Pareto-like congestion
//! spikes. Rather than pulling in `rand_distr`, the handful of samplers we
//! need are implemented here with inverse-transform and Box–Muller methods.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Object-safe sampling interface for positive-valued random variates.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
    /// Theoretical mean of the distribution.
    fn mean(&self) -> f64;
}

/// Enum of the concrete distributions used throughout the simulator.
///
/// An enum (rather than trait objects) keeps model descriptions
/// `Copy + Serialize` so benchmark DAGs can be stored as JSON traces, per the
/// paper's trace-driven workflow (Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Degenerate point mass at `value`.
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with rate `lambda` (mean `1/lambda`).
    Exponential { lambda: f64 },
    /// Log-normal with the *underlying normal's* parameters `mu`, `sigma`.
    LogNormal { mu: f64, sigma: f64 },
    /// Normal via Box–Muller, truncated at `min` from below.
    Normal { mean: f64, std_dev: f64, min: f64 },
    /// Pareto with scale `xm > 0` and shape `alpha > 1`.
    Pareto { xm: f64, alpha: f64 },
    /// Mixture of a log-normal body (probability `1-p_tail`) and a Pareto
    /// spike tail (probability `p_tail`). Models the paper's Fig 4 "green
    /// blocks": occasional congestion spikes on top of a stable
    /// communication baseline. The body is parameterized by its target mean
    /// and coefficient of variation (see [`Dist::lognormal_mean_cv`]).
    Spiked { body_mean: f64, body_cv: f64, tail_xm: f64, tail_alpha: f64, p_tail: f64 },
}

impl Dist {
    /// Log-normal parameterized by its *target* mean `m` and coefficient of
    /// variation `cv` (σ/µ of the log-normal itself). This is the natural
    /// parameterization for calibrating services to the paper's variability
    /// classes.
    pub fn lognormal_mean_cv(m: f64, cv: f64) -> Dist {
        assert!(m > 0.0, "lognormal mean must be positive");
        assert!(cv >= 0.0, "cv must be non-negative");
        if cv == 0.0 {
            return Dist::Constant { value: m };
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = m.ln() - sigma2 / 2.0;
        Dist::LogNormal { mu, sigma: sigma2.sqrt() }
    }

    /// Draws one sample using `rng`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            Dist::Exponential { lambda } => {
                // Inverse transform: -ln(1-U)/λ, guarding U=1.
                let u: f64 = rng.gen_range(0.0..1.0);
                -(1.0 - u).ln() / lambda
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Normal { mean, std_dev, min } => (mean + std_dev * standard_normal(rng)).max(min),
            Dist::Pareto { xm, alpha } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                xm / (1.0 - u).powf(1.0 / alpha)
            }
            Dist::Spiked { body_mean, body_cv, tail_xm, tail_alpha, p_tail } => {
                if p_tail > 0.0 && rng.gen_bool(p_tail.clamp(0.0, 1.0)) {
                    Dist::Pareto { xm: tail_xm, alpha: tail_alpha }.sample(rng)
                } else if body_mean <= 0.0 {
                    0.0
                } else {
                    Dist::lognormal_mean_cv(body_mean, body_cv).sample(rng)
                }
            }
        }
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { lambda } => 1.0 / lambda,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Normal { mean, .. } => mean,
            Dist::Pareto { xm, alpha } => {
                if alpha <= 1.0 {
                    f64::INFINITY
                } else {
                    alpha * xm / (alpha - 1.0)
                }
            }
            Dist::Spiked { body_mean, tail_xm, tail_alpha, p_tail, .. } => {
                (1.0 - p_tail) * body_mean
                    + p_tail * Dist::Pareto { xm: tail_xm, alpha: tail_alpha }.mean()
            }
        }
    }
}

/// One standard-normal variate via Box–Muller (the cosine branch).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_summary(d: Dist, n: usize) -> Summary {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut s = Summary::new();
        for _ in 0..n {
            s.record(d.sample(&mut rng));
        }
        s
    }

    #[test]
    fn constant_is_constant() {
        let s = sample_summary(Dist::Constant { value: 7.5 }, 100);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn uniform_moments() {
        let d = Dist::Uniform { lo: 2.0, hi: 6.0 };
        let s = sample_summary(d, 50_000);
        assert!((s.mean() - 4.0).abs() < 0.05, "mean {}", s.mean());
        assert!(s.min() >= 2.0 && s.max() < 6.0);
    }

    #[test]
    fn exponential_mean() {
        let d = Dist::Exponential { lambda: 0.5 };
        let s = sample_summary(d, 100_000);
        assert!((s.mean() - 2.0).abs() < 0.05, "mean {}", s.mean());
        assert!(s.min() >= 0.0);
    }

    #[test]
    fn lognormal_mean_cv_calibration() {
        let d = Dist::lognormal_mean_cv(10.0, 0.3);
        assert!((d.mean() - 10.0).abs() < 1e-9);
        let s = sample_summary(d, 200_000);
        assert!((s.mean() - 10.0).abs() < 0.15, "mean {}", s.mean());
        assert!((s.cv() - 0.3).abs() < 0.05, "cv {}", s.cv());
    }

    #[test]
    fn lognormal_zero_cv_degenerates() {
        assert_eq!(Dist::lognormal_mean_cv(5.0, 0.0), Dist::Constant { value: 5.0 });
    }

    #[test]
    fn normal_truncation_respected() {
        let d = Dist::Normal { mean: 1.0, std_dev: 5.0, min: 0.25 };
        let s = sample_summary(d, 20_000);
        assert!(s.min() >= 0.25);
    }

    #[test]
    fn pareto_heavy_tail() {
        let d = Dist::Pareto { xm: 1.0, alpha: 2.5 };
        let s = sample_summary(d, 100_000);
        assert!(s.min() >= 1.0);
        // mean = α·xm/(α-1) = 2.5/1.5 ≈ 1.667
        assert!((s.mean() - d.mean()).abs() < 0.08, "mean {}", s.mean());
    }

    #[test]
    fn spiked_mixture_hits_both_modes() {
        let d = Dist::Spiked {
            body_mean: 1.0,
            body_cv: 0.1,
            tail_xm: 50.0,
            tail_alpha: 3.0,
            p_tail: 0.1,
        };
        let s = sample_summary(d, 50_000);
        // Body stays near 1; spikes start at 50.
        assert!(s.max() >= 50.0);
        assert!(s.min() < 2.0);
        assert!((s.mean() - d.mean()).abs() < 0.5);
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let d = Dist::lognormal_mean_cv(3.0, 0.5);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn lognormal_samples_positive(m in 0.1f64..1e4, cv in 0.0f64..2.0, seed: u64) {
            let d = Dist::lognormal_mean_cv(m, cv);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(d.sample(&mut rng) > 0.0);
            }
        }

        #[test]
        fn exponential_samples_nonnegative(lambda in 1e-3f64..1e3, seed: u64) {
            let d = Dist::Exponential { lambda };
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(d.sample(&mut rng) >= 0.0);
            }
        }

        #[test]
        fn uniform_stays_in_range(lo in -100f64..100.0, width in 0.0f64..100.0, seed: u64) {
            let d = Dist::Uniform { lo, hi: lo + width };
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x >= lo && x <= lo + width);
            }
        }
    }
}
