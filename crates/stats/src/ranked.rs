//! An incrementally maintained order-statistic multiset over `f64` samples.
//!
//! [`Cdf`](crate::Cdf) answers quantile queries by sorting a full copy of
//! the sample set on every call — fine for one-shot summaries, quadratic
//! when a caller re-queries after every insertion (the profile store's
//! banded-Δt path does exactly that). `RankedSamples` keeps the samples
//! *always sorted* under [`f64::total_cmp`] so that
//!
//! * `insert` / `remove_one` cost `O(√n)` amortized, and
//! * `select(k)` (the k-th smallest) costs `O(#buckets)` ≈ `O(√n)`,
//!
//! while remaining **bit-identical** to the sort-then-index answer: the
//! comparator is the same total order, and equal-comparing `f64`s have
//! identical bit patterns under `total_cmp` (it is a total order on the
//! bit representation), so *which* duplicate a query lands on cannot
//! change the returned bits.
//!
//! The structure is a classic two-level "bucketed sorted list": a `Vec`
//! of sorted buckets, each holding at most `2 * B` samples; a bucket that
//! overflows splits in half, and an emptied bucket is dropped. Locating a
//! bucket binary-searches the per-bucket maxima; locating a position
//! within a bucket binary-searches the bucket.

/// Target bucket width. Buckets split at `2 * B`; with `B = 512` a
/// million samples sit in ~2k buckets of ~700 elements, so both the
/// bucket scan and the in-bucket memmove stay comfortably in cache.
const B: usize = 512;

/// A multiset of `f64` samples ordered by [`f64::total_cmp`], supporting
/// insertion, removal of one occurrence, and k-th order statistics.
#[derive(Debug, Clone, Default)]
pub struct RankedSamples {
    /// Sorted buckets; globally ordered (every element of bucket `i` is
    /// `<=` every element of bucket `i + 1` under `total_cmp`).
    buckets: Vec<Vec<f64>>,
    len: usize,
}

impl RankedSamples {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index from an unsorted slice in `O(n log n)`.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let len = sorted.len();
        let mut buckets = Vec::with_capacity(len / B + 1);
        let mut it = sorted.into_iter();
        loop {
            let chunk: Vec<f64> = it.by_ref().take(B).collect();
            if chunk.is_empty() {
                break;
            }
            buckets.push(chunk);
        }
        RankedSamples { buckets, len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the bucket that should receive `x`: the first bucket whose
    /// maximum is `>=` x, or the last bucket if every maximum is smaller.
    fn bucket_for(&self, x: f64) -> usize {
        let by_max =
            self.buckets.partition_point(|b| b.last().is_none_or(|&m| m.total_cmp(&x).is_lt()));
        by_max.min(self.buckets.len().saturating_sub(1))
    }

    /// Inserts one occurrence of `x` (NaNs included — `total_cmp` orders
    /// them after infinities, matching `Cdf`'s sort).
    pub fn insert(&mut self, x: f64) {
        if self.buckets.is_empty() {
            self.buckets.push(vec![x]);
            self.len = 1;
            return;
        }
        let bi = self.bucket_for(x);
        let bucket = &mut self.buckets[bi];
        let pos = bucket.partition_point(|&v| v.total_cmp(&x).is_lt());
        bucket.insert(pos, x);
        self.len += 1;
        if bucket.len() >= 2 * B {
            let hi = bucket.split_off(bucket.len() / 2);
            self.buckets.insert(bi + 1, hi);
        }
    }

    /// Removes one occurrence of `x` (matched bitwise via `total_cmp`
    /// equality). Returns `false` if no such sample exists.
    pub fn remove_one(&mut self, x: f64) -> bool {
        if self.buckets.is_empty() {
            return false;
        }
        let bi = self.bucket_for(x);
        let bucket = &mut self.buckets[bi];
        let pos = bucket.partition_point(|&v| v.total_cmp(&x).is_lt());
        if pos >= bucket.len() || bucket[pos].total_cmp(&x).is_ne() {
            return false;
        }
        bucket.remove(pos);
        self.len -= 1;
        if bucket.is_empty() {
            self.buckets.remove(bi);
        }
        true
    }

    /// The `k`-th smallest sample (0-based) under `total_cmp`, or `None`
    /// if `k >= len`. Bit-identical to `sorted[k]` of the full sort.
    pub fn select(&self, k: usize) -> Option<f64> {
        if k >= self.len {
            return None;
        }
        let mut k = k;
        for bucket in &self.buckets {
            if k < bucket.len() {
                return Some(bucket[k]);
            }
            k -= bucket.len();
        }
        None
    }

    /// The smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.buckets.first().and_then(|b| b.first()).copied()
    }

    /// Iterates the samples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buckets.iter().flat_map(|b| b.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cdf;

    /// The reference answer: full sort by `total_cmp`, index `k`.
    fn reference_select(samples: &[f64], k: usize) -> Option<f64> {
        let mut s = samples.to_vec();
        s.sort_by(f64::total_cmp);
        s.get(k).copied()
    }

    #[test]
    fn empty_behaves() {
        let mut r = RankedSamples::new();
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert_eq!(r.select(0), None);
        assert_eq!(r.min(), None);
        assert!(!r.remove_one(1.0));
    }

    #[test]
    fn insert_select_matches_sort() {
        let samples = [5.0, 1.0, 3.0, 3.0, -2.0, 0.0, 3.0, 100.0, -0.0, 0.0];
        let mut r = RankedSamples::new();
        for &s in &samples {
            r.insert(s);
        }
        for k in 0..samples.len() {
            let got = r.select(k).unwrap();
            let want = reference_select(&samples, k).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "k={k}");
        }
        assert_eq!(r.min().unwrap().to_bits(), (-2.0f64).to_bits());
    }

    #[test]
    fn negative_zero_orders_before_positive_zero() {
        // total_cmp puts -0.0 before +0.0; the index must preserve that
        // so duplicates resolve to the same bits as the full sort.
        let samples = [0.0, -0.0, 0.0, -0.0];
        let r = RankedSamples::from_samples(&samples);
        assert_eq!(r.select(0).unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.select(1).unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.select(2).unwrap().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn nan_sorts_last_like_cdf() {
        let samples = [f64::NAN, 1.0, f64::INFINITY, -1.0];
        let mut r = RankedSamples::new();
        for &s in &samples {
            r.insert(s);
        }
        assert_eq!(r.select(0), Some(-1.0));
        assert_eq!(r.select(2), Some(f64::INFINITY));
        assert!(r.select(3).unwrap().is_nan());
        assert!(r.remove_one(f64::NAN));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn remove_one_removes_exactly_one_duplicate() {
        let mut r = RankedSamples::from_samples(&[2.0, 2.0, 2.0, 1.0]);
        assert!(r.remove_one(2.0));
        assert_eq!(r.len(), 3);
        assert_eq!(r.select(1), Some(2.0));
        assert_eq!(r.select(2), Some(2.0));
        assert!(!r.remove_one(7.0));
    }

    #[test]
    fn bucket_splits_keep_global_order() {
        // Enough ascending + descending interleaved inserts to force
        // several splits.
        let mut r = RankedSamples::new();
        let mut all = Vec::new();
        for i in 0..(6 * B) {
            let x = if i % 2 == 0 { i as f64 } else { -(i as f64) };
            r.insert(x);
            all.push(x);
        }
        assert_eq!(r.len(), all.len());
        all.sort_by(f64::total_cmp);
        let collected: Vec<f64> = r.iter().collect();
        assert_eq!(collected, all);
        for bucket in &r.buckets {
            assert!(bucket.len() < 2 * B);
            assert!(!bucket.is_empty());
        }
    }

    #[test]
    fn matches_cdf_quantile_formula() {
        // End-to-end check against the Cdf the profile store uses: the
        // banded Δt answer is sorted[idx] with idx from Cdf::quantile over
        // the truncated prefix — reproduce it via select() and compare
        // bits on an awkward sample set (duplicates, negatives, zeros).
        let samples: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64 / 7.0 - 5.0).collect();
        let r = RankedSamples::from_samples(&samples);
        for &(x_percent, q) in &[(100.0, 0.5), (95.0, 0.99), (37.5, 0.9), (1.0, 0.5), (0.0, 0.99)] {
            let mut cdf = Cdf::from_samples(samples.clone());
            let mut truncated = cdf.truncate_fastest(x_percent);
            let want = truncated.quantile(q).unwrap();
            // Same arithmetic as the Cdf path.
            let n = samples.len();
            let keep = (((x_percent / 100.0) * n as f64).ceil() as usize).clamp(1.min(n), n);
            let idx = (((q * keep as f64).ceil() as usize).max(1) - 1).min(keep - 1);
            let got = r.select(idx).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "x={x_percent} q={q}");
        }
    }

    #[test]
    fn randomized_against_reference() {
        // Deterministic xorshift program of interleaved inserts/removes;
        // after every op a few selects must match the full-sort reference.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut r = RankedSamples::new();
        let mut shadow: Vec<f64> = Vec::new();
        for step in 0..4000 {
            let roll = next();
            if roll % 4 == 0 && !shadow.is_empty() {
                let i = (roll as usize / 4) % shadow.len();
                let x = shadow.swap_remove(i);
                assert!(r.remove_one(x), "step {step}: remove {x}");
            } else {
                // Small value domain to force many exact duplicates.
                let x = ((roll % 64) as f64) / 8.0 - 2.0;
                r.insert(x);
                shadow.push(x);
            }
            assert_eq!(r.len(), shadow.len());
            if step % 97 == 0 {
                for k in [0, shadow.len() / 3, shadow.len().saturating_sub(1)] {
                    let got = r.select(k).map(f64::to_bits);
                    let want = reference_select(&shadow, k).map(f64::to_bits);
                    assert_eq!(got, want, "step {step} k={k}");
                }
            }
        }
    }
}
