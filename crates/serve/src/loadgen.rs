//! Open-loop load generation against a live server.
//!
//! Replays the paper's workload patterns (L1–L3, plus `const` and the
//! rate-schedule overlays such as [`RateSchedule::diurnal_sine`]) as real
//! wall-clock traffic: a Lewis–Shedler thinning sampler turns the rate
//! curve into arrival instants, each connection thread sleeps to its next
//! instant, fires a `RUN` line, and parks for the reply. The target rate
//! is split evenly across connections — superposing `N` Poisson processes
//! at `rate/N` is again Poisson at `rate` — so per-connection blocking on
//! the reply only distorts the process when a single connection's share
//! exceeds what one in-flight request can carry; sizing `connections`
//! generously keeps the offered process honest.
//!
//! All randomness flows from one [`SimRng`] seed (thread `i` forks stream
//! `i`), so two runs at the same seed offer the same request sequence at
//! the same ideal instants — as close to replayable as wall-clock traffic
//! gets.

use crate::client::Client;
use crate::protocol::Response;
use mlp_model::{RequestCatalog, RequestTypeId};
use mlp_sim::SimRng;
use mlp_workload::RateSchedule;
use rand::Rng;
use std::time::{Duration, Instant};

/// What to offer, where, and for how long.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// Rate curve in requests/second (pattern × segments × sinusoid).
    pub schedule: RateSchedule,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Connection threads; each offers `rate/connections`.
    pub connections: usize,
    /// Root seed for arrival times and the request mix.
    pub seed: u64,
    /// Per-request reply deadline before the generator counts an error.
    pub timeout: Duration,
}

/// Aggregate counters plus the full latency sample of one run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests actually sent (accepted arrival instants inside the run).
    pub sent: u64,
    pub completed: u64,
    pub shed: u64,
    pub busy: u64,
    pub draining: u64,
    pub timeouts: u64,
    pub dropped: u64,
    /// Transport/protocol failures (connect refused, EOF, ERR replies).
    pub errors: u64,
    /// Wall-clock time from first to last action.
    pub elapsed: Duration,
    /// Completed-request latencies in µs, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// Arrival instants that fell behind schedule by over 10 ms — a
    /// closed-loop distortion signal (add connections if this grows).
    pub late_arrivals: u64,
}

impl LoadReport {
    /// Achieved completion throughput in requests/second.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.elapsed.as_secs_f64()
    }

    /// The `p`-th latency percentile in µs (0 when nothing completed).
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, self.latencies_us.len()) - 1]
    }

    pub fn mean_latency_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
    }

    fn absorb(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.shed += other.shed;
        self.busy += other.busy;
        self.draining += other.draining;
        self.timeouts += other.timeouts;
        self.dropped += other.dropped;
        self.errors += other.errors;
        self.late_arrivals += other.late_arrivals;
        self.latencies_us.extend(other.latencies_us);
    }

    /// One-line JSON for scripts and the bench harness.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sent\":{},\"completed\":{},\"shed\":{},\"busy\":{},\"draining\":{},\"timeouts\":{},\"dropped\":{},\"errors\":{},\"late_arrivals\":{},\"elapsed_s\":{:.3},\"achieved_rps\":{:.1},\"mean_latency_us\":{:.1},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.sent,
            self.completed,
            self.shed,
            self.busy,
            self.draining,
            self.timeouts,
            self.dropped,
            self.errors,
            self.late_arrivals,
            self.elapsed.as_secs_f64(),
            self.achieved_rps(),
            self.mean_latency_us(),
            self.percentile_us(50.0),
            self.percentile_us(95.0),
            self.percentile_us(99.0),
        )
    }
}

/// Runs the full load: spawns `connections` threads, merges their
/// reports, sorts the latency sample. Blocks until `duration` elapses on
/// every connection (or the server goes away).
pub fn run(cfg: &LoadgenConfig) -> LoadReport {
    let catalog = RequestCatalog::paper();
    let mix = catalog.balanced_mix();
    let total_weight: f64 = mix.iter().map(|(_, w)| w).sum();
    let root = SimRng::new(cfg.seed);
    let start = Instant::now();

    let n = cfg.connections.max(1);
    let mut merged = LoadReport::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = root.fork(i as u64);
            let mix = mix.clone();
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || {
                connection_loop(&cfg, n as f64, start, &mix, total_weight, &mut rng)
            }));
        }
        for h in handles {
            if let Ok(report) = h.join() {
                merged.absorb(report);
            }
        }
    });
    merged.elapsed = start.elapsed().min(cfg.duration + cfg.timeout);
    merged.latencies_us.sort_unstable();
    merged
}

/// One connection's share of the offered load.
fn connection_loop(
    cfg: &LoadgenConfig,
    shares: f64,
    start: Instant,
    mix: &[(RequestTypeId, f64)],
    total_weight: f64,
    rng: &mut SimRng,
) -> LoadReport {
    let mut report = LoadReport::default();
    let mut client = match Client::connect(&cfg.addr, cfg.timeout) {
        Ok(c) => c,
        Err(_) => {
            report.errors += 1;
            return report;
        }
    };

    // Lewis–Shedler over this connection's slice of the curve: candidate
    // gaps are exponential at the majorant `peak/shares`, thinned by the
    // instantaneous rate. `t` is seconds since the run started.
    let max_rate = (cfg.schedule.peak_rate() / shares).max(f64::MIN_POSITIVE);
    let horizon = cfg.duration.as_secs_f64();
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.rng().gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / max_rate;
        if t >= horizon {
            break;
        }
        let accept: f64 = rng.rng().gen_range(0.0..1.0);
        if accept * max_rate >= cfg.schedule.rate_at(t) / shares {
            continue;
        }
        // The mix draw happens even if we fall behind, keeping the request
        // sequence a pure function of the seed.
        let rtype = sample_mix(mix, total_weight, rng);

        let due = start + Duration::from_secs_f64(t);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        } else if now - due > Duration::from_millis(10) {
            report.late_arrivals += 1;
        }

        report.sent += 1;
        match client.run(&rtype.0.to_string()) {
            Ok(Response::Ok { latency_us, .. }) => {
                report.completed += 1;
                report.latencies_us.push(latency_us);
            }
            Ok(Response::Shed { .. }) => report.shed += 1,
            Ok(Response::Busy) => report.busy += 1,
            Ok(Response::Draining) => report.draining += 1,
            Ok(Response::Timeout) => report.timeouts += 1,
            Ok(Response::Dropped) => report.dropped += 1,
            Ok(_) => report.errors += 1,
            Err(_) => {
                report.errors += 1;
                // Transport is gone (server drained or died); reconnect
                // once, else finish the schedule counting errors.
                match Client::connect(&cfg.addr, cfg.timeout) {
                    Ok(c) => client = c,
                    Err(_) => break,
                }
            }
        }
    }
    report
}

/// Weighted draw from the request mix (same scheme the simulator's
/// arrival generator uses, re-derived here because the workload crate
/// keeps its sampler private to the streaming source).
fn sample_mix(mix: &[(RequestTypeId, f64)], total_weight: f64, rng: &mut SimRng) -> RequestTypeId {
    let mut pick: f64 = rng.rng().gen_range(0.0..total_weight);
    for (id, w) in mix {
        if pick < *w {
            return *id;
        }
        pick -= w;
    }
    mix.last().expect("mix is non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_workload::WorkloadPattern;

    #[test]
    fn report_percentiles_and_json() {
        let mut r = LoadReport {
            completed: 4,
            elapsed: Duration::from_secs(2),
            latencies_us: vec![10, 20, 30, 40],
            ..LoadReport::default()
        };
        r.latencies_us.sort_unstable();
        assert_eq!(r.percentile_us(50.0), 20);
        assert_eq!(r.percentile_us(99.0), 40);
        assert_eq!(r.percentile_us(100.0), 40);
        assert!((r.achieved_rps() - 2.0).abs() < 1e-9);
        let json = r.to_json();
        assert!(json.contains("\"p99_us\":40"), "{json}");
        assert!(json.contains("\"achieved_rps\":2.0"), "{json}");
    }

    #[test]
    fn mix_sampling_is_weight_respecting() {
        let catalog = RequestCatalog::paper();
        let mix = catalog.balanced_mix();
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        let mut rng = SimRng::new(42);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            *counts.entry(sample_mix(&mix, total, &mut rng)).or_insert(0u32) += 1;
        }
        // Every type with weight shows up; nothing outside the mix does.
        assert_eq!(counts.len(), mix.len());
        for (id, w) in &mix {
            let observed = counts[id] as f64 / 5000.0;
            let expected = w / total;
            assert!(
                (observed - expected).abs() < 0.05,
                "type {id:?}: observed {observed:.3} vs expected {expected:.3}"
            );
        }
    }

    /// End-to-end: a real server on loopback, a short diurnal-sine L2
    /// schedule, every sent request accounted for.
    #[test]
    fn loadgen_drives_a_live_server() {
        let exp = mlp_engine::ExperimentConfig::smoke(mlp_engine::Scheme::VMlp).with_seed(23);
        let server = crate::Server::start(crate::ServeConfig::smoke(exp)).expect("bind");
        let cfg = LoadgenConfig {
            addr: server.local_addr().to_string(),
            schedule: RateSchedule::diurnal_sine(WorkloadPattern::L2Fluctuating, 120.0, 1.0, 0.3)
                .unwrap(),
            duration: Duration::from_secs(2),
            connections: 4,
            seed: 7,
            timeout: Duration::from_secs(30),
        };
        let report = run(&cfg);
        let out = server.stop();

        assert!(report.sent > 50, "offered ~240 over 2 s, saw {}", report.sent);
        assert_eq!(
            report.completed
                + report.shed
                + report.busy
                + report.draining
                + report.timeouts
                + report.dropped
                + report.errors,
            report.sent,
            "every request accounted for: {report:?}"
        );
        assert!(report.completed > 0);
        assert!(report.percentile_us(99.0) >= report.percentile_us(50.0));
        assert!(out.arrived as u64 >= report.completed + report.shed, "kernel saw the admits");
        assert!(out.invariant_report.is_none(), "{:?}", out.invariant_report);
    }
}
