//! The wire protocol: a plain line protocol and a minimal HTTP/1.1
//! mapping of the same requests, auto-detected per connection.
//!
//! Line mode (the default; what `loadgen` speaks):
//!
//! ```text
//! client:  RUN compose-post\n          (name or numeric id)
//! server:  OK 8123 42\n                (latency_us, kernel request id)
//!          SHED queue-full\n           (overload admission reject)
//!          ABANDONED\n                 (failure recovery gave up)
//!          DROPPED\n                   (shutdown drain cut it off)
//!          BUSY\n                      (submission queue full)
//!          DRAINING\n                  (server is shutting down)
//!          TIMEOUT\n                   (no outcome within the deadline)
//!          ERR <message>\n             (malformed request)
//! client:  PING\n      → PONG\n
//! client:  STATS\n     → one-line JSON counters
//! client:  QUIT\n      → BYE\n, connection closed
//! ```
//!
//! HTTP mode (any request line ending in ` HTTP/1.x`): `GET /run/<type>`
//! maps to `RUN <type>` and returns a JSON body; `GET /healthz` and
//! `GET /stats` are liveness and counters. Keep-alive is honored, bodies
//! are ignored, and anything but GET earns a 405 — this is a benchmark
//! front door, not a web framework (the workspace is vendored-only, so
//! no tokio/hyper by design).

use std::io::{self, BufRead, Write};

/// One parsed client request, protocol-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a request DAG: the operand is a type name or numeric id.
    Run(String),
    Ping,
    Stats,
    Quit,
    /// Unparseable input, with a message to send back.
    Malformed(String),
}

/// One server reply, rendered per-protocol by [`write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Completed: kernel-measured end-to-end latency and request id.
    Ok {
        latency_us: u64,
        request: u64,
    },
    Shed {
        reason: String,
    },
    Abandoned,
    Dropped,
    Busy,
    Draining,
    Timeout,
    Pong,
    Bye,
    /// Pre-rendered JSON (STATS / /stats).
    Json(String),
    Err(String),
}

/// Which framing the connection speaks (decided by its first line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Line,
    Http,
}

/// Detects the protocol from a connection's first line.
pub fn detect_mode(first_line: &str) -> Mode {
    let l = first_line.trim_end();
    if l.ends_with("HTTP/1.1") || l.ends_with("HTTP/1.0") {
        Mode::Http
    } else {
        Mode::Line
    }
}

/// Parses one line-mode request.
pub fn parse_line(line: &str) -> Request {
    let l = line.trim();
    if let Some(rest) = l.strip_prefix("RUN ") {
        let t = rest.trim();
        if t.is_empty() {
            return Request::Malformed("RUN needs a request type".into());
        }
        return Request::Run(t.to_string());
    }
    match l {
        "PING" => Request::Ping,
        "STATS" => Request::Stats,
        "QUIT" | "" => Request::Quit,
        other => Request::Malformed(format!("unknown command '{other}'")),
    }
}

/// Parses one HTTP request: consumes the request line (already read) plus
/// headers through the blank line, and maps the path onto a [`Request`].
/// Returns `Quit` on a cleanly closed connection. The second field is
/// true when the client sent `Connection: close` — the response must
/// close the connection even where the server would default to
/// keep-alive, or clients waiting for EOF hang until the read timeout.
pub fn parse_http(request_line: &str, reader: &mut impl BufRead) -> io::Result<(Request, bool)> {
    // Drain headers; bodies are not expected on GET and not supported.
    let mut line = String::new();
    let mut close = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok((Request::Quit, true));
        }
        if line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("connection") && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return Ok((Request::Malformed("malformed request line".into()), close)),
    };
    if method != "GET" {
        return Ok((Request::Malformed(format!("method {method} not allowed")), close));
    }
    let req = match path {
        "/healthz" => Request::Ping,
        "/stats" => Request::Stats,
        p => match p.strip_prefix("/run/") {
            Some(t) if !t.is_empty() => Request::Run(t.to_string()),
            _ => Request::Malformed(format!("no route for {p}")),
        },
    };
    Ok((req, close))
}

/// Writes `resp` in the connection's framing. `client_close` is HTTP's
/// `Connection: close` request flag (ignored in line mode). Returns
/// `false` when the connection should close afterwards (QUIT / HTTP
/// errors / the client asked to).
pub fn write_response(
    w: &mut impl Write,
    mode: Mode,
    resp: &Response,
    client_close: bool,
) -> io::Result<bool> {
    match mode {
        Mode::Line => write_line(w, resp),
        Mode::Http => write_http(w, resp, client_close),
    }
}

fn write_line(w: &mut impl Write, resp: &Response) -> io::Result<bool> {
    let keep = !matches!(resp, Response::Bye);
    match resp {
        Response::Ok { latency_us, request } => writeln!(w, "OK {latency_us} {request}")?,
        Response::Shed { reason } => writeln!(w, "SHED {reason}")?,
        Response::Abandoned => writeln!(w, "ABANDONED")?,
        Response::Dropped => writeln!(w, "DROPPED")?,
        Response::Busy => writeln!(w, "BUSY")?,
        Response::Draining => writeln!(w, "DRAINING")?,
        Response::Timeout => writeln!(w, "TIMEOUT")?,
        Response::Pong => writeln!(w, "PONG")?,
        Response::Bye => writeln!(w, "BYE")?,
        Response::Json(j) => writeln!(w, "{j}")?,
        Response::Err(m) => writeln!(w, "ERR {m}")?,
    }
    w.flush()?;
    Ok(keep)
}

fn write_http(w: &mut impl Write, resp: &Response, client_close: bool) -> io::Result<bool> {
    let (status, body) = match resp {
        Response::Ok { latency_us, request } => {
            ("200 OK", format!("{{\"latency_us\":{latency_us},\"request\":{request}}}"))
        }
        Response::Shed { reason } => {
            ("503 Service Unavailable", format!("{{\"shed\":\"{reason}\"}}"))
        }
        Response::Abandoned => ("500 Internal Server Error", "{\"abandoned\":true}".into()),
        Response::Dropped => ("503 Service Unavailable", "{\"dropped\":true}".into()),
        Response::Busy => ("503 Service Unavailable", "{\"busy\":true}".into()),
        Response::Draining => ("503 Service Unavailable", "{\"draining\":true}".into()),
        Response::Timeout => ("504 Gateway Timeout", "{\"timeout\":true}".into()),
        Response::Pong | Response::Bye => ("200 OK", "{\"ok\":true}".into()),
        Response::Json(j) => ("200 OK", j.clone()),
        Response::Err(m) => ("400 Bad Request", format!("{{\"error\":\"{m}\"}}")),
    };
    let keep = !client_close
        && matches!(
            resp,
            Response::Ok { .. } | Response::Pong | Response::Json(_) | Response::Shed { .. }
        );
    write!(
        w,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep { "keep-alive" } else { "close" },
    )?;
    w.flush()?;
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_requests_parse() {
        assert_eq!(parse_line("RUN compose-post\n"), Request::Run("compose-post".into()));
        assert_eq!(parse_line("RUN 3"), Request::Run("3".into()));
        assert_eq!(parse_line("PING"), Request::Ping);
        assert_eq!(parse_line("STATS"), Request::Stats);
        assert_eq!(parse_line("QUIT"), Request::Quit);
        assert!(matches!(parse_line("RUN "), Request::Malformed(_)));
        assert!(matches!(parse_line("FROB x"), Request::Malformed(_)));
    }

    #[test]
    fn mode_detection() {
        assert_eq!(detect_mode("GET /run/x HTTP/1.1\r\n"), Mode::Http);
        assert_eq!(detect_mode("RUN compose-post\n"), Mode::Line);
    }

    #[test]
    fn http_requests_parse() {
        let mut rest = io::BufReader::new(&b"Host: x\r\nAccept: */*\r\n\r\n"[..]);
        let (r, close) = parse_http("GET /run/getCheapest HTTP/1.1\r\n", &mut rest).unwrap();
        assert_eq!(r, Request::Run("getCheapest".into()));
        assert!(!close, "no Connection header means keep-alive");
        let mut rest = io::BufReader::new(&b"\r\n"[..]);
        assert_eq!(parse_http("GET /healthz HTTP/1.1", &mut rest).unwrap().0, Request::Ping);
        let mut rest = io::BufReader::new(&b"\r\n"[..]);
        assert!(matches!(
            parse_http("POST /run/x HTTP/1.1", &mut rest).unwrap().0,
            Request::Malformed(_)
        ));
    }

    /// `Connection: close` must be honored on every route, including ones
    /// the server would keep alive — a client waiting for EOF after
    /// asking to close would otherwise hang until the read timeout.
    #[test]
    fn http_connection_close_is_honored() {
        let mut rest = io::BufReader::new(&b"Host: x\r\nConnection: close\r\n\r\n"[..]);
        let (r, close) = parse_http("GET /healthz HTTP/1.1", &mut rest).unwrap();
        assert_eq!(r, Request::Ping);
        assert!(close);
        let mut rest = io::BufReader::new(&b"CONNECTION:  CLOSE  \r\n\r\n"[..]);
        assert!(parse_http("GET /run/x HTTP/1.1", &mut rest).unwrap().1);
        let mut rest = io::BufReader::new(&b"Connection: keep-alive\r\n\r\n"[..]);
        assert!(!parse_http("GET /run/x HTTP/1.1", &mut rest).unwrap().1);
    }

    #[test]
    fn line_responses_render() {
        let mut buf = Vec::new();
        assert!(write_line(&mut buf, &Response::Ok { latency_us: 812, request: 7 }).unwrap());
        assert_eq!(buf, b"OK 812 7\n");
        buf.clear();
        assert!(!write_line(&mut buf, &Response::Bye).unwrap());
        assert_eq!(buf, b"BYE\n");
    }

    #[test]
    fn http_responses_render_with_length() {
        let mut buf = Vec::new();
        assert!(write_http(&mut buf, &Response::Ok { latency_us: 812, request: 7 }, false).unwrap());
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Connection: keep-alive"), "{s}");
        let body = s.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body, "{\"latency_us\":812,\"request\":7}");
        assert!(s.contains(&format!("Content-Length: {}", body.len())), "{s}");

        // A client that asked to close gets a matching header and a
        // false (close-me) verdict, even on a keep-alive response type.
        let mut buf = Vec::new();
        assert!(!write_http(&mut buf, &Response::Ok { latency_us: 812, request: 7 }, true).unwrap());
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Connection: close"), "{s}");
    }
}
