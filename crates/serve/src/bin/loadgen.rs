//! `loadgen` — open-loop load generator for a live `vmlp serve` instance.
//!
//! ```sh
//! loadgen --addr=127.0.0.1:7411 --pattern=l2 --rate=1200 --duration=60
//! loadgen --addr=127.0.0.1:7411 --pattern=const --rate=2000 --duration=10 \
//!         --sine-period=30 --sine-amplitude=0.3 --connections=16 --json
//! ```

use mlp_serve::loadgen::{run, LoadgenConfig};
use mlp_workload::{RateSchedule, WorkloadPattern};
use std::process::ExitCode;
use std::time::Duration;

const HELP: &str = "\
loadgen — replay a workload pattern against a live vmlp server

USAGE:
    loadgen [FLAGS]

FLAGS:
    --addr=HOST:PORT      server address        (default 127.0.0.1:7411)
    --pattern=NAME        l1 | l2 | l3 | const  (default const)
    --rate=R              peak req/s            (default 1000)
    --duration=S          run length, seconds   (default 10)
    --connections=N       connection threads    (default 8)
    --seed=N              RNG seed              (default 2022)
    --timeout=S           per-request deadline  (default 30)
    --sine-period=S       overlay a diurnal sinusoid with this period
    --sine-amplitude=A    sinusoid swing in (0,1)   (default 0.3 when
                          --sine-period is given)
    --json                print the report as one JSON line (for scripts)
    --help                this text

EXIT CODES:
    0  success (server answered; report printed)
    1  run finished but every request errored (server unreachable)
    2  usage error
";

const USAGE_EXIT: u8 = 2;

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7411");
    let mut pattern = WorkloadPattern::Constant;
    let mut rate = 1000.0f64;
    let mut duration_s = 10.0f64;
    let mut connections = 8usize;
    let mut seed = 2022u64;
    let mut timeout_s = 30.0f64;
    let mut sine_period: Option<f64> = None;
    let mut sine_amplitude = 0.3f64;
    let mut json = false;

    for arg in std::env::args().skip(1) {
        let bad = |msg: &str| {
            eprintln!("error: {msg}\n\n{HELP}");
            ExitCode::from(USAGE_EXIT)
        };
        if arg == "--help" || arg == "-h" {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        if arg == "--json" {
            json = true;
            continue;
        }
        let Some((key, value)) = arg.split_once('=') else {
            return bad(&format!("unrecognized argument '{arg}'"));
        };
        match key {
            "--addr" => addr = value.to_string(),
            "--pattern" => match value.to_ascii_lowercase().as_str() {
                "l1" => pattern = WorkloadPattern::L1Pulse,
                "l2" => pattern = WorkloadPattern::L2Fluctuating,
                "l3" => pattern = WorkloadPattern::L3PeriodicWide,
                "const" | "constant" => pattern = WorkloadPattern::Constant,
                _ => return bad(&format!("unknown pattern '{value}'")),
            },
            "--rate" => match value.parse() {
                Ok(r) if r > 0.0 => rate = r,
                _ => return bad("rate must be a positive number"),
            },
            "--duration" => match value.parse() {
                Ok(d) if d > 0.0 => duration_s = d,
                _ => return bad("duration must be positive seconds"),
            },
            "--connections" => match value.parse() {
                Ok(n) if n > 0 => connections = n,
                _ => return bad("connections must be a positive integer"),
            },
            "--seed" => match value.parse() {
                Ok(s) => seed = s,
                Err(_) => return bad("seed must be an integer"),
            },
            "--timeout" => match value.parse() {
                Ok(t) if t > 0.0 => timeout_s = t,
                _ => return bad("timeout must be positive seconds"),
            },
            "--sine-period" => match value.parse() {
                Ok(p) if p > 0.0 => sine_period = Some(p),
                _ => return bad("sine-period must be positive seconds"),
            },
            "--sine-amplitude" => match value.parse() {
                Ok(a) if a > 0.0 && a < 1.0 => sine_amplitude = a,
                _ => return bad("sine-amplitude must be in (0, 1)"),
            },
            _ => return bad(&format!("unknown flag '{key}'")),
        }
    }

    let schedule = match sine_period {
        Some(period) => RateSchedule::diurnal_sine(pattern, rate, period, sine_amplitude),
        None => RateSchedule::steady(pattern, rate),
    };
    let schedule = match schedule {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: invalid schedule: {e}\n\n{HELP}");
            return ExitCode::from(USAGE_EXIT);
        }
    };

    let cfg = LoadgenConfig {
        addr,
        schedule,
        duration: Duration::from_secs_f64(duration_s),
        connections,
        seed,
        timeout: Duration::from_secs_f64(timeout_s),
    };
    eprintln!(
        "offering {} @ {} req/s peak to {} for {}s over {} connection{} …",
        pattern.label(),
        rate,
        cfg.addr,
        duration_s,
        connections,
        if connections == 1 { "" } else { "s" },
    );
    let report = run(&cfg);

    if json {
        println!("{}", report.to_json());
    } else {
        println!("sent / completed:      {} / {}", report.sent, report.completed);
        println!("achieved throughput:   {:.1} req/s", report.achieved_rps());
        println!(
            "latency p50/p95/p99:   {} / {} / {} us",
            report.percentile_us(50.0),
            report.percentile_us(95.0),
            report.percentile_us(99.0)
        );
        println!("mean latency:          {:.1} us", report.mean_latency_us());
        println!("shed/busy/draining:    {} / {} / {}", report.shed, report.busy, report.draining);
        println!(
            "timeouts/dropped/errors: {} / {} / {}",
            report.timeouts, report.dropped, report.errors
        );
        if report.late_arrivals > 0 {
            println!(
                "late arrivals:         {} (add --connections to keep the offered process open-loop)",
                report.late_arrivals
            );
        }
    }

    if report.sent > 0 && report.errors >= report.sent {
        eprintln!("error: no request got a non-error reply — is the server up at that address?");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
