//! # mlp-serve — live TCP front door for the wall-clock kernel
//!
//! Puts the simulator's event-application loop behind a socket. A
//! [`Server`] binds a `std::net` listener (the workspace is vendored-only:
//! no tokio, no hyper), runs a small accept/worker thread pool, and feeds
//! a bounded submission queue into the engine's live kernel
//! ([`mlp_engine::live::run_live`]) running on its own thread. Each
//! connection worker parks on a rendezvous channel until the kernel pushes
//! the request's terminal [`LiveOutcome`] back through the notify sink,
//! then writes the per-request latency down the wire in either the line
//! protocol or minimal HTTP/1.1 (see [`protocol`]).
//!
//! Threads and ownership:
//!
//! ```text
//!  acceptor ──TcpStream──▶ workers (N) ──Submission──▶ kernel thread
//!     │                      ▲   │ park on token          │
//!     │ polls listener +     │   └──────registers────▶ pending map
//!     │ shutdown flag        └──────LiveOutcome◀───── notify sink
//! ```
//!
//! Shutdown is cooperative: [`Server::stop`] (or SIGINT via
//! `mlp_engine::shutdown`) raises the flag; the acceptor stops accepting,
//! workers answer `DRAINING` to new work and exit when their connection
//! closes or times out, dropping the submission senders; the kernel then
//! drains in-flight requests (bounded by `drain_timeout`), reports
//! stragglers as `Dropped`, and returns the run's [`SimOutput`] — auditor
//! verdict included — to the `stop` caller.

pub mod loadgen;
pub mod protocol;

use mlp_engine::live::{LiveOptions, LiveOutcome, OutcomeKind, Submission};
use mlp_engine::profiling::warm_profiles;
use mlp_engine::sim::SimOutput;
use mlp_engine::ExperimentConfig;
use mlp_model::{RequestCatalog, RequestTypeId};
use mlp_sim::SimRng;
use protocol::{Mode, Request, Response};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the front door is sized and how patient it is.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7411` (port 0 picks a free port).
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Bounded submission-queue depth between the front door and the
    /// kernel; `BUSY` past this point (the paper's admission gate then
    /// sheds *inside* the kernel — this cap only bounds the handoff).
    pub queue_cap: usize,
    /// How long a worker waits for the kernel's outcome before answering
    /// `TIMEOUT` (the request itself keeps running).
    pub request_timeout: Duration,
    /// How long shutdown waits for in-flight requests to finish.
    pub drain_timeout: Duration,
    /// The cluster the kernel serves on (machines, scheme, auditor, …).
    /// `max_rate`/`horizon_s` are ignored — live traffic sets the rate and
    /// the clock sets the horizon.
    pub experiment: ExperimentConfig,
}

impl ServeConfig {
    /// A loopback smoke-test shape: tiny cluster, auditor on.
    pub fn smoke(experiment: ExperimentConfig) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 256,
            request_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            experiment,
        }
    }
}

/// Monotone counters the server exposes via `STATS` / `GET /stats`.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    busy: AtomicU64,
    timeouts: AtomicU64,
    draining: AtomicU64,
    errors: AtomicU64,
    latency_us_sum: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub connections: u64,
    pub requests: u64,
    pub completed: u64,
    pub shed: u64,
    pub busy: u64,
    pub timeouts: u64,
    pub draining: u64,
    pub errors: u64,
    /// Sum of completed-request latencies, for mean-latency readouts.
    pub latency_us_sum: u64,
}

impl Counters {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            latency_us_sum: self.latency_us_sum.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connections\":{},\"requests\":{},\"completed\":{},\"shed\":{},\"busy\":{},\"timeouts\":{},\"draining\":{},\"errors\":{},\"mean_latency_us\":{:.1}}}",
            self.connections,
            self.requests,
            self.completed,
            self.shed,
            self.busy,
            self.timeouts,
            self.draining,
            self.errors,
            if self.completed > 0 { self.latency_us_sum as f64 / self.completed as f64 } else { 0.0 },
        )
    }
}

/// Everything a connection worker needs, shared across the pool.
struct Shared {
    catalog: RequestCatalog,
    /// token → the parked worker's rendezvous sender.
    pending: Mutex<HashMap<u64, SyncSender<LiveOutcome>>>,
    next_token: AtomicU64,
    submissions: SyncSender<Submission>,
    shutdown: Arc<AtomicBool>,
    counters: Counters,
    request_timeout: Duration,
}

/// A running live server. Dropping it without [`Server::stop`] detaches
/// the threads; call `stop` to drain and collect the kernel's output.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    kernel: JoinHandle<SimOutput>,
}

/// How often blocked accept/recv loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);
/// Per-stream read timeout so idle keep-alive connections still observe
/// shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

impl Server {
    /// Binds the listener, spins up the pool and the kernel thread, and
    /// returns once the server is accepting.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let (sub_tx, sub_rx) = mpsc::sync_channel::<Submission>(cfg.queue_cap.max(1));
        let catalog = RequestCatalog::paper();

        let shared = Arc::new(Shared {
            catalog: RequestCatalog::paper(),
            pending: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(0),
            submissions: sub_tx,
            shutdown: Arc::clone(&shutdown),
            counters: Counters::default(),
            request_timeout: cfg.request_timeout,
        });

        // Kernel thread: owns the live run end to end. The notify sink
        // unparks whichever worker registered the outcome's token.
        let kernel = {
            let exp = cfg.experiment.clone();
            let kernel_shutdown = Arc::clone(&shutdown);
            let notify_shared = Arc::clone(&shared);
            let opts = LiveOptions { drain_timeout: cfg.drain_timeout, ..LiveOptions::default() };
            std::thread::Builder::new().name("mlp-kernel".into()).spawn(move || {
                let root = SimRng::new(exp.seed);
                let mut warm_rng = root.fork(2);
                let profiles = warm_profiles(&catalog, exp.warmup_cases, &mut warm_rng);
                let mut rng = root.fork(1);
                let mut sched = mlp_engine::default_registry()
                    .build(&exp.scheme, exp.seed)
                    .expect("serve config carries a valid scheme");
                mlp_engine::live::run_live(
                    &exp,
                    &catalog,
                    profiles,
                    sched.as_mut(),
                    &mut rng,
                    sub_rx,
                    kernel_shutdown,
                    &opts,
                    Box::new(move |o| notify_shared.deliver(o)),
                )
            })?
        };

        // Worker pool: a shared MPMC-by-mutex receiver of accepted streams.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&conn_rx);
            let sh = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mlp-serve-{i}"))
                    .spawn(move || worker_loop(rx, sh))?,
            );
        }

        // Acceptor: polls the nonblocking listener against the flag.
        let acceptor = {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new().name("mlp-accept".into()).spawn(move || {
                loop {
                    if sh.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            sh.counters.connections.fetch_add(1, Ordering::Relaxed);
                            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                            let _ = stream.set_nodelay(true);
                            if conn_tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
                // Dropping conn_tx here lets idle workers run down.
            })?
        };

        Ok(Server { addr, shutdown, shared, acceptor, workers, kernel })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The flag `stop` raises; share it with a signal handler to make
    /// ctrl-c initiate the same drain.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.shared.counters.snapshot()
    }

    /// Raises the shutdown flag, drains, joins every thread, and returns
    /// the kernel's output (with the auditor's verdict if enabled).
    pub fn stop(self) -> SimOutput {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        // All submission senders are gone once the workers exit; the
        // kernel drains and returns.
        self.kernel.join().expect("kernel thread panicked")
    }
}

impl Shared {
    /// Notify sink body: unpark the worker waiting on this token. A miss
    /// is fine — the worker already gave up (TIMEOUT) or the request was
    /// dropped at drain with nobody waiting.
    fn deliver(&self, outcome: LiveOutcome) {
        let waiter = self.pending.lock().unwrap().remove(&outcome.token);
        if let Some(tx) = waiter {
            let _ = tx.send(outcome);
        }
    }

    /// Resolves a request-type operand: paper name first, then numeric id.
    fn resolve(&self, operand: &str) -> Option<RequestTypeId> {
        if let Some(r) = self.catalog.request_by_name(operand) {
            return Some(r.id);
        }
        let id: u32 = operand.parse().ok()?;
        let count = self.catalog.balanced_mix().len() as u32;
        (id < count).then_some(RequestTypeId(id))
    }

    /// Runs one request through the kernel, parking until its outcome.
    fn run_one(&self, rtype: RequestTypeId) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        if self.shutdown.load(Ordering::Relaxed) {
            self.counters.draining.fetch_add(1, Ordering::Relaxed);
            return Response::Draining;
        }
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel::<LiveOutcome>(1);
        self.pending.lock().unwrap().insert(token, tx);
        match self.submissions.try_send(Submission { token, rtype }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.pending.lock().unwrap().remove(&token);
                self.counters.busy.fetch_add(1, Ordering::Relaxed);
                return Response::Busy;
            }
            Err(TrySendError::Disconnected(_)) => {
                self.pending.lock().unwrap().remove(&token);
                self.counters.draining.fetch_add(1, Ordering::Relaxed);
                return Response::Draining;
            }
        }
        match rx.recv_timeout(self.request_timeout) {
            Ok(outcome) => match outcome.kind {
                OutcomeKind::Completed { latency_us } => {
                    self.counters.completed.fetch_add(1, Ordering::Relaxed);
                    self.counters.latency_us_sum.fetch_add(latency_us, Ordering::Relaxed);
                    Response::Ok { latency_us, request: outcome.request }
                }
                OutcomeKind::Shed { reason } => {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    Response::Shed { reason: reason.into() }
                }
                OutcomeKind::Abandoned => {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Abandoned
                }
                OutcomeKind::Dropped => {
                    self.counters.draining.fetch_add(1, Ordering::Relaxed);
                    Response::Dropped
                }
            },
            Err(_) => {
                // Reclaim the slot; the kernel may still answer later and
                // find nobody waiting, which `deliver` tolerates.
                self.pending.lock().unwrap().remove(&token);
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                Response::Timeout
            }
        }
    }

    fn respond_to(&self, req: Request) -> Response {
        match req {
            Request::Run(operand) => match self.resolve(&operand) {
                Some(rtype) => self.run_one(rtype),
                None => {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    Response::Err(format!("unknown request type '{operand}'"))
                }
            },
            Request::Ping => Response::Pong,
            Request::Stats => Response::Json(self.counters.snapshot().to_json()),
            Request::Quit => Response::Bye,
            Request::Malformed(m) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                Response::Err(m)
            }
        }
    }
}

fn worker_loop(conns: Arc<Mutex<Receiver<TcpStream>>>, shared: Arc<Shared>) {
    loop {
        // Hold the lock only for the dequeue so the pool drains in
        // parallel; the timeout keeps shutdown observation fresh.
        let next = conns.lock().unwrap().recv_timeout(POLL);
        match next {
            Ok(stream) => {
                let _ = handle_connection(stream, &shared);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Serves one connection to completion: reads requests in either framing,
/// parks per request, writes responses. Returns on peer close, `QUIT`,
/// protocol errors, or shutdown-while-idle.
fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    let mut mode: Option<Mode> = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive connection: close it once draining so
                // the worker can exit; otherwise keep listening.
                if shared.shutdown.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let m = *mode.get_or_insert_with(|| protocol::detect_mode(&line));
        let (request, client_close) = match m {
            Mode::Line => (protocol::parse_line(&line), false),
            Mode::Http => protocol::parse_http(&line, &mut reader)?,
        };
        if request == Request::Quit && m == Mode::Http {
            return Ok(());
        }
        let response = shared.respond_to(request);
        let keep_open = protocol::write_response(&mut writer, m, &response, client_close)?;
        if !keep_open {
            return Ok(());
        }
    }
}

/// Convenience: write an error to stderr only — used by bins, kept here so
/// both `vmlp serve` and `loadgen` format failures identically.
pub fn print_io_error(context: &str, e: &io::Error) {
    eprintln!("error: {context}: {e}");
}

/// Blocks until `addr` accepts a TCP connection or the deadline passes.
/// Lets scripts start `vmlp serve` and `loadgen` back to back.
pub fn wait_ready(addr: &str, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if TcpStream::connect(addr).is_ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

// A tiny blocking client for tests and the load generator.
pub mod client {
    use super::protocol::Response;
    use std::io::{self, BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    /// One line-protocol connection.
    pub struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        pub fn connect(addr: &str, timeout: Duration) -> io::Result<Client> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(timeout))?;
            stream.set_nodelay(true)?;
            Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
        }

        /// Sends `RUN <operand>` and parses the reply.
        pub fn run(&mut self, operand: &str) -> io::Result<Response> {
            writeln!(self.writer, "RUN {operand}")?;
            self.writer.flush()?;
            self.read_response()
        }

        pub fn ping(&mut self) -> io::Result<Response> {
            writeln!(self.writer, "PING")?;
            self.writer.flush()?;
            self.read_response()
        }

        pub fn stats(&mut self) -> io::Result<Response> {
            writeln!(self.writer, "STATS")?;
            self.writer.flush()?;
            self.read_response()
        }

        fn read_response(&mut self) -> io::Result<Response> {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
            }
            Ok(parse_response(line.trim_end()))
        }
    }

    /// Parses one server reply line back into a [`Response`].
    pub fn parse_response(line: &str) -> Response {
        let mut parts = line.splitn(2, ' ');
        match (parts.next().unwrap_or(""), parts.next()) {
            ("OK", Some(rest)) => {
                let mut nums = rest.split_whitespace();
                let latency_us = nums.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let request = nums.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                Response::Ok { latency_us, request }
            }
            ("SHED", Some(reason)) => Response::Shed { reason: reason.into() },
            ("ABANDONED", _) => Response::Abandoned,
            ("DROPPED", _) => Response::Dropped,
            ("BUSY", _) => Response::Busy,
            ("DRAINING", _) => Response::Draining,
            ("TIMEOUT", _) => Response::Timeout,
            ("PONG", _) => Response::Pong,
            ("BYE", _) => Response::Bye,
            ("ERR", Some(m)) => Response::Err(m.into()),
            _ if line.starts_with('{') => Response::Json(line.into()),
            _ => Response::Err(format!("unparseable reply '{line}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_engine::Scheme;
    use std::io::{Read as _, Write as _};

    fn smoke_server() -> Server {
        let exp = ExperimentConfig::smoke(Scheme::VMlp).with_seed(17);
        Server::start(ServeConfig::smoke(exp)).expect("bind loopback")
    }

    #[test]
    fn line_protocol_round_trip_and_drain() {
        let server = smoke_server();
        let addr = server.local_addr().to_string();
        let mut c = client::Client::connect(&addr, Duration::from_secs(30)).unwrap();

        assert_eq!(c.ping().unwrap(), Response::Pong);
        for i in 0..10 {
            let operand =
                if i % 2 == 0 { "compose-post".to_string() } else { format!("{}", i % 3) };
            match c.run(&operand).unwrap() {
                Response::Ok { latency_us, .. } => assert!(latency_us > 0),
                other => panic!("expected OK, got {other:?}"),
            }
        }
        assert!(matches!(c.run("no-such-type").unwrap(), Response::Err(_)));
        match c.stats().unwrap() {
            Response::Json(j) => assert!(j.contains("\"completed\":10"), "{j}"),
            other => panic!("expected stats JSON, got {other:?}"),
        }

        let stats = server.stats();
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.errors, 1);
        let out = server.stop();
        assert_eq!(out.arrived, 10);
        assert!(out.invariant_report.is_none(), "{:?}", out.invariant_report);
    }

    #[test]
    fn http_round_trip() {
        let server = smoke_server();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(
            stream,
            "GET /run/getCheapest HTTP/1.1\r\nHost: x\r\n\r\nGET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let first = read_http_response(&mut reader);
        assert!(first.starts_with("HTTP/1.1 200 OK"), "{first}");
        assert!(first.contains("\"latency_us\":"), "{first}");
        let second = read_http_response(&mut reader);
        assert!(second.contains("\"ok\":true"), "{second}");
        drop(reader);
        drop(stream);

        let out = server.stop();
        assert_eq!(out.arrived, 1);
    }

    #[test]
    fn draining_rejects_new_work() {
        let server = smoke_server();
        let addr = server.local_addr().to_string();
        let mut c = client::Client::connect(&addr, Duration::from_secs(30)).unwrap();
        assert!(matches!(c.run("compose-post").unwrap(), Response::Ok { .. }));
        server.shutdown_flag().store(true, Ordering::Relaxed);
        // The established connection either gets a DRAINING reply or the
        // worker closes it at the drain boundary — never a fresh admission.
        match c.run("compose-post") {
            Ok(Response::Draining) => {}
            Err(_) => {}
            Ok(other) => panic!("expected DRAINING or close, got {other:?}"),
        }
        let out = server.stop();
        assert_eq!(out.arrived, 1);
    }

    /// Reads one HTTP response (headers + Content-Length body).
    fn read_http_response(reader: &mut BufReader<TcpStream>) -> String {
        let mut head = String::new();
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().unwrap();
            }
            let done = line.trim_end().is_empty();
            head.push_str(&line);
            if done {
                break;
            }
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        head.push_str(std::str::from_utf8(&body).unwrap());
        head
    }
}
