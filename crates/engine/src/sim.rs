//! The discrete-event simulator that executes one run.
//!
//! Event flow per request: arrival → scheduler admission (a
//! [`RequestPlan`]) → per-node invocation once dependencies and their
//! sampled communication delays resolve → execution under the machine's
//! *actual* resource availability (capping penalties per the Fig 3c
//! sensitivity model) → completion, which releases resources, feeds the
//! profile store, and readies children.
//!
//! Deviations (Fig 5) arise naturally: a node whose planned start passes
//! while its dependencies are still running (or their messages still in
//! flight) triggers [`Scheduler::on_late_invocation`]; the engine applies
//! whatever [`HealingAction`]s the scheme returns.
//!
//! Fault injection (robustness extension): when the config enables it, a
//! precompiled [`FaultSchedule`] crashes machines (killing their running
//! spans and voiding their ledgers), fails individual invocations
//! transiently, and degrades communication. Failures surface to the
//! scheduler through `on_node_failure` / `on_machine_failure`; schemes
//! without a policy get a bounded blind retry from the engine. With faults
//! disabled the schedule is empty and runs are byte-identical to a build
//! without this subsystem.

use crate::config::ExperimentConfig;
use mlp_cluster::{Cluster, GrantId, MachineId};
use mlp_faults::{attempt_fails, FaultSchedule};
use mlp_model::{RequestCatalog, ResourceVector};
use mlp_net::NetworkModel;
use mlp_sched::{
    HealingAction, LateInfo, NodeFailure, RequestInfo, RequestPlan, Scheduler, SchedulerCtx,
};
use mlp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use mlp_stats::TimeSeries;
use mlp_trace::{
    metrics::names, AuditLog, Decision, DecisionKind, ExecutionCase, LatencyBreakdown,
    MetricsRegistry, ProfileStore, RequestId, RequestRecord, Span, TraceCollector,
};
use mlp_workload::Arrival;
use std::collections::HashMap;

/// Minimum spacing between scheduling rounds once the waiting queue grows
/// large (amortizes queue sorting under overload).
const ROUND_THROTTLE: SimDuration = SimDuration(5_000); // 5 ms
/// Upper bound for the adaptive backoff between *fruitless* rounds: when a
/// saturated scheduler keeps failing to admit anything, re-running the
/// full admission pass every 5 ms only burns time re-sorting the backlog.
const ROUND_BACKOFF_MAX: SimDuration = SimDuration(320_000); // 320 ms
/// Queue length below which rounds run unthrottled.
const SMALL_QUEUE: usize = 64;
/// Floor on the satisfaction fraction a service can be driven to — even a
/// fully saturated node makes some progress (cgroups shares never starve a
/// container completely).
const MIN_SATISFACTION: f64 = 0.05;
/// Engine-fallback cap on per-node attempts for schedulers that return no
/// recovery action from `on_node_failure` (bounds work under fault storms).
const ENGINE_MAX_ATTEMPTS: u32 = 10;
/// Backoff for the engine's blind-retry fallback.
const RETRY_BACKOFF: SimDuration = SimDuration(10_000); // 10 ms

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival(usize),
    TryInvoke {
        request: usize,
        node: usize,
        gen: u64,
    },
    PlannedStart {
        request: usize,
        node: usize,
    },
    Complete {
        request: usize,
        node: usize,
        gen: u64,
    },
    /// The running invocation dies at this instant (fault injection).
    NodeFailed {
        request: usize,
        node: usize,
        gen: u64,
    },
    /// Injected machine crash / recovery (precompiled outage schedule).
    MachineDown(MachineId),
    MachineUp(MachineId),
    Sample,
}

#[derive(Debug, Clone, Copy)]
enum NState {
    /// Waiting for `deps_left` parents; `ready_hint` tracks the latest
    /// parent-completion + comm-delay seen so far.
    WaitingDeps { deps_left: usize, ready_hint: SimTime },
    /// All dependencies resolved; invocable from `at`.
    Ready { at: SimTime },
    /// Executing.
    Running {
        start: SimTime,
        end: SimTime,
        occupied: ResourceVector,
        satisfaction: f64,
        grant: GrantId,
    },
    /// Finished.
    Done,
}

/// Engine-side record of one admitted request.
struct RunReq {
    info: RequestInfo,
    plan: RequestPlan,
    state: Vec<NState>,
    gens: Vec<u64>,
    remaining: usize,
    /// Per-node invocation attempts so far (fault injection hashes these
    /// into its fail/succeed verdicts).
    attempts: Vec<u32>,
    /// Given up on: stays unfinished, all events for it are dead.
    abandoned: bool,
    /// Per-node critical-path attribution bookkeeping.
    attrib: Vec<NodeAttrib>,
}

/// Per-node bookkeeping for latency attribution. Everything temporal is
/// kept in whole microseconds ([`SimTime`]) so the walk over the critical
/// chain telescopes *exactly* to the measured end-to-end latency.
#[derive(Debug, Clone, Copy)]
struct NodeAttrib {
    /// The dependency whose completion message arrived last (ties go to
    /// the later parent), pinning this node's readiness — the upstream
    /// link of the critical chain. `None` for root nodes.
    crit_parent: Option<usize>,
    /// When the node became invocable: admission for roots, the last
    /// dependency message arrival otherwise.
    ready_at: SimTime,
    /// Execution window of the attempt that finally completed.
    start: SimTime,
    end: SimTime,
    /// Planned start in force when that attempt launched (reflects
    /// delay-slot promotions and crash re-plans).
    planned: SimTime,
    /// Capping penalty sampled for the completing attempt (total exec
    /// time = ideal × penalty; captured at sample time because the
    /// high-sensitivity penalty draws noise and cannot be recomputed).
    penalty: f64,
    /// Execution time reclaimed by resource stretching, µs.
    healed_us: u64,
}

impl NodeAttrib {
    fn new(now: SimTime, planned: SimTime) -> Self {
        NodeAttrib {
            crit_parent: None,
            ready_at: now,
            start: now,
            end: now,
            planned,
            penalty: 1.0,
            healed_us: 0,
        }
    }
}

/// Everything one simulation run produces.
pub struct SimOutput {
    /// Spans and request records.
    pub collector: TraceCollector,
    /// Cluster utilization `U` sampled at the configured period
    /// (only within the horizon).
    pub utilization: TimeSeries,
    /// Scheduler-internal counters (delay-slot fills, stretches, …).
    pub metrics: MetricsRegistry,
    /// Requests admitted or queued but not finished at cut-off.
    pub unfinished: usize,
    /// Requests abandoned by failure recovery (a subset of `unfinished`).
    pub abandoned: usize,
    /// Requests that arrived in total.
    pub arrived: usize,
    /// The profile store as enriched by the run (for trace-driven reuse).
    pub profiles: ProfileStore,
    /// Decision-audit trail (disabled and empty unless `cfg.audit`).
    pub audit: AuditLog,
    /// First invariant violation the auditor caught, as a minimized repro
    /// dump (`None` when the auditor is off or nothing fired).
    pub invariant_report: Option<String>,
}

/// Runs one experiment: `arrivals` against `scheduler` on a fresh cluster.
pub fn simulate(
    cfg: &ExperimentConfig,
    catalog: &RequestCatalog,
    profiles: ProfileStore,
    arrivals: &[Arrival],
    scheduler: &mut dyn Scheduler,
    rng: &mut SimRng,
) -> SimOutput {
    let mut sim = Sim {
        cluster: cfg.build_cluster(),
        catalog,
        profiles,
        net: NetworkModel::paper_default(),
        metrics: MetricsRegistry::new(),
        collector: TraceCollector::new(),
        utilization: TimeSeries::new(cfg.sample_period_s),
        queue: EventQueue::with_capacity(arrivals.len() * 4 + 16),
        reqs: Vec::new(),
        infos: vec![None; arrivals.len()],
        slot_of: vec![usize::MAX; arrivals.len()],
        last_round: SimTime::ZERO,
        round_backoff: ROUND_THROTTLE,
        horizon: SimTime::from_secs_f64(cfg.horizon_s),
        hard_cap: SimTime::from_secs_f64(cfg.horizon_s * cfg.drain_factor.max(1.0)),
        sample_period: SimDuration::from_secs_f64(cfg.sample_period_s),
        pending_ready: Vec::new(),
        faults: cfg.faults.compile(cfg.machines, cfg.seed),
        abandoned: 0,
        orphan_since: HashMap::new(),
        mttr_sum_us: 0,
        mttr_count: 0,
        audit: if cfg.audit { AuditLog::enabled() } else { AuditLog::disabled() },
        auditor: cfg.auditor,
        invariant_report: None,
        cfg: *cfg,
    };
    sim.run(arrivals, scheduler, rng)
}

struct Sim<'c> {
    cluster: Cluster,
    catalog: &'c RequestCatalog,
    profiles: ProfileStore,
    net: NetworkModel,
    metrics: MetricsRegistry,
    collector: TraceCollector,
    utilization: TimeSeries,
    queue: EventQueue<Event>,
    /// Admitted requests, in admission order.
    reqs: Vec<RunReq>,
    /// Arrival metadata by request id (arrival index).
    infos: Vec<Option<RequestInfo>>,
    /// request id → index into `reqs` (usize::MAX = not admitted yet).
    slot_of: Vec<usize>,
    last_round: SimTime,
    /// Current spacing between rounds; grows exponentially while rounds
    /// admit nothing against a non-empty queue, resets on any admission.
    round_backoff: SimDuration,
    horizon: SimTime,
    hard_cap: SimTime,
    sample_period: SimDuration,
    /// Root nodes that became ready during admission; their
    /// `on_node_ready` notifications are delivered right after the
    /// admission round returns (the scheduler is borrowed during it).
    pending_ready: Vec<(RequestId, usize, SimTime)>,
    /// Precompiled fault schedule (empty when faults are disabled).
    faults: FaultSchedule,
    /// Requests given up on by failure recovery.
    abandoned: usize,
    /// `(slot, node) → crash instant` for spans killed by a machine crash,
    /// cleared when the node next starts executing (MTTR accounting).
    orphan_since: HashMap<(usize, usize), SimTime>,
    mttr_sum_us: u64,
    mttr_count: u64,
    /// Decision-audit sink, shared with the scheduler through the context.
    audit: AuditLog,
    /// Whether the per-tick invariant auditor runs.
    auditor: bool,
    /// First violation's repro dump.
    invariant_report: Option<String>,
    /// The run's config, kept for the repro dump.
    cfg: ExperimentConfig,
}

macro_rules! sched_ctx {
    ($sim:expr, $now:expr) => {
        SchedulerCtx {
            now: $now,
            cluster: &mut $sim.cluster,
            profiles: &$sim.profiles,
            catalog: $sim.catalog,
            net: &$sim.net,
            metrics: &$sim.metrics,
            audit: &$sim.audit,
        }
    };
}

impl<'c> Sim<'c> {
    fn run(
        &mut self,
        arrivals: &[Arrival],
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) -> SimOutput {
        for (i, a) in arrivals.iter().enumerate() {
            self.queue.schedule(a.at, Event::Arrival(i));
        }
        if self.sample_period > SimDuration::ZERO {
            self.queue.schedule(SimTime::ZERO + self.sample_period, Event::Sample);
        }
        for o in self.faults.outages().to_vec() {
            self.queue.schedule(o.down_at, Event::MachineDown(o.machine));
            self.queue.schedule(o.up_at, Event::MachineUp(o.machine));
        }

        while let Some((now, ev)) = self.queue.pop() {
            if now > self.hard_cap {
                break;
            }
            match ev {
                Event::Arrival(i) => {
                    let a = arrivals[i];
                    let info = RequestInfo {
                        id: RequestId(i as u64),
                        rtype: a.request_type,
                        arrival: now,
                    };
                    self.infos[i] = Some(info);
                    let mut ctx = sched_ctx!(self, now);
                    scheduler.on_arrival(info, &mut ctx);
                    let _ = ctx;
                    self.maybe_round(now, scheduler);
                }
                Event::TryInvoke { request, node, gen } => {
                    self.try_invoke(now, request, node, gen, scheduler, rng);
                }
                Event::PlannedStart { request, node } => {
                    self.check_deviation(now, request, node, scheduler, rng);
                }
                Event::Complete { request, node, gen } => {
                    self.complete(now, request, node, gen, scheduler, rng);
                }
                Event::NodeFailed { request, node, gen } => {
                    self.node_failed(now, request, node, gen, scheduler, rng);
                }
                Event::MachineDown(id) => {
                    self.machine_down(now, id, scheduler, rng);
                }
                Event::MachineUp(id) => {
                    self.cluster.machine_mut(id).recover();
                    self.audit.record(
                        Decision::new(now, DecisionKind::MachineUp, "injected-recovery")
                            .machine(id),
                    );
                    self.maybe_round(now, scheduler);
                }
                Event::Sample => {
                    if now <= self.horizon {
                        self.utilization.push(self.cluster.utilization());
                    }
                    self.cluster
                        .prune_ledgers_before(now.saturating_sub(SimDuration::from_secs(2)));
                    // Publish how much timeline pruning left behind: the
                    // per-machine gauges plus a cluster max (a high-water
                    // mark across ticks) and per-tick total. Long runs
                    // assert on these to prove retained breakpoints stay
                    // bounded.
                    let mut total = 0usize;
                    let mut largest = 0usize;
                    for m in self.cluster.machines() {
                        let len = m.ledger.timeline_len();
                        total += len;
                        largest = largest.max(len);
                        self.metrics.set_gauge(&names::ledger_timeline(m.id.0), len as f64);
                    }
                    let max_seen = self
                        .metrics
                        .gauge(names::LEDGER_TIMELINE_MAX)
                        .unwrap_or(0.0)
                        .max(largest as f64);
                    self.metrics.set_gauge(names::LEDGER_TIMELINE_MAX, max_seen);
                    self.metrics.set_gauge(names::LEDGER_TIMELINE_TOTAL, total as f64);
                    // Per-shard gauges, only when actually sharded: scale
                    // runs watch whether load (and retained timeline) stays
                    // balanced across shards or piles up in a few.
                    if self.cluster.shard_count() > 1 {
                        for s in 0..self.cluster.shard_count() as u32 {
                            let shard = mlp_cluster::ShardId(s);
                            let util = self.cluster.shard_utilization(shard);
                            self.metrics.set_gauge(&names::shard_utilization(s), util);
                            let peak_name = names::shard_utilization_peak(s);
                            let peak = self.metrics.gauge(&peak_name).unwrap_or(0.0).max(util);
                            self.metrics.set_gauge(&peak_name, peak);
                            let timeline: usize = self
                                .cluster
                                .shard_machines(shard)
                                .map(|m| m.ledger.timeline_len())
                                .sum();
                            self.metrics
                                .set_gauge(&names::shard_ledger_timeline(s), timeline as f64);
                        }
                    }
                    if self.auditor {
                        self.audit_tick(now);
                    }
                    self.run_round(now, scheduler);
                    let more_work = scheduler.waiting() > 0
                        || self.reqs.iter().any(|r| r.remaining > 0 && !r.abandoned)
                        || !self.queue.is_empty();
                    let next = now + self.sample_period;
                    if more_work && next <= self.hard_cap {
                        self.queue.schedule(next, Event::Sample);
                    }
                }
            }
        }

        if self.mttr_count > 0 {
            let mean_ms = self.mttr_sum_us as f64 / self.mttr_count as f64 / 1000.0;
            self.metrics.set_gauge(names::MTTR_MS, mean_ms);
        }
        if self.auditor {
            self.audit_end_of_run();
        }
        // Abandoned requests keep `remaining > 0`, so they are counted as
        // unfinished and request conservation holds under faults.
        let unfinished = self.reqs.iter().filter(|r| r.remaining > 0).count() + scheduler.waiting();
        SimOutput {
            collector: std::mem::take(&mut self.collector),
            utilization: std::mem::replace(
                &mut self.utilization,
                TimeSeries::new(self.sample_period.as_secs_f64().max(1e-9)),
            ),
            metrics: self.metrics.clone(),
            unfinished,
            abandoned: self.abandoned,
            arrived: arrivals.len(),
            profiles: std::mem::take(&mut self.profiles),
            audit: self.audit.clone(),
            invariant_report: self.invariant_report.take(),
        }
    }

    /// Runs an admission round unless throttled by a long waiting queue
    /// or backed off after fruitless rounds.
    fn maybe_round(&mut self, now: SimTime, scheduler: &mut dyn Scheduler) {
        if scheduler.waiting() < SMALL_QUEUE || now.since(self.last_round) >= self.round_backoff {
            self.run_round(now, scheduler);
        }
    }

    fn run_round(&mut self, now: SimTime, scheduler: &mut dyn Scheduler) {
        self.last_round = now;
        let plans = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.schedule(&mut ctx)
        };
        // Adapt the round spacing: a saturated cluster gains nothing from
        // re-examining the same backlog every few milliseconds.
        if plans.is_empty() && scheduler.waiting() > 0 {
            self.round_backoff =
                SimDuration(self.round_backoff.0.saturating_mul(2)).min(ROUND_BACKOFF_MAX);
        } else {
            self.round_backoff = ROUND_THROTTLE;
        }
        for plan in plans {
            self.admit(now, plan);
        }
        let ready = std::mem::take(&mut self.pending_ready);
        for (rid, node, at) in ready {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_node_ready(rid, node, at, &mut ctx);
        }
    }

    fn admit(&mut self, now: SimTime, plan: RequestPlan) {
        let id = plan.request.0 as usize;
        let info = self.infos[id].expect("scheduler admitted an unknown request");
        debug_assert_eq!(self.slot_of[id], usize::MAX, "request admitted twice");
        let dag = &self.catalog.request(info.rtype).dag;
        assert_eq!(plan.nodes.len(), dag.len(), "plan does not cover the DAG");

        let n = dag.len();
        let deg = dag.in_degrees();
        let mut state = Vec::with_capacity(n);
        for &d in &deg {
            if d == 0 {
                state.push(NState::Ready { at: now });
            } else {
                state.push(NState::WaitingDeps { deps_left: d, ready_hint: now });
            }
        }
        self.audit.record(
            Decision::new(now, DecisionKind::Admit, "plan-accepted")
                .request(info.id)
                .value(n as f64),
        );
        let attrib = plan.nodes.iter().map(|np| NodeAttrib::new(now, np.planned_start)).collect();
        let slot = self.reqs.len();
        self.slot_of[id] = slot;
        self.reqs.push(RunReq {
            info,
            plan,
            state,
            gens: vec![0; n],
            remaining: n,
            attempts: vec![0; n],
            abandoned: false,
            attrib,
        });

        // Schedule root invocations and deviation checks.
        let req = &self.reqs[slot];
        let mut roots = Vec::new();
        for (i, (&d, np)) in deg.iter().zip(&req.plan.nodes).enumerate() {
            let ps = np.planned_start.max(now);
            self.queue.schedule(ps, Event::PlannedStart { request: id, node: i });
            if d == 0 {
                self.queue.schedule(ps, Event::TryInvoke { request: id, node: i, gen: 0 });
                roots.push(i);
            }
        }
        self.pending_ready.extend(roots.into_iter().map(|i| (RequestId(id as u64), i, now)));
    }

    fn try_invoke(
        &mut self,
        now: SimTime,
        request: usize,
        node: usize,
        gen: u64,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let slot = self.slot_of[request];
        if slot == usize::MAX {
            return;
        }
        let req = &mut self.reqs[slot];
        if req.abandoned || req.gens[node] != gen {
            return; // superseded by a promotion, re-plan, or abandon
        }
        let at = match req.state[node] {
            NState::Ready { at } => at,
            _ => return,
        };
        if now < at {
            // Promotion moved the planned start ahead of readiness.
            self.queue.schedule(at, Event::TryInvoke { request, node, gen });
            return;
        }

        let np = req.plan.nodes[node];
        if self.faults.is_active() && !self.cluster.machine(np.machine).is_up() {
            // The planned machine is down. Fault-aware schemes re-plan via
            // `on_machine_failure`; the naive default waits the outage out.
            let at = match self.faults.next_recovery(np.machine, now) {
                Some(up) => up + SimDuration(1), // strictly after MachineUp
                None => now + RETRY_BACKOFF,
            };
            self.queue.schedule(at, Event::TryInvoke { request, node, gen });
            return;
        }
        let attempt = req.attempts[node];
        let fails =
            self.faults.is_active() && attempt_fails(&self.faults, req.info.id, node, attempt, now);

        let dag = &self.catalog.request(req.info.rtype).dag;
        let dnode = dag.node(node);
        let svc = self.catalog.services.get(dnode.service);

        // What the service wants is bounded by its grant; what it gets is
        // bounded by what is actually free on the machine right now.
        let machine = self.cluster.machine_mut(np.machine);
        let want = svc.demand.min(&np.grant);
        let occupied = want.min(&machine.actual_free()).clamp_non_negative();
        let satisfaction = occupied.satisfaction_of(&svc.demand).max(MIN_SATISFACTION);
        let grant = machine.occupy(occupied);

        let (dur_ms, penalty) =
            svc.sample_exec_ms_capped_parts(dnode.work_factor, satisfaction, rng.rng());
        let end = now + SimDuration::from_millis_f64(dur_ms);
        req.gens[node] += 1;
        let gen = req.gens[node];
        req.state[node] = NState::Running { start: now, end, occupied, satisfaction, grant };
        // Attribution sees the attempt that completes; retries overwrite.
        req.attrib[node].start = now;
        req.attrib[node].planned = np.planned_start;
        req.attrib[node].penalty = penalty;
        req.attrib[node].healed_us = 0;
        // A failing attempt holds its resources for the full sampled
        // duration, then dies instead of completing (same RNG draws either
        // way, so disabled faults stay byte-identical).
        if fails {
            self.queue.schedule(end, Event::NodeFailed { request, node, gen });
        } else {
            self.queue.schedule(end, Event::Complete { request, node, gen });
        }
        if let Some(t0) = self.orphan_since.remove(&(slot, node)) {
            self.mttr_sum_us += now.since(t0).as_micros();
            self.mttr_count += 1;
        }

        let rid = self.reqs[slot].info.id;
        let mut ctx = sched_ctx!(self, now);
        scheduler.on_span_start(rid, node, &mut ctx);
    }

    fn check_deviation(
        &mut self,
        now: SimTime,
        request: usize,
        node: usize,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let slot = self.slot_of[request];
        if slot == usize::MAX {
            return;
        }
        let req = &self.reqs[slot];
        if req.abandoned {
            return;
        }
        let np = req.plan.nodes[node];
        if np.planned_start > now {
            return; // plan was moved; a fresh PlannedStart is queued
        }
        let late = match req.state[node] {
            NState::WaitingDeps { .. } => true,
            NState::Ready { at } => at > now,
            NState::Running { .. } | NState::Done => false,
        };
        if !late {
            return;
        }
        let info = LateInfo {
            request: req.info.id,
            node,
            machine: np.machine,
            planned_start: np.planned_start,
        };
        self.audit.record(
            Decision::new(now, DecisionKind::LateInvocation, "planned-start-passed")
                .request(req.info.id)
                .node(node)
                .machine(np.machine)
                .value(now.since(np.planned_start).as_millis_f64()),
        );
        let actions = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_late_invocation(info, &mut ctx)
        };
        for a in actions {
            self.apply_healing(now, a, scheduler, rng);
        }
        // Delay-slot "request" candidates: give the waiting queue a chance
        // to fill the stall.
        self.maybe_round(now, scheduler);
    }

    fn apply_healing(
        &mut self,
        now: SimTime,
        action: HealingAction,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let _ = rng;
        match action {
            HealingAction::PromoteNode { request, node, new_start } => {
                let id = request.0 as usize;
                let slot = self.slot_of[id];
                if slot == usize::MAX {
                    return;
                }
                let req = &mut self.reqs[slot];
                let new_start = new_start.max(now);
                req.plan.nodes[node].planned_start = new_start;
                // A deviation check still applies at the new start.
                self.queue.schedule(new_start, Event::PlannedStart { request: id, node });
                if let NState::Ready { at } = req.state[node] {
                    req.gens[node] += 1;
                    let gen = req.gens[node];
                    self.queue
                        .schedule(new_start.max(at), Event::TryInvoke { request: id, node, gen });
                }
            }
            HealingAction::StretchRunning { request, node, factor } => {
                let id = request.0 as usize;
                let slot = self.slot_of[id];
                if slot == usize::MAX || factor <= 1.0 {
                    return;
                }
                let req = &mut self.reqs[slot];
                let NState::Running { start, end, occupied, satisfaction, grant } = req.state[node]
                else {
                    return;
                };
                if end <= now {
                    return;
                }
                let dag = &self.catalog.request(req.info.rtype).dag;
                let svc = self.catalog.services.get(dag.node(node).service);
                let machine = self.cluster.machine_mut(req.plan.nodes[node].machine);
                // Grant the extra resources that are actually free.
                let extra = (svc.demand * (factor - 1.0)).min(&machine.actual_free());
                if extra.has_negative() || extra == ResourceVector::ZERO {
                    return;
                }
                if !machine.grow(grant, extra) {
                    return; // grant died (machine crashed under the span)
                }
                let new_occupied = occupied + extra;
                // Speedup proportional to the satisfaction recovered.
                let new_sat = new_occupied.satisfaction_of(&svc.demand).max(satisfaction);
                let speedup = (new_sat / satisfaction).max(1.0);
                let remaining = end.since(now);
                let new_end = now + remaining.mul_f64(1.0 / speedup);
                // Attribution: the healing module reclaimed this much of
                // the span's tail.
                req.attrib[node].healed_us += end.0.saturating_sub(new_end.0);
                req.state[node] = NState::Running {
                    start,
                    end: new_end,
                    occupied: new_occupied,
                    satisfaction: new_sat,
                    grant,
                };
                req.gens[node] += 1;
                let gen = req.gens[node];
                // The failure verdict for this attempt was drawn at invoke
                // time; a stretched span keeps its Complete outcome.
                self.queue.schedule(new_end, Event::Complete { request: id, node, gen });
            }
            HealingAction::Retry { request, node, backoff } => {
                let id = request.0 as usize;
                let slot = self.slot_of[id];
                if slot == usize::MAX {
                    return;
                }
                let req = &mut self.reqs[slot];
                if req.abandoned || !matches!(req.state[node], NState::Ready { .. }) {
                    return;
                }
                req.gens[node] += 1;
                let gen = req.gens[node];
                self.metrics.inc(names::RETRIES);
                self.queue.schedule(now + backoff, Event::TryInvoke { request: id, node, gen });
            }
            HealingAction::Replan { request, node, machine, new_start } => {
                let id = request.0 as usize;
                let slot = self.slot_of[id];
                if slot == usize::MAX {
                    return;
                }
                let req = &mut self.reqs[slot];
                if req.abandoned || matches!(req.state[node], NState::Running { .. } | NState::Done)
                {
                    return;
                }
                let new_start = new_start.max(now);
                req.plan.nodes[node].machine = machine;
                req.plan.nodes[node].planned_start = new_start;
                self.queue.schedule(new_start, Event::PlannedStart { request: id, node });
                if let NState::Ready { at } = req.state[node] {
                    req.gens[node] += 1;
                    let gen = req.gens[node];
                    self.queue
                        .schedule(new_start.max(at), Event::TryInvoke { request: id, node, gen });
                }
            }
            HealingAction::Abandon { request } => {
                let id = request.0 as usize;
                let slot = self.slot_of[id];
                if slot == usize::MAX {
                    return;
                }
                self.abandon_request(now, slot, scheduler);
            }
        }
    }

    /// Drops a request for good: kills every pending event for it,
    /// releases any running grants, and notifies the scheduler. The
    /// request stays `remaining > 0`, so it counts as unfinished.
    fn abandon_request(&mut self, now: SimTime, slot: usize, scheduler: &mut dyn Scheduler) {
        let req = &mut self.reqs[slot];
        if req.abandoned || req.remaining == 0 {
            return;
        }
        req.abandoned = true;
        let mut held: Vec<(MachineId, GrantId)> = Vec::new();
        for node in 0..req.state.len() {
            req.gens[node] += 1; // invalidate every in-flight event
            if let NState::Running { grant, .. } = req.state[node] {
                held.push((req.plan.nodes[node].machine, grant));
                req.state[node] = NState::Ready { at: now };
            }
        }
        let rid = req.info.id;
        for (m, g) in held {
            self.cluster.machine_mut(m).release(g);
        }
        // Abandoned nodes never "recover": drop them from MTTR tracking.
        self.orphan_since.retain(|&(s, _), _| s != slot);
        self.abandoned += 1;
        self.metrics.inc(names::ABANDONS);
        let mut ctx = sched_ctx!(self, now);
        scheduler.on_request_abandoned(rid, &mut ctx);
    }

    /// A running invocation died (transient fault). Release its grant,
    /// put the node back in the ready state, and let the scheduler decide
    /// between retry, re-plan, and shedding; schemes without a policy get
    /// a bounded blind retry.
    fn node_failed(
        &mut self,
        now: SimTime,
        request: usize,
        node: usize,
        gen: u64,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let slot = self.slot_of[request];
        if slot == usize::MAX {
            return;
        }
        let req = &mut self.reqs[slot];
        if req.abandoned || req.gens[node] != gen {
            return;
        }
        let NState::Running { grant, .. } = req.state[node] else {
            return;
        };
        let np = req.plan.nodes[node];
        let attempt = req.attempts[node];
        req.attempts[node] = attempt + 1;
        req.state[node] = NState::Ready { at: now };
        req.gens[node] += 1;
        let rid = req.info.id;
        self.cluster.machine_mut(np.machine).release(grant);
        self.metrics.inc(names::NODE_FAILURES);

        let failure = NodeFailure { request: rid, node, machine: np.machine, attempt, at: now };
        let actions = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_node_failure(failure, &mut ctx)
        };
        let handled = actions.iter().any(|a| match a {
            HealingAction::Retry { request, node: n, .. }
            | HealingAction::Replan { request, node: n, .. } => *request == rid && *n == node,
            HealingAction::Abandon { request } => *request == rid,
            _ => false,
        });
        for a in actions {
            self.apply_healing(now, a, scheduler, rng);
        }
        if handled {
            return;
        }
        // Engine fallback for fault-oblivious schemes: blind retry with a
        // fixed backoff, bounded by ENGINE_MAX_ATTEMPTS.
        let req = &mut self.reqs[slot];
        if req.abandoned {
            return;
        }
        if req.attempts[node] >= ENGINE_MAX_ATTEMPTS {
            self.audit.record(
                Decision::new(now, DecisionKind::Shed, "engine-retry-budget")
                    .request(rid)
                    .node(node)
                    .value(req.attempts[node] as f64),
            );
            self.abandon_request(now, slot, scheduler);
        } else {
            let gen = req.gens[node];
            self.metrics.inc(names::RETRIES);
            self.audit.record(
                Decision::new(now, DecisionKind::Retry, "engine-blind-retry")
                    .request(rid)
                    .node(node)
                    .value(req.attempts[node] as f64),
            );
            self.queue.schedule(now + RETRY_BACKOFF, Event::TryInvoke { request, node, gen });
        }
    }

    /// An injected machine crash: every span executing there is killed and
    /// re-enters the ready state, the machine's grants and ledger are
    /// wiped, and the scheduler gets a chance to re-plan displaced work
    /// onto surviving machines.
    fn machine_down(
        &mut self,
        now: SimTime,
        id: MachineId,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        self.metrics.inc(names::MACHINE_CRASHES);
        self.audit
            .record(Decision::new(now, DecisionKind::MachineDown, "injected-outage").machine(id));
        let mut orphans: Vec<(usize, usize)> = Vec::new(); // (slot, node)
        for (slot, req) in self.reqs.iter_mut().enumerate() {
            if req.abandoned || req.remaining == 0 {
                continue;
            }
            for node in 0..req.state.len() {
                if req.plan.nodes[node].machine != id {
                    continue;
                }
                if matches!(req.state[node], NState::Running { .. }) {
                    // The work in flight is lost; the re-execution is a new
                    // attempt with a fresh failure verdict.
                    req.state[node] = NState::Ready { at: now };
                    req.gens[node] += 1;
                    req.attempts[node] += 1;
                    orphans.push((slot, node));
                }
            }
        }
        self.cluster.machine_mut(id).crash();

        // Naive default recovery: re-invoke when the machine comes back.
        // Fault-aware schedulers supersede these events by re-planning
        // (which bumps the generation counters).
        let recovery = self.faults.next_recovery(id, now);
        for &(slot, node) in &orphans {
            self.orphan_since.entry((slot, node)).or_insert(now);
            let at = match recovery {
                Some(up) => up + SimDuration(1),
                None => now + RETRY_BACKOFF,
            };
            let gen = self.reqs[slot].gens[node];
            let request = self.reqs[slot].info.id.0 as usize;
            self.queue.schedule(at, Event::TryInvoke { request, node, gen });
        }

        let orphan_ids: Vec<(RequestId, usize)> =
            orphans.iter().map(|&(slot, node)| (self.reqs[slot].info.id, node)).collect();
        let actions = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_machine_failure(id, &orphan_ids, &mut ctx)
        };
        for a in actions {
            self.apply_healing(now, a, scheduler, rng);
        }
    }

    fn complete(
        &mut self,
        now: SimTime,
        request: usize,
        node: usize,
        gen: u64,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let slot = self.slot_of[request];
        if slot == usize::MAX {
            return;
        }
        let req = &mut self.reqs[slot];
        if req.abandoned || req.gens[node] != gen {
            return; // stale completion (stretched span / fault recovery)
        }
        let NState::Running { start, occupied, satisfaction, grant, .. } = req.state[node] else {
            return;
        };
        req.state[node] = NState::Done;
        req.remaining -= 1;
        req.attrib[node].end = now;

        let np = req.plan.nodes[node];
        let machine_load = {
            let machine = self.cluster.machine_mut(np.machine);
            machine.release(grant);
            machine.utilization()
        };

        let rtype = req.info.rtype;
        let dag = &self.catalog.request(rtype).dag;
        let service = dag.node(node).service;
        let span = Span {
            request: req.info.id,
            request_type: rtype,
            service,
            dag_node: node,
            machine: np.machine,
            planned_start: np.planned_start,
            start,
            end: now,
            satisfaction,
        };
        self.collector.record_span(span);
        self.profiles.record(
            service,
            ExecutionCase {
                usage: occupied,
                machine_load,
                exec_ms: now.since(start).as_millis_f64(),
            },
        );
        let heal = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_span_complete(&span, &mut ctx)
        };
        for a in heal {
            self.apply_healing(now, a, scheduler, rng);
        }

        // Ready the children.
        let degrade = self.faults.degradation_at(now);
        let req = &mut self.reqs[slot];
        let children = dag.children(node);
        let parent_machine = np.machine;
        let mut newly_ready: Vec<(RequestId, usize, SimTime)> = Vec::new();
        let mut violations = 0u64;
        for c in children {
            let callee = self.catalog.services.get(dag.node(c).service);
            let same = req.plan.nodes[c].machine == parent_machine;
            let mut comm = self.net.sample_delay(same, callee.comm, rng);
            if degrade != 1.0 {
                // Fault-injected network degradation stretches the delay
                // after sampling, so the RNG stream is untouched.
                comm = comm.mul_f64(degrade);
            }
            let arrive = now + comm;
            match &mut req.state[c] {
                NState::WaitingDeps { deps_left, ready_hint } => {
                    // The parent whose message lands last (ties to the
                    // later arrival) is the child's critical dependency.
                    if arrive >= *ready_hint {
                        req.attrib[c].crit_parent = Some(node);
                    }
                    *ready_hint = (*ready_hint).max(arrive);
                    *deps_left -= 1;
                    if *deps_left == 0 {
                        let at = *ready_hint;
                        req.attrib[c].ready_at = at;
                        req.state[c] = NState::Ready { at };
                        let when = at.max(req.plan.nodes[c].planned_start).max(now);
                        let gen = req.gens[c];
                        self.queue.schedule(when, Event::TryInvoke { request, node: c, gen });
                        newly_ready.push((req.info.id, c, at));
                    }
                }
                other => {
                    // A child in any state but WaitingDeps here means the
                    // dependency bookkeeping drifted (e.g. a stale event
                    // survived a generation bump). Recoverable: count it
                    // and leave the child's lifecycle alone.
                    debug_assert!(false, "child {c} of a completing node in state {other:?}");
                    violations += 1;
                }
            }
        }
        if violations > 0 {
            self.metrics.add(names::INVARIANT_VIOLATIONS, violations);
        }

        for (rid, c, at) in newly_ready {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_node_ready(rid, c, at, &mut ctx);
        }

        // Whole-request completion.
        let req = &self.reqs[slot];
        if req.remaining == 0 {
            let rt = self.catalog.request(rtype);
            let rec = RequestRecord {
                id: req.info.id,
                request_type: rtype,
                class: rt.class(),
                arrival: req.info.arrival,
                end: now,
                slo_ms: rt.slo_ms,
                breakdown: Some(self.attribute(slot, node)),
            };
            self.collector.record_request(rec);
            let rid = req.info.id;
            {
                let mut ctx = sched_ctx!(self, now);
                scheduler.on_request_complete(rid, &mut ctx);
            }
            self.maybe_round(now, scheduler);
        }
    }

    /// Decomposes one completed request's end-to-end latency by walking
    /// its critical chain backwards from the last node to finish. The
    /// chain alternates node phases (`ready_at → start → end`, split into
    /// queueing, placement delay, and span) with comm hops
    /// (`ready_at − parent.end`), all measured in whole µs, so
    /// queue + placement + comm + span telescopes *exactly* to
    /// `end − arrival`; each span then splits into ideal execution vs
    /// cap-induced slowdown via the penalty captured at sample time.
    fn attribute(&self, slot: usize, last_node: usize) -> LatencyBreakdown {
        let req = &self.reqs[slot];
        let (mut queue_us, mut place_us, mut comm_us) = (0u64, 0u64, 0u64);
        let (mut exec_ms, mut cap_ms, mut healed_ms) = (0.0f64, 0.0f64, 0.0f64);
        let mut cur = last_node;
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > req.state.len() + 1 {
                debug_assert!(false, "attribution walk cycled");
                break;
            }
            let a = req.attrib[cur];
            let span_ms = a.end.since(a.start).as_millis_f64();
            let ideal_ms = if a.penalty.is_finite() && a.penalty > 0.0 {
                span_ms / a.penalty
            } else {
                span_ms
            };
            exec_ms += ideal_ms;
            cap_ms += span_ms - ideal_ms;
            healed_ms += SimDuration(a.healed_us).as_millis_f64();
            // Failed attempts and outage waits land in the wait; the part
            // the *plan* asked for is placement delay, the rest queueing.
            let wait_us = a.start.since(a.ready_at).as_micros();
            let p_us = a.planned.since(a.ready_at).as_micros().min(wait_us);
            place_us += p_us;
            queue_us += wait_us - p_us;
            match a.crit_parent {
                Some(p) => {
                    comm_us += a.ready_at.since(req.attrib[p].end).as_micros();
                    cur = p;
                }
                None => {
                    // Root: admission queueing back to the arrival.
                    queue_us += a.ready_at.since(req.info.arrival).as_micros();
                    break;
                }
            }
        }
        LatencyBreakdown {
            queue_ms: SimDuration(queue_us).as_millis_f64(),
            placement_ms: SimDuration(place_us).as_millis_f64(),
            comm_ms: SimDuration(comm_us).as_millis_f64(),
            exec_ms,
            cap_ms,
            healed_ms,
        }
    }

    /// Cross-checks conservation invariants over the live state: every
    /// `Running` span is backed by a live grant of the right size on an
    /// up machine, per-machine occupancy sums match the machine's own
    /// accounting, and every reservation ledger's incremental index agrees
    /// with a from-scratch rebuild. One pass over requests + machines —
    /// cheap next to a scheduling round, but still opt-in outside tests.
    fn audit_tick(&mut self, now: SimTime) {
        let mut violations: Vec<String> = Vec::new();
        let mut used: HashMap<u32, ResourceVector> = HashMap::new();
        for req in &self.reqs {
            let rid = req.info.id.0;
            for (node, st) in req.state.iter().enumerate() {
                let NState::Running { occupied, grant, .. } = *st else {
                    continue;
                };
                if req.abandoned {
                    violations.push(format!("request {rid} node {node} Running after abandon"));
                    continue;
                }
                let mid = req.plan.nodes[node].machine;
                let machine = self.cluster.machine(mid);
                if !machine.is_up() {
                    violations
                        .push(format!("request {rid} node {node} Running on down machine {mid:?}"));
                }
                match machine.grant_amount(grant) {
                    None => violations
                        .push(format!("request {rid} node {node}: grant gone on machine {mid:?}")),
                    Some(g) if !rv_close(g, occupied) => violations.push(format!(
                        "request {rid} node {node}: grant {g:?} != occupied {occupied:?}"
                    )),
                    Some(_) => {}
                }
                *used.entry(mid.0).or_insert(ResourceVector::ZERO) += occupied;
            }
        }
        for m in self.cluster.machines() {
            let (_, grants_total, actual_used, _) = m.occupancy();
            if !rv_close(grants_total, actual_used) {
                violations.push(format!(
                    "machine {:?}: grants sum to {grants_total:?} but used is {actual_used:?}",
                    m.id
                ));
            }
            let expect = used.get(&m.id.0).copied().unwrap_or(ResourceVector::ZERO);
            if !rv_close(expect, actual_used) {
                violations.push(format!(
                    "machine {:?}: running spans occupy {expect:?} but used is {actual_used:?}",
                    m.id
                ));
            }
            if let Err(e) = m.ledger.check_consistency() {
                violations.push(format!("machine {:?} ledger: {e}", m.id));
            }
        }
        // Shard-partition consistency: the shard map must remain a strict
        // partition of the cluster (every machine in exactly one shard,
        // member lists ascending and duplicate-free, per-shard capacity
        // aggregates equal to the member sums). The map is immutable after
        // cluster construction, so any drift here means memory corruption
        // or a cluster/map mix-up — exactly what an auditor is for.
        if let Err(e) = self.cluster.shards().check_partition(self.cluster.machines()) {
            violations.push(format!("shard partition: {e}"));
        }
        self.report_violations(now, &violations);
    }

    /// End-of-run cross-checks between the audit trail and the recorded
    /// spans (needs both the auditor and the trail enabled).
    fn audit_end_of_run(&mut self) {
        if !self.audit.is_enabled() {
            return;
        }
        let mut violations: Vec<String> = Vec::new();
        let ds = self.audit.decisions();
        for w in ds.windows(2) {
            if w[0].at_us > w[1].at_us {
                violations.push(format!(
                    "audit trail not time-ordered: {} recorded after {}",
                    w[0].at_us, w[1].at_us
                ));
                break;
            }
        }
        // No span of a request may start before its admission decision.
        let mut first_start: HashMap<u64, u64> = HashMap::new();
        for s in self.collector.spans() {
            let e = first_start.entry(s.request.0).or_insert(u64::MAX);
            *e = (*e).min(s.start.as_micros());
        }
        for d in &ds {
            if d.kind != DecisionKind::Admit {
                continue;
            }
            let Some(r) = d.request else { continue };
            if let Some(&st) = first_start.get(&r) {
                if d.at_us > st {
                    violations.push(format!(
                        "request {r} admitted at {} after its first span start {st}",
                        d.at_us
                    ));
                }
            }
        }
        let last = ds.last().map_or(SimTime::ZERO, |d| SimTime(d.at_us));
        self.report_violations(last, &violations);
    }

    /// Counts violations under the shared metric and captures the first
    /// one as a minimized repro dump (config + seed + what tripped).
    fn report_violations(&mut self, now: SimTime, violations: &[String]) {
        if violations.is_empty() {
            return;
        }
        self.metrics.add(names::INVARIANT_VIOLATIONS, violations.len() as u64);
        if self.invariant_report.is_none() {
            let cfg =
                serde_json::to_string(&self.cfg).unwrap_or_else(|_| format!("{:?}", self.cfg));
            self.invariant_report = Some(format!(
                "first invariant violation at t={now}:\n  {}\nrepro: seed {} with config {cfg}",
                violations.join("\n  "),
                self.cfg.seed,
            ));
        }
    }
}

/// Component-wise approximate equality for the conservation checks: the
/// machine's running accumulator and a fresh per-span sum visit the same
/// amounts in different orders, so bit-equality is too strict.
fn rv_close(a: ResourceVector, b: ResourceVector) -> bool {
    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0)
    }
    close(a.cpu, b.cpu) && close(a.mem, b.mem) && close(a.io, b.io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::warm_profiles;
    use crate::scheme::Scheme;
    use mlp_workload::generate_stream;

    fn run(scheme: Scheme, seed: u64) -> SimOutput {
        let cfg = ExperimentConfig::smoke(scheme).with_seed(seed);
        let catalog = RequestCatalog::paper();
        let root = SimRng::new(cfg.seed);
        let mut arr_rng = root.fork(0);
        let mut sim_rng = root.fork(1);
        let mut warm_rng = root.fork(2);
        let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);
        let mix = cfg.mix.resolve(&catalog);
        let arrivals =
            generate_stream(cfg.pattern, cfg.max_rate, cfg.horizon_s, &mix, &mut arr_rng);
        let mut sched = cfg.scheme.build();
        simulate(&cfg, &catalog, profiles, &arrivals, sched.as_mut(), &mut sim_rng)
    }

    #[test]
    fn smoke_runs_complete_for_every_scheme() {
        for scheme in Scheme::PAPER {
            let out = run(scheme, 42);
            assert!(out.arrived > 100, "{}: only {} arrivals", scheme.label(), out.arrived);
            let finished = out.collector.completed();
            assert!(
                finished + out.unfinished >= out.arrived,
                "{}: lost requests: {finished} + {} < {}",
                scheme.label(),
                out.unfinished,
                out.arrived
            );
            assert!(
                finished as f64 >= 0.9 * out.arrived as f64,
                "{}: only {finished}/{} finished",
                scheme.label(),
                out.arrived
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let a = run(Scheme::VMlp, 7);
        let b = run(Scheme::VMlp, 7);
        assert_eq!(a.collector.completed(), b.collector.completed());
        assert_eq!(
            a.collector.latency_percentile(99.0, None),
            b.collector.latency_percentile(99.0, None)
        );
        assert_eq!(a.collector.spans().len(), b.collector.spans().len());
    }

    #[test]
    fn spans_respect_causality() {
        let out = run(Scheme::VMlp, 3);
        let catalog = RequestCatalog::paper();
        // Group spans per request and check every DAG edge ordering.
        use std::collections::HashMap;
        let mut per_req: HashMap<RequestId, Vec<&Span>> = HashMap::new();
        for s in out.collector.spans() {
            per_req.entry(s.request).or_default().push(s);
        }
        for (_, spans) in per_req {
            let rtype = spans[0].request_type;
            let dag = &catalog.request(rtype).dag;
            let mut end_of: HashMap<usize, SimTime> = HashMap::new();
            let mut start_of: HashMap<usize, SimTime> = HashMap::new();
            for s in &spans {
                end_of.insert(s.dag_node, s.end);
                start_of.insert(s.dag_node, s.start);
            }
            for &(p, c) in dag.edges() {
                if let (Some(&pe), Some(&cs)) = (end_of.get(&p), start_of.get(&c)) {
                    assert!(cs >= pe, "child {c} started {cs} before parent {p} ended {pe}");
                }
            }
        }
    }

    #[test]
    fn machines_never_exceed_capacity() {
        // Reconstruct machine occupancy over time from spans and verify
        // the actual-accounting invariant (occupied ≤ capacity).
        let out = run(Scheme::FairSched, 11); // FairSched over-commits the most
        let cfg = ExperimentConfig::smoke(Scheme::FairSched);
        let mut events: Vec<(SimTime, usize, f64)> = Vec::new(); // (t, machine, cpu delta)
        for s in out.collector.spans() {
            // occupied CPU is not recorded on the span; satisfaction < 1
            // already proves clamping, so here we assert the satisfaction
            // floor instead.
            assert!(s.satisfaction >= MIN_SATISFACTION - 1e-9);
            assert!(s.satisfaction <= 1.0 + 1e-9);
            events.push((s.start, s.machine.0 as usize, 0.0));
        }
        let _ = cfg;
        assert!(!events.is_empty());
    }

    #[test]
    fn vmlp_heals_more_than_baselines() {
        let v = run(Scheme::VMlp, 5);
        let fills = v.metrics.counter(mlp_trace::metrics::names::DELAY_SLOT_FILLS)
            + v.metrics.counter(mlp_trace::metrics::names::RESOURCE_STRETCHES);
        let f = run(Scheme::FairSched, 5);
        let base_fills = f.metrics.counter(mlp_trace::metrics::names::DELAY_SLOT_FILLS);
        assert_eq!(base_fills, 0, "baselines never heal");
        // v-MLP may or may not heal in a smoke run; just ensure counters
        // are consistent (no panic path) and late invocations are tracked.
        let _ = fills;
    }
}
