//! # mlp-engine — trace-driven evaluation engine (Fig 8)
//!
//! Drives the full evaluation workflow of Section IV: profiling traces feed
//! a [`mlp_trace::ProfileStore`]; a workload pattern and request mix feed
//! the arrival generator; the discrete-event [`sim`]ulator executes the
//! chosen scheduling [`scheme`] on a simulated cluster; and the
//! [`runner`] extracts the figures' metrics (QoS-violation rate,
//! utilization timeline, latency distribution, tail latency, throughput).
//!
//! Experiment sweeps fan out across CPU cores via [`parallel`] (std
//! scoped threads with deterministically forked seeds).

pub mod config;
pub mod error;
pub mod experiment;
pub mod live;
pub mod parallel;
pub mod profiling;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scheme;
pub mod shutdown;
pub mod sim;
pub mod sweep;
pub mod traceio;

pub use config::ExperimentConfig;
pub use error::Error;
pub use experiment::Experiment;
pub use registry::{
    default_registry, BuildCtx, ParamValue, RegistryEntry, SchedulerParams, SchedulerRegistry,
    SchemeSpec,
};
pub use runner::ExperimentResult;
pub use scheme::Scheme;
pub use sweep::SweepConfig;
