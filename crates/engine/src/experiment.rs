//! The one way to run an experiment: a validating builder.
//!
//! Historically the engine grew three free functions (`run_experiment`,
//! `run_experiment_with_catalog`, `run_experiment_full`) that were the
//! same pipeline with different amounts of plumbing exposed. This builder
//! collapses them behind a single entry point that validates the config
//! up front and returns a typed [`Error`] instead of panicking:
//!
//! ```
//! use mlp_engine::{Experiment, ExperimentConfig, Scheme};
//!
//! let result = Experiment::from_config(ExperimentConfig::smoke(Scheme::VMlp))
//!     .audit(true)
//!     .run()
//!     .expect("smoke config is valid");
//! assert!(result.completed > 0);
//! ```

use crate::config::ExperimentConfig;
use crate::error::Error;
use crate::profiling::warm_profiles;
use crate::registry::{
    default_registry, ParamValue, SchedulerParams, SchedulerRegistry, SchemeSpec,
};
use crate::runner::{summarize, ExperimentResult};
use crate::sim::{simulate, SimOutput};
use mlp_model::RequestCatalog;
use mlp_sim::SimRng;
use mlp_workload::{
    generate_stream, validate_stream_params, OpenLoopSource, RateSchedule, SliceSource,
};
use std::path::Path;

/// A fully described, not-yet-run experiment.
///
/// Construct with [`from_config`](Experiment::from_config) (or
/// [`from_config_file`](Experiment::from_config_file)), refine with the
/// chainable setters, then call [`run`](Experiment::run) — or
/// [`run_full`](Experiment::run_full) when the raw simulation output
/// (span collector, enriched profiles, audit trail) is needed too.
pub struct Experiment<'a> {
    config: ExperimentConfig,
    catalog: Option<&'a RequestCatalog>,
    registry: Option<&'a SchedulerRegistry>,
    unindexed_dt: bool,
}

impl Experiment<'static> {
    /// Starts a builder from an in-memory config.
    pub fn from_config(config: ExperimentConfig) -> Self {
        Experiment { config, catalog: None, registry: None, unindexed_dt: false }
    }

    /// Starts a builder from a JSON config file (the `vmlp --config=FILE`
    /// format). Missing file, malformed JSON, and missing required fields
    /// come back as distinct [`Error`] variants instead of a panic.
    pub fn from_config_file(path: &Path) -> Result<Self, Error> {
        let json = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
        let config: ExperimentConfig =
            serde_json::from_str(&json).map_err(|e| Error::parse(path, e))?;
        Ok(Experiment::from_config(config))
    }
}

impl<'a> Experiment<'a> {
    /// Uses a caller-supplied request catalog (shared across a sweep)
    /// instead of constructing the paper catalog per run.
    pub fn catalog<'b>(self, catalog: &'b RequestCatalog) -> Experiment<'b>
    where
        'a: 'b,
    {
        Experiment {
            config: self.config,
            catalog: Some(catalog),
            registry: self.registry,
            unindexed_dt: self.unindexed_dt,
        }
    }

    /// Uses a caller-supplied [`SchedulerRegistry`] (typically
    /// [`default_registry`] plus out-of-tree registrations) instead of the
    /// built-in table when resolving the config's scheme spec.
    pub fn registry<'b>(self, registry: &'b SchedulerRegistry) -> Experiment<'b>
    where
        'a: 'b,
    {
        Experiment {
            config: self.config,
            catalog: self.catalog,
            registry: Some(registry),
            unindexed_dt: self.unindexed_dt,
        }
    }

    /// Replaces the scheme under test with `name` + typed `params`.
    pub fn scheme(mut self, name: &str, params: SchedulerParams) -> Self {
        self.config.scheme = SchemeSpec::with_params(name, params);
        self
    }

    /// Replaces the scheme under test from a spec string like
    /// `"vmlp:healing=off"`. The name is resolved (and the params are
    /// validated) against the experiment's registry immediately, so typos
    /// fail here rather than mid-sweep.
    pub fn scheme_spec(mut self, spec: &str) -> Result<Self, Error> {
        let spec = SchemeSpec::parse(spec).map_err(Error::InvalidConfig)?;
        self.registry.unwrap_or_else(|| default_registry()).validate_spec(&spec)?;
        self.config.scheme = spec;
        Ok(self)
    }

    /// Testing hook: forces every Δt percentile estimate through the
    /// sort-based reference path instead of the banded index + memo.
    /// Equivalence tests run the same config both ways and assert the
    /// decision-audit trails (and results) are identical.
    pub fn unindexed_dt(mut self, force: bool) -> Self {
        self.unindexed_dt = force;
        self
    }

    /// Testing hook: keeps the v-MLP waiting queue on the sort-based
    /// reference path instead of the incremental reorder index. No-op for
    /// the non-v-MLP schemes (they have no reorder queue). Equivalence
    /// tests run the same config both ways and assert the decision-audit
    /// trails (and results) are identical.
    pub fn unindexed_reorder(mut self, force: bool) -> Self {
        if self.config.scheme.name() == "vmlp" {
            let params = self
                .config
                .scheme
                .params()
                .clone()
                .with("unindexed_reorder", ParamValue::Bool(force));
            self.config.scheme = SchemeSpec::with_params("vmlp", params);
        }
        self
    }

    /// Enables or disables the decision-audit trail.
    pub fn audit(mut self, on: bool) -> Self {
        self.config.audit = on;
        self
    }

    /// Enables or disables the per-tick invariant auditor.
    pub fn auditor(mut self, on: bool) -> Self {
        self.config.auditor = on;
        self
    }

    /// Replaces the config's scheduling shards setting.
    pub fn shards(mut self, k: usize, policy: mlp_cluster::ShardPolicy) -> Self {
        self.config = self.config.with_shards(k, policy);
        self
    }

    /// The config as currently built.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Checks that the config describes a runnable experiment. Called by
    /// [`run`](Experiment::run); public so CLIs can fail fast before
    /// expensive setup.
    pub fn validate(&self) -> Result<(), Error> {
        let c = &self.config;
        let bad = |why: String| Err(Error::InvalidConfig(why));
        // The scheme name must resolve in the registry and its params must
        // build — unknown names and ill-typed params fail here with the
        // registered-name list, before any expensive setup.
        self.registry.unwrap_or_else(|| default_registry()).validate_spec(&c.scheme)?;
        if c.machines == 0 {
            return bad("machines must be >= 1".into());
        }
        if !(c.max_rate.is_finite() && c.max_rate > 0.0) {
            return bad(format!("max_rate must be positive and finite, got {}", c.max_rate));
        }
        if !(c.horizon_s.is_finite() && c.horizon_s > 0.0) {
            return bad(format!("horizon_s must be positive and finite, got {}", c.horizon_s));
        }
        if !(c.sample_period_s.is_finite() && c.sample_period_s > 0.0) {
            return bad(format!(
                "sample_period_s must be positive and finite, got {}",
                c.sample_period_s
            ));
        }
        if !(c.drain_factor.is_finite() && c.drain_factor >= 1.0) {
            return bad(format!("drain_factor must be >= 1, got {}", c.drain_factor));
        }
        if !c.machine_capacity.fits_within(&c.machine_capacity)
            || c.machine_capacity.has_negative()
            || c.machine_capacity == mlp_model::ResourceVector::ZERO
        {
            return bad(format!("machine_capacity must be positive, got {:?}", c.machine_capacity));
        }
        if let crate::config::MixSpec::HighRatio(r) = c.mix {
            if !(0.0..=1.0).contains(&r) {
                return bad(format!("HighRatio mix ratio must be in [0, 1], got {r}"));
            }
        }
        if let Some((count, scale)) = c.small_tier {
            if count > c.machines {
                return bad(format!(
                    "small_tier count {count} exceeds machine count {}",
                    c.machines
                ));
            }
            if !(scale.is_finite() && scale > 0.0) {
                return bad(format!("small_tier scale must be positive, got {scale}"));
            }
        }
        // Shards are clamped, not rejected, at build time — but a config
        // explicitly asking for more shards than machines is a mistake
        // worth telling the user about.
        if c.shards > c.machines {
            return bad(format!(
                "shards ({}) exceeds machines ({}); one shard needs at least one machine",
                c.shards, c.machines
            ));
        }
        if !(c.ledger_retention_s.is_finite() && c.ledger_retention_s > 0.0) {
            return bad(format!(
                "ledger_retention_s must be positive and finite, got {}",
                c.ledger_retention_s
            ));
        }
        if c.max_requests == Some(0) {
            return bad("max_requests must be >= 1 when set".into());
        }
        if let Err(why) = c.overload.validate() {
            return bad(why);
        }
        Ok(())
    }

    /// Runs the experiment end to end: validation → profiling warm-up →
    /// arrival generation → simulation → metric extraction.
    ///
    /// Fully deterministic in `config.seed`; the arrival stream depends
    /// only on `(seed, pattern, rate, mix)`, so different schemes with the
    /// same seed face the identical offered load.
    pub fn run(self) -> Result<ExperimentResult, Error> {
        self.run_full().map(|(result, _)| result)
    }

    /// Like [`run`](Experiment::run) but also returns the raw simulation
    /// output (span collector, enriched profiles, utilization series,
    /// audit trail) for trace export and deep-dive analysis.
    pub fn run_full(self) -> Result<(ExperimentResult, SimOutput), Error> {
        self.validate()?;
        let registry = self.registry.unwrap_or_else(|| default_registry());
        let config = self.config;
        let owned_catalog;
        let catalog = match self.catalog {
            Some(c) => c,
            None => {
                owned_catalog = RequestCatalog::paper();
                &owned_catalog
            }
        };

        let root = SimRng::new(config.seed);
        let mut arrival_rng = root.fork(0);
        let mut sim_rng = root.fork(1);
        let mut warm_rng = root.fork(2);

        let mut profiles = warm_profiles(catalog, config.warmup_cases, &mut warm_rng);
        // Bound the per-service history before the run when asked: the
        // engine records one case per completed span, and Δt estimation
        // cost is linear in the retained window.
        profiles.set_retention(config.profile_retention);
        if self.unindexed_dt {
            profiles.set_unindexed(true);
        }
        let mix = config.mix.resolve(catalog);
        // The typed workload-parameter check needs the resolved mix, so it
        // runs here rather than in `validate()`; it still fires before any
        // arrival is generated.
        validate_stream_params(config.max_rate, &mix)
            .map_err(|e| Error::InvalidConfig(format!("workload: {e}")))?;
        let mut scheduler = registry.build(&config.scheme, config.seed)?;

        // Three arrival paths. The first two share the identical RNG draw
        // sequence: the dense trace replayed through a SliceSource (figure
        // runs, byte-identical to the historical slice engine), or a lazy
        // OpenLoopSource when a request cap asks for bounded-memory
        // open-loop traffic. The third drives a flash-crowd rate schedule
        // when the overload config asks for a surge.
        let surging = config.overload.enabled && config.overload.surge_multiplier > 1.0;
        let out = if surging {
            let o = config.overload;
            let schedule = RateSchedule::flash_crowd(
                config.pattern,
                config.max_rate,
                o.surge_start_s,
                o.surge_duration_s,
                o.surge_multiplier,
                o.surge_ramp_s,
            )
            .map_err(|e| Error::InvalidConfig(format!("overload schedule: {e}")))?;
            let mut source =
                OpenLoopSource::scheduled(schedule, config.horizon_s, mix, arrival_rng)
                    .map_err(|e| Error::InvalidConfig(format!("overload source: {e}")))?;
            if let Some(cap) = config.max_requests {
                source = source.with_max_requests(cap);
            }
            simulate(&config, catalog, profiles, &mut source, scheduler.as_mut(), &mut sim_rng)
        } else {
            match config.max_requests {
                None => {
                    let arrivals = generate_stream(
                        config.pattern,
                        config.max_rate,
                        config.horizon_s,
                        &mix,
                        &mut arrival_rng,
                    );
                    let mut source = SliceSource::new(&arrivals);
                    simulate(
                        &config,
                        catalog,
                        profiles,
                        &mut source,
                        scheduler.as_mut(),
                        &mut sim_rng,
                    )
                }
                Some(cap) => {
                    let mut source = OpenLoopSource::poisson(
                        config.pattern,
                        config.max_rate,
                        config.horizon_s,
                        mix,
                        arrival_rng,
                    )
                    .with_max_requests(cap);
                    simulate(
                        &config,
                        catalog,
                        profiles,
                        &mut source,
                        scheduler.as_mut(),
                        &mut sim_rng,
                    )
                }
            }
        };
        let result = summarize(&config, catalog, &out);
        Ok((result, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MixSpec;
    use crate::scheme::Scheme;

    #[test]
    fn builder_runs_and_matches_direct_pipeline() {
        let cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(11);
        let catalog = RequestCatalog::paper();
        let a = Experiment::from_config(cfg.clone()).catalog(&catalog).run().unwrap();
        let b = Experiment::from_config(cfg).run().unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
    }

    #[test]
    fn setters_override_config_flags() {
        let e = Experiment::from_config(ExperimentConfig::smoke(Scheme::VMlp))
            .audit(true)
            .auditor(false)
            .shards(2, mlp_cluster::ShardPolicy::CapacityBalanced);
        assert!(e.config().audit);
        assert!(!e.config().auditor);
        assert_eq!(e.config().shards, 2);
        let (r, out) = e.run_full().unwrap();
        assert!(r.completed > 0);
        assert!(!out.audit.decisions().is_empty(), "audit trail was requested");
    }

    #[test]
    fn invalid_configs_are_rejected_before_running() {
        let base = ExperimentConfig::smoke(Scheme::VMlp);
        let cases: Vec<(ExperimentConfig, &str)> = vec![
            (ExperimentConfig { machines: 0, ..base.clone() }, "machines"),
            (ExperimentConfig { max_rate: 0.0, ..base.clone() }, "max_rate"),
            (ExperimentConfig { max_rate: f64::NAN, ..base.clone() }, "max_rate"),
            (ExperimentConfig { horizon_s: -1.0, ..base.clone() }, "horizon_s"),
            (ExperimentConfig { sample_period_s: 0.0, ..base.clone() }, "sample_period_s"),
            (ExperimentConfig { drain_factor: 0.5, ..base.clone() }, "drain_factor"),
            (ExperimentConfig { mix: MixSpec::HighRatio(1.5), ..base.clone() }, "ratio"),
            (base.clone().with_small_tier(999, 0.5), "small_tier"),
            (base.clone().with_shards(99, mlp_cluster::ShardPolicy::RoundRobin), "shards"),
            (
                base.clone().with_overload(mlp_sched::OverloadConfig {
                    admission_slack: 0.5,
                    ..mlp_sched::OverloadConfig::flash_crowd(3.0, 1.0, 2.0)
                }),
                "admission_slack",
            ),
            (
                base.clone().with_overload(mlp_sched::OverloadConfig {
                    surge_multiplier: f64::NAN,
                    ..mlp_sched::OverloadConfig::flash_crowd(3.0, 1.0, 2.0)
                }),
                "surge_multiplier",
            ),
        ];
        for (cfg, needle) in cases {
            let err = Experiment::from_config(cfg).run().unwrap_err();
            let Error::InvalidConfig(why) = &err else {
                panic!("expected InvalidConfig, got {err:?}")
            };
            assert!(why.contains(needle), "error {why:?} should mention {needle}");
        }
    }

    #[test]
    fn config_file_roundtrip_and_failure_modes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vmlp-exp-cfg-{}.json", std::process::id()));
        let cfg = ExperimentConfig::smoke(Scheme::CurSched).with_seed(3);
        std::fs::write(&path, serde_json::to_string_pretty(&cfg).unwrap()).unwrap();
        let loaded = Experiment::from_config_file(&path).unwrap();
        assert_eq!(*loaded.config(), cfg);
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(Experiment::from_config_file(&path), Err(Error::Parse { .. })));
        std::fs::remove_file(&path).ok();
        assert!(matches!(Experiment::from_config_file(&path), Err(Error::Io { .. })));
    }
}
