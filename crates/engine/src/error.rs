//! Typed errors for the experiment-facing API.
//!
//! Config and trace loading used to surface failures as panics or bare
//! `io::Error` strings; the [`Experiment`](crate::experiment::Experiment)
//! builder returns this enum instead so embedders can match on what went
//! wrong and the `vmlp` binary can map failures to distinct exit codes.
//! Hand-rolled (`thiserror`-style) to stay dependency-light.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Everything that can go wrong between "here is a config" and "the
/// simulation ran".
#[derive(Debug)]
pub enum Error {
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A config or trace file held malformed or structurally wrong JSON.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// What the parser rejected (field path + reason).
        detail: String,
    },
    /// A persisted artifact was written under an incompatible schema
    /// version.
    UnsupportedVersion {
        /// The file involved.
        path: PathBuf,
        /// The version the file declares.
        found: u32,
        /// The version this build understands.
        expected: u32,
    },
    /// The configuration cannot describe a runnable experiment (zero
    /// machines, non-positive rate, out-of-range mix ratio, …).
    InvalidConfig(String),
}

impl Error {
    /// Convenience constructor tying an `io::Error` to the file involved.
    pub fn io(path: &Path, source: io::Error) -> Self {
        Error::Io { path: path.to_path_buf(), source }
    }

    /// Convenience constructor for parse failures.
    pub fn parse(path: &Path, detail: impl fmt::Display) -> Self {
        Error::Parse { path: path.to_path_buf(), detail: detail.to_string() }
    }

    /// Process exit code for CLI reporting, sysexits-flavoured: distinct
    /// codes let scripts tell "fix your config" from "fix your filesystem".
    /// 1 stays reserved for runtime failures, 2 for usage errors.
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::InvalidConfig(_) => 2,
            Error::Parse { .. } | Error::UnsupportedVersion { .. } => 3,
            Error::Io { .. } => 4,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Error::Parse { path, detail } => {
                write!(f, "{}: invalid contents: {detail}", path.display())
            }
            Error::UnsupportedVersion { path, found, expected } => write!(
                f,
                "{}: unsupported format version {found} (this build reads version {expected})",
                path.display()
            ),
            Error::InvalidConfig(why) => write!(f, "invalid experiment config: {why}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path_and_cause() {
        let e = Error::io(Path::new("/tmp/x.json"), io::Error::from(io::ErrorKind::NotFound));
        assert!(e.to_string().contains("/tmp/x.json"));
        let e = Error::parse(Path::new("cfg.json"), "ExperimentConfig.machines: absent");
        assert!(e.to_string().contains("machines"));
        let e = Error::UnsupportedVersion { path: PathBuf::from("t.json"), found: 9, expected: 2 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let io_err = Error::io(Path::new("x"), io::Error::from(io::ErrorKind::NotFound));
        let parse = Error::parse(Path::new("x"), "bad");
        let cfg = Error::InvalidConfig("machines = 0".into());
        let codes = [cfg.exit_code(), parse.exit_code(), io_err.exit_code()];
        assert_eq!(codes, [2, 3, 4]);
    }

    #[test]
    fn io_variant_exposes_source() {
        use std::error::Error as _;
        let e = Error::io(Path::new("x"), io::Error::from(io::ErrorKind::PermissionDenied));
        assert!(e.source().is_some());
        assert!(Error::InvalidConfig("x".into()).source().is_none());
    }
}
