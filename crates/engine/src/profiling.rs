//! Offline profiling — the "workload characterization" stage of Fig 8.
//!
//! Before an evaluation run, the paper collects execution traces of the
//! benchmarks on an instrumented cluster (Zipkin for times, dockerstats
//! for usage) and feeds them to the simulator. We reproduce that stage by
//! exercising every request type's DAG against the execution model under
//! near-abundant resources and recording the observed cases into a
//! [`ProfileStore`].

use mlp_model::RequestCatalog;
use mlp_sim::SimRng;
use mlp_trace::{ExecutionCase, ProfileStore};
use rand::Rng;

/// Records `cases_per_type` executions of every request type's every node.
///
/// Resources are near-abundant (satisfaction sampled in `[0.9, 1.0]`) as
/// in the paper's characterization runs, so the profile reflects the
/// services' *inner* variability; the contention the scheduler will face
/// at run time is exactly what the profile cannot tell it.
pub fn warm_profiles(
    catalog: &RequestCatalog,
    cases_per_type: usize,
    rng: &mut SimRng,
) -> ProfileStore {
    let mut store = ProfileStore::new();
    for rt in &catalog.requests {
        for _ in 0..cases_per_type {
            for node in rt.dag.nodes() {
                let svc = catalog.services.get(node.service);
                let f: f64 = rng.rng().gen_range(0.9..=1.0);
                let exec_ms = svc.sample_exec_ms_capped(node.work_factor, f, rng.rng());
                let usage_scale: f64 = rng.rng().gen_range(0.95..=1.05);
                store.record(
                    node.service,
                    ExecutionCase {
                        usage: (svc.demand * usage_scale).min(&svc.demand),
                        machine_load: rng.rng().gen_range(0.1..0.6),
                        exec_ms,
                    },
                );
            }
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_invoked_services() {
        let cat = RequestCatalog::paper();
        let mut rng = SimRng::new(1);
        let store = warm_profiles(&cat, 10, &mut rng);
        for rt in &cat.requests {
            for node in rt.dag.nodes() {
                assert!(
                    store.case_count(node.service) >= 10,
                    "service {:?} unprofiled",
                    node.service
                );
            }
        }
    }

    #[test]
    fn profiled_means_are_near_nominal() {
        let cat = RequestCatalog::paper();
        let mut rng = SimRng::new(2);
        let store = warm_profiles(&cat, 200, &mut rng);
        // nginx (work factor 1.0 everywhere): mean within 20% of base.
        let nginx = mlp_model::benchmarks::sn::NGINX;
        let base = cat.services.get(nginx).base_ms;
        let mean = store.mean_exec_ms(nginx).unwrap();
        assert!((mean - base).abs() / base < 0.2, "mean {mean} vs base {base}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cat = RequestCatalog::paper();
        let a = warm_profiles(&cat, 5, &mut SimRng::new(3));
        let b = warm_profiles(&cat, 5, &mut SimRng::new(3));
        let svc = mlp_model::benchmarks::tt::ORDER;
        assert_eq!(a.mean_exec_ms(svc), b.mean_exec_ms(svc));
    }
}
