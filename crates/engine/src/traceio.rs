//! Trace persistence — the storage layer of the Fig 8 workflow.
//!
//! The paper's evaluation is *trace-driven*: profiling runs produce
//! historical traces which are stored and later fed into the simulator.
//! This module persists the two artifacts that cross that boundary —
//! profile stores (the `s_i` histories) and experiment results — as JSON,
//! so sweeps can be profiled once and re-simulated many times, and
//! experiment outputs can be archived and diffed across code versions.
//!
//! All functions return the typed [`Error`] so callers can distinguish a
//! missing file from corrupt contents from a version skew.

use crate::config::ExperimentConfig;
use crate::error::Error;
use crate::runner::ExperimentResult;
use mlp_trace::ProfileStore;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Schema version embedded in every artifact; bumped on breaking change.
/// v2: `ExperimentResult` gained `mean_breakdown` / `invariant_violations`
/// (results saved by v1 code cannot satisfy the new required counter).
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// A persisted profiling trace: the catalog-independent `s_i` histories
/// plus provenance.
#[derive(Debug, Serialize, Deserialize)]
pub struct ProfileTrace {
    /// Format version.
    pub version: u32,
    /// Seed the profiling pass ran with.
    pub seed: u64,
    /// Cases recorded per request type.
    pub cases_per_type: usize,
    /// The store itself.
    pub profiles: ProfileStore,
}

/// A persisted experiment: config + result, self-describing.
#[derive(Debug, Serialize, Deserialize)]
pub struct ExperimentTrace {
    /// Format version.
    pub version: u32,
    /// The configuration that produced the result.
    pub config: ExperimentConfig,
    /// The figure-ready metrics.
    pub result: ExperimentResult,
}

/// Saves a profile store to `path` as pretty JSON.
pub fn save_profiles(
    path: &Path,
    profiles: &ProfileStore,
    seed: u64,
    cases_per_type: usize,
) -> Result<(), Error> {
    let trace = ProfileTrace {
        version: TRACE_FORMAT_VERSION,
        seed,
        cases_per_type,
        profiles: profiles.clone(),
    };
    let json = serde_json::to_string_pretty(&trace).map_err(|e| Error::parse(path, e))?;
    fs::write(path, json).map_err(|e| Error::io(path, e))
}

/// Loads a profile store, rejecting unknown format versions.
pub fn load_profiles(path: &Path) -> Result<ProfileTrace, Error> {
    let json = fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let trace: ProfileTrace = serde_json::from_str(&json).map_err(|e| Error::parse(path, e))?;
    if trace.version != TRACE_FORMAT_VERSION {
        return Err(Error::UnsupportedVersion {
            path: path.to_path_buf(),
            found: trace.version,
            expected: TRACE_FORMAT_VERSION,
        });
    }
    Ok(trace)
}

/// Saves an experiment result.
pub fn save_experiment(path: &Path, result: &ExperimentResult) -> Result<(), Error> {
    let trace = ExperimentTrace {
        version: TRACE_FORMAT_VERSION,
        config: result.config.clone(),
        result: result.clone(),
    };
    let json = serde_json::to_string_pretty(&trace).map_err(|e| Error::parse(path, e))?;
    fs::write(path, json).map_err(|e| Error::io(path, e))
}

/// Loads an experiment result.
pub fn load_experiment(path: &Path) -> Result<ExperimentTrace, Error> {
    let json = fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
    let trace: ExperimentTrace = serde_json::from_str(&json).map_err(|e| Error::parse(path, e))?;
    if trace.version != TRACE_FORMAT_VERSION {
        return Err(Error::UnsupportedVersion {
            path: path.to_path_buf(),
            found: trace.version,
            expected: TRACE_FORMAT_VERSION,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::profiling::warm_profiles;
    use crate::scheme::Scheme;
    use mlp_model::{benchmarks::sn, RequestCatalog};
    use mlp_sim::SimRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vmlp-traceio-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn profile_roundtrip_preserves_histories() {
        let catalog = RequestCatalog::paper();
        let profiles = warm_profiles(&catalog, 20, &mut SimRng::new(5));
        let path = tmp("profiles.json");
        save_profiles(&path, &profiles, 5, 20).unwrap();
        let loaded = load_profiles(&path).unwrap();
        fs::remove_file(&path).ok();

        assert_eq!(loaded.seed, 5);
        assert_eq!(loaded.cases_per_type, 20);
        assert_eq!(
            loaded.profiles.case_count(sn::COMPOSE_POST),
            profiles.case_count(sn::COMPOSE_POST)
        );
        assert_eq!(
            loaded.profiles.mean_exec_ms(sn::COMPOSE_POST),
            profiles.mean_exec_ms(sn::COMPOSE_POST)
        );
    }

    #[test]
    fn experiment_roundtrip() {
        let cfg = ExperimentConfig::smoke(Scheme::FairSched).with_seed(8);
        let result = Experiment::from_config(cfg.clone()).run().unwrap();
        let path = tmp("experiment.json");
        save_experiment(&path, &result).unwrap();
        let loaded = load_experiment(&path).unwrap();
        fs::remove_file(&path).ok();

        assert_eq!(loaded.config, cfg);
        assert_eq!(loaded.result.completed, result.completed);
        assert_eq!(loaded.result.latency_ms, result.latency_ms);
    }

    #[test]
    fn version_mismatch_rejected() {
        let path = tmp("bad-version.json");
        fs::write(
            &path,
            r#"{"version": 99, "seed": 0, "cases_per_type": 0, "profiles": {"histories": {}, "retention": 0}}"#,
        )
        .unwrap();
        let err = load_profiles(&path).unwrap_err();
        fs::remove_file(&path).ok();
        let Error::UnsupportedVersion { found, expected, .. } = err else {
            panic!("expected UnsupportedVersion, got {err:?}")
        };
        assert_eq!(found, 99);
        assert_eq!(expected, TRACE_FORMAT_VERSION);
    }

    #[test]
    fn corrupt_json_is_a_parse_error() {
        let path = tmp("corrupt.json");
        fs::write(&path, "{ not json").unwrap();
        let err = load_profiles(&path).unwrap_err();
        fs::remove_file(&path).ok();
        assert!(matches!(err, Error::Parse { .. }), "got {err:?}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_experiment(Path::new("/nonexistent/vmlp/run.json")).unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "got {err:?}");
    }
}
