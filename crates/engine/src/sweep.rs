//! Sweep-config files: a named list of scheme specs.
//!
//! Figure binaries used to hardcode their scheme arrays; a sweep config
//! moves that list into a small JSON file so a new contender (or an
//! ablation) joins a figure without touching bench source:
//!
//! ```json
//! {
//!   "schemes": [
//!     "fairsched",
//!     "vmlp:healing=off",
//!     { "name": "searchsched", "params": { "iters": 24 } }
//!   ]
//! }
//! ```
//!
//! Committed defaults live in `sweeps/` at the repo root and reproduce
//! the historically hardcoded lists exactly; bins accept `--sweep=FILE`
//! to override.

use crate::error::Error;
use crate::registry::{default_registry, SchemeSpec};
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// An ordered list of scheme specs to sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The schemes, in sweep (and figure-column) order.
    pub schemes: Vec<SchemeSpec>,
}

impl SweepConfig {
    /// Builds a sweep from already-parsed specs.
    pub fn new(schemes: Vec<SchemeSpec>) -> Self {
        SweepConfig { schemes }
    }

    /// Parses the JSON document format (see the module docs).
    pub fn from_json(json: &str) -> Result<Self, Error> {
        serde_json::from_str(json).map_err(|e| Error::InvalidConfig(format!("sweep config: {e}")))
    }

    /// Loads and parses a sweep file. Missing file → [`Error::Io`];
    /// malformed JSON or specs → [`Error::InvalidConfig`].
    pub fn load(path: &Path) -> Result<Self, Error> {
        let json = std::fs::read_to_string(path).map_err(|e| Error::io(path, e))?;
        Self::from_json(&json).map_err(|e| Error::InvalidConfig(format!("{}: {e}", path.display())))
    }

    /// Validates every spec against the default registry (names resolve,
    /// params build). Call before a long sweep to fail fast.
    pub fn validate(&self) -> Result<(), Error> {
        if self.schemes.is_empty() {
            return Err(Error::InvalidConfig("sweep config lists no schemes".to_string()));
        }
        for spec in &self.schemes {
            default_registry().validate_spec(spec)?;
        }
        Ok(())
    }

    /// Display labels for the swept schemes, in order.
    pub fn labels(&self) -> Vec<String> {
        self.schemes.iter().map(|s| s.display_name()).collect()
    }
}

impl Serialize for SweepConfig {
    fn to_value(&self) -> Value {
        Value::Object(vec![("schemes".to_string(), self.schemes.to_value())])
    }
}

impl Deserialize for SweepConfig {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let schemes = match v.get("schemes") {
            Some(list) => Vec::<SchemeSpec>::from_value(list)
                .map_err(|e| e.in_context("SweepConfig.schemes"))?,
            None => return Err(serde::Error::custom("SweepConfig: missing `schemes` list")),
        };
        Ok(SweepConfig { schemes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_spec_forms() {
        let sweep = SweepConfig::from_json(
            r#"{"schemes": [
                "fairsched",
                "vmlp:healing=off",
                {"name": "searchsched", "params": {"iters": 24}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(sweep.schemes.len(), 3);
        assert_eq!(sweep.schemes[0], SchemeSpec::named("fairsched"));
        assert_eq!(sweep.schemes[1], SchemeSpec::parse("vmlp:healing=off").unwrap());
        assert_eq!(sweep.schemes[2], SchemeSpec::parse("searchsched:iters=24").unwrap());
        sweep.validate().unwrap();
        assert_eq!(sweep.labels(), ["FairSched", "v-MLP[healing=off]", "SearchSched[iters=24]"]);
    }

    #[test]
    fn serde_round_trip() {
        let sweep = SweepConfig::new(vec![
            SchemeSpec::named("vmlp"),
            SchemeSpec::parse("searchsched:window=4").unwrap(),
        ]);
        let js = serde_json::to_string(&sweep).unwrap();
        assert_eq!(SweepConfig::from_json(&js).unwrap(), sweep);
    }

    #[test]
    fn bad_documents_are_typed_errors() {
        for doc in ["{}", "[]", "{\"schemes\": 4}", "not json"] {
            let err = SweepConfig::from_json(doc).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{doc} should be InvalidConfig");
        }
        let unknown = SweepConfig::from_json(r#"{"schemes": ["nope"]}"#).unwrap();
        let err = unknown.validate().unwrap_err();
        assert!(err.to_string().contains("registered schemes"));
        let empty = SweepConfig::new(vec![]);
        assert!(empty.validate().is_err());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = SweepConfig::load(Path::new("/nonexistent/sweep.json")).unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
    }
}
