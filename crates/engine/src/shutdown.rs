//! Process-wide graceful-shutdown flag.
//!
//! Long-running binaries (`vmlp serve`, the soak/zoo benches) install the
//! SIGINT/SIGTERM handler once at startup; the handler's only action is an
//! atomic store into [`REQUESTED`], which is async-signal-safe. Consumers
//! poll [`requested`] at natural checkpoints — the kernel's sampling tick,
//! a bench's sweep-point boundary — and wind down cleanly: drain in-flight
//! work, flush partial BENCH results, exit. A second ctrl-c therefore
//! still hard-kills the process the usual way if the drain itself hangs
//! (the handler is installed without `SA_RESETHAND`, but the drain paths
//! are bounded, so this has never been needed).
//!
//! The flag is process-global and latching: once set it stays set, which
//! is the right semantics for "stop everything and report what you have".

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown has been requested (signal received or
/// [`request`] called programmatically).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Programmatic shutdown request (tests, embedding).
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Resets the flag. Only for tests — real shutdowns are latching.
pub fn reset_for_test() {
    REQUESTED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // The only async-signal-safe thing worth doing: set the flag.
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs the SIGINT/SIGTERM handler. Idempotent; call once from main.
///
/// Uses raw `signal(2)` through the libc that std already links, keeping
/// the workspace dependency-free. On non-unix targets this is a no-op and
/// shutdown remains available programmatically via [`request`].
pub fn install_signal_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_latches_and_resets() {
        reset_for_test();
        assert!(!requested());
        request();
        assert!(requested());
        assert!(requested(), "latching");
        reset_for_test();
        assert!(!requested());
    }
}
