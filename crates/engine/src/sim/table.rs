//! Generation-indexed request slab: the engine's bounded working set.
//!
//! The historical engine kept three dense vectors sized by *total*
//! arrivals (`reqs`, `infos`, `slot_of`), so memory grew with the length
//! of the run even though almost every request was long finished. The
//! [`RequestTable`] replaces them with a slab keyed by raw [`RequestId`]:
//! entries are inserted at admission, looked up by id while in flight, and
//! reclaimed as soon as the request completes or is abandoned and its
//! record has been flushed. Occupancy therefore tracks *in-flight*
//! requests — the [`peak`](RequestTable::peak) high-water mark is exported
//! as the `request_table_peak` gauge, and soak runs assert it plateaus
//! while arrivals grow into the millions.

use super::RunReq;
use std::collections::HashMap;

/// Slab of live (admitted, not yet reclaimed) requests.
pub(super) struct RequestTable {
    /// Slot storage; `None` slots are free and listed in `free`.
    slots: Vec<Option<RunReq>>,
    /// Indices of free slots, reused LIFO.
    free: Vec<usize>,
    /// Raw request id → slot index.
    index: HashMap<u64, usize>,
    /// Live entries (== `index.len()`).
    live: usize,
    /// High-water mark of `live`.
    peak: usize,
    /// Requests ever admitted; also assigns each entry's `admit_seq`
    /// (iteration in admission order must survive slot reuse — slot
    /// indices alone no longer encode it).
    admitted: u64,
}

impl RequestTable {
    pub(super) fn new() -> Self {
        RequestTable {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            live: 0,
            peak: 0,
            admitted: 0,
        }
    }

    /// Inserts a newly admitted request, stamping its `admit_seq`.
    /// Panics if the id is already live (a request admitted twice).
    pub(super) fn insert(&mut self, id: u64, mut req: RunReq) {
        assert!(!self.index.contains_key(&id), "request {id} admitted twice");
        req.admit_seq = self.admitted;
        self.admitted += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(req);
                s
            }
            None => {
                self.slots.push(Some(req));
                self.slots.len() - 1
            }
        };
        self.index.insert(id, slot);
        self.live += 1;
        self.peak = self.peak.max(self.live);
    }

    pub(super) fn get(&self, id: u64) -> Option<&RunReq> {
        self.index.get(&id).and_then(|&s| self.slots[s].as_ref())
    }

    pub(super) fn get_mut(&mut self, id: u64) -> Option<&mut RunReq> {
        match self.index.get(&id) {
            Some(&s) => self.slots[s].as_mut(),
            None => None,
        }
    }

    /// Reclaims a finished entry, freeing its slot for reuse. Unknown ids
    /// are a no-op (a request can be queued for reclamation only once, but
    /// defensive callers may retry).
    pub(super) fn remove(&mut self, id: u64) -> Option<RunReq> {
        let slot = self.index.remove(&id)?;
        let req = self.slots[slot].take();
        debug_assert!(req.is_some(), "index pointed at an empty slot");
        self.free.push(slot);
        self.live -= 1;
        req
    }

    /// Live entries right now.
    pub(super) fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live entries over the run.
    pub(super) fn peak(&self) -> usize {
        self.peak
    }

    /// Requests ever admitted.
    pub(super) fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Ids of live entries, sorted by admission order. The crash handler
    /// and the invariant auditor iterate in this order so their scheduler
    /// notifications, event scheduling, and violation reports stay
    /// deterministic (and identical to the historical dense-vector scans)
    /// regardless of slot reuse or hash-map iteration order.
    pub(super) fn live_ids_in_admission_order(&self) -> Vec<u64> {
        let mut ids: Vec<(u64, u64)> = self
            .index
            .iter()
            .filter_map(|(&id, &s)| self.slots[s].as_ref().map(|r| (r.admit_seq, id)))
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|(_, id)| id).collect()
    }
}
