//! The clock abstraction: what "next" means is the only difference
//! between a simulator and a server.
//!
//! The kernel (event application, admission rounds, lifecycle, auditing)
//! is mode-agnostic: it consumes a stream of [`Step`]s — arrivals and due
//! events — and schedules future events back through the same interface.
//! *Where* those steps come from is the [`Driver`]'s business:
//!
//! * [`SimDriver`] — the historical virtual clock. Events sit in a
//!   deterministic priority queue, arrivals are pulled lazily from an
//!   [`ArrivalSource`] and interleaved by timestamp (the arrival wins
//!   ties, reproducing the dense engine's ordering exactly), and time
//!   jumps discontinuously from one timestamp to the next. Fixed-seed
//!   runs through this driver are byte-identical to the pre-split
//!   engine: the interleave logic moved here verbatim, and pulling the
//!   *next* arrival before (rather than after) the kernel processes the
//!   current one is unobservable because the source owns its own RNG.
//!
//! * [`LiveDriver`] — a monotonic wall-clock tick loop. `SimTime` is
//!   reinterpreted as "microseconds since the server epoch"; events the
//!   kernel schedules become timer expirations that fire when the wall
//!   clock catches up, and arrivals are real submissions received over a
//!   channel from the serve front door. Nothing here is deterministic —
//!   live mode gates on the invariant auditor instead of byte-identity.

use super::Event;
use crate::live::Submission;
use mlp_sim::{EventQueue, SimTime};
use mlp_workload::{Arrival, ArrivalSource};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One unit of kernel work, as decided by the driver.
pub(crate) enum Step {
    /// A request arrival. The second field is the live submission token
    /// (`None` in sim mode): the kernel maps it to the request id it is
    /// about to assign so completion outcomes can find their way back to
    /// the waiting connection.
    Arrival(Arrival, Option<u64>),
    /// A scheduled event came due at its fire time.
    Event(SimTime, Event),
    /// Live mode only: the poll window elapsed with nothing due. Gives
    /// the kernel a chance to observe the shutdown flag between waits.
    Idle,
    /// The run is over: stream exhausted / horizon passed (sim) or
    /// shutdown drained (live).
    Done,
}

/// The mode boundary: virtual-time simulation vs wall-clock serving.
pub(crate) trait Driver {
    /// Queues `ev` to fire at absolute time `at`.
    fn schedule(&mut self, at: SimTime, ev: Event);

    /// Produces the next unit of work. `next_request_id` is the id the
    /// kernel will assign to the arrival this call may return (live
    /// drivers publish it to the response plumbing); `live_requests` is
    /// the kernel's count of admitted-or-queued work (live drivers use it
    /// to decide when a drain is complete).
    fn next_step(&mut self, next_request_id: u64, live_requests: usize) -> Step;

    /// Whether undelivered work remains inside the driver (queued events
    /// beyond the one being processed, or a pending arrival). Feeds the
    /// kernel's decision to keep the sampling tick alive.
    fn has_pending(&self) -> bool;

    /// True when the driver runs its own shutdown/drain protocol (live
    /// mode). When false, the kernel honors the process-wide
    /// [`shutdown`](crate::shutdown) flag at sampling-tick boundaries by
    /// ending the run itself.
    fn handles_shutdown(&self) -> bool {
        false
    }
}

/// The virtual clock: today's priority-queue event loop, byte-identical
/// at fixed seed to the pre-split engine.
pub(crate) struct SimDriver<'s> {
    queue: EventQueue<Event>,
    source: &'s mut dyn ArrivalSource,
    /// The next arrival pulled from the source but not yet delivered
    /// (lookahead for timestamp interleaving with queued events).
    pending: Option<Arrival>,
    /// Hard wall on simulated time (`horizon × drain_factor`).
    hard_cap: SimTime,
}

impl<'s> SimDriver<'s> {
    pub(crate) fn new(
        source: &'s mut dyn ArrivalSource,
        queue_capacity: usize,
        hard_cap: SimTime,
    ) -> Self {
        let mut d = SimDriver {
            queue: EventQueue::with_capacity(queue_capacity),
            source,
            pending: None,
            hard_cap,
        };
        d.pending = d.source.next_arrival();
        d
    }
}

impl Driver for SimDriver<'_> {
    fn schedule(&mut self, at: SimTime, ev: Event) {
        self.queue.schedule(at, ev);
    }

    fn next_step(&mut self, _next_request_id: u64, _live_requests: usize) -> Step {
        // Interleave the pending arrival with queued events by timestamp;
        // the arrival wins ties (the historical engine scheduled every
        // arrival up front with the lowest sequence numbers, so at a
        // timestamp tie the arrival always popped first).
        let take_arrival = match (&self.pending, self.queue.peek_time()) {
            (Some(a), Some(t)) => a.at <= t,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_arrival {
            let a = self.pending.take().expect("checked above");
            if a.at > self.hard_cap {
                return Step::Done;
            }
            self.pending = self.source.next_arrival();
            return Step::Arrival(a, None);
        }
        let Some((now, ev)) = self.queue.pop() else { return Step::Done };
        if now > self.hard_cap {
            return Step::Done;
        }
        Step::Event(now, ev)
    }

    fn has_pending(&self) -> bool {
        !self.queue.is_empty() || self.pending.is_some()
    }
}

/// The wall clock: timer expirations and live submissions.
///
/// `SimTime` is microseconds since `epoch`. Scheduled events fire when the
/// monotonic clock passes their timestamp, and submissions become arrivals
/// stamped with the receive instant. Every delivered timestamp is clamped
/// to the high-water mark of times already delivered: when the kernel
/// falls behind the wall clock, a fresh arrival can carry a later stamp
/// than a queued-but-overdue timer, and delivering that timer at its
/// original (now earlier) time would run the kernel's clock backwards.
/// The scheduler's incremental structures (delay-slot index, reorder
/// queue, banded-Δt estimator) were built under simulation's monotone
/// clock and keep that guarantee here; the bump also keeps lateness
/// accounting honest — an event delivered late *is* late, and the
/// deviation it shows the kernel includes the kernel's own lag.
pub(crate) struct LiveDriver {
    queue: EventQueue<Event>,
    submissions: Receiver<Submission>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    /// Set once the shutdown flag is first observed: the wall-clock
    /// instant after which the drain gives up on stragglers.
    drain_deadline: Option<Instant>,
    drain_timeout: Duration,
    /// Longest single wait on the submission channel (bounds shutdown
    /// reaction latency when the queue is empty and traffic is idle).
    poll: Duration,
    /// The channel hung up (every front-door sender dropped).
    disconnected: bool,
    /// Latest timestamp delivered to the kernel; every subsequent step is
    /// clamped to at least this, making kernel time monotone.
    watermark: SimTime,
}

impl LiveDriver {
    pub(crate) fn new(
        submissions: Receiver<Submission>,
        shutdown: Arc<AtomicBool>,
        drain_timeout: Duration,
        poll: Duration,
    ) -> Self {
        LiveDriver {
            queue: EventQueue::new(),
            submissions,
            epoch: Instant::now(),
            shutdown,
            drain_deadline: None,
            drain_timeout,
            poll: poll.max(Duration::from_millis(1)),
            disconnected: false,
            watermark: SimTime::ZERO,
        }
    }

    /// Wall clock as kernel time: µs since the server epoch.
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// Clamps a delivery timestamp to the monotone watermark and records
    /// it as the new high-water mark.
    fn deliver(&mut self, at: SimTime) -> SimTime {
        let at = at.max(self.watermark);
        self.watermark = at;
        at
    }
}

impl Driver for LiveDriver {
    fn schedule(&mut self, at: SimTime, ev: Event) {
        // The kernel schedules relative to event timestamps, which can
        // trail the wall clock under load; clamp into the queue's present
        // so a late follow-up never trips the no-time-travel assertion.
        self.queue.schedule(at.max(self.queue.now()), ev);
    }

    fn next_step(&mut self, _next_request_id: u64, live_requests: usize) -> Step {
        if self.shutdown.load(Ordering::Relaxed) && self.drain_deadline.is_none() {
            self.drain_deadline = Some(Instant::now() + self.drain_timeout);
        }
        if let Some(deadline) = self.drain_deadline {
            // Drained (or gave up): queued submissions that raced the flag
            // were still admitted; once nothing is in flight, stop.
            if live_requests == 0 || Instant::now() >= deadline {
                return Step::Done;
            }
        } else if self.disconnected && live_requests == 0 {
            return Step::Done;
        }

        // Fire anything already due.
        if let Some(t) = self.queue.peek_time() {
            if t <= self.now() {
                let (at, ev) = self.queue.pop().expect("peeked");
                return Step::Event(self.deliver(at), ev);
            }
        }
        // Nothing due: wait for a submission until the next timer (or the
        // poll cap, whichever is sooner).
        let wait = match self.queue.peek_time() {
            Some(t) => Duration::from_micros(t.0.saturating_sub(self.now().0)).min(self.poll),
            None => self.poll,
        };
        match self.submissions.recv_timeout(wait) {
            Ok(sub) => {
                let at = self.deliver(self.now());
                Step::Arrival(Arrival { at, request_type: sub.rtype }, Some(sub.token))
            }
            Err(RecvTimeoutError::Timeout) => Step::Idle,
            Err(RecvTimeoutError::Disconnected) => {
                self.disconnected = true;
                Step::Idle
            }
        }
    }

    fn has_pending(&self) -> bool {
        // A live server always has "more work" until it is shut down and
        // drained: the sampling tick (auditor, telemetry, admission
        // rounds) must keep running while the front door is open.
        self.drain_deadline.is_none() || !self.queue.is_empty()
    }

    fn handles_shutdown(&self) -> bool {
        true
    }
}
