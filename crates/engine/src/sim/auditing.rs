//! The opt-in invariant auditor: per-tick conservation cross-checks over
//! the live state, plus end-of-run checks against the audit trail.

use super::*;
use mlp_trace::{metrics::names, DecisionKind};

/// The per-machine invariant checks of [`Sim::audit_tick`]: occupancy
/// conservation (grants ≙ actual usage ≙ running-span sum) and the
/// reservation ledger's incremental index against a from-scratch rebuild.
/// A free function so shard workers can run it without touching `Sim`.
fn machine_checks(m: &mlp_cluster::Machine, used: &HashMap<u32, ResourceVector>) -> Vec<String> {
    let mut violations = Vec::new();
    let (_, grants_total, actual_used, _) = m.occupancy();
    if !rv_close(grants_total, actual_used) {
        violations.push(format!(
            "machine {:?}: grants sum to {grants_total:?} but used is {actual_used:?}",
            m.id
        ));
    }
    let expect = used.get(&m.id.0).copied().unwrap_or(ResourceVector::ZERO);
    if !rv_close(expect, actual_used) {
        violations.push(format!(
            "machine {:?}: running spans occupy {expect:?} but used is {actual_used:?}",
            m.id
        ));
    }
    if let Err(e) = m.ledger.check_consistency() {
        violations.push(format!("machine {:?} ledger: {e}", m.id));
    }
    violations
}

impl<'c, D: Driver> Sim<'c, D> {
    /// Cross-checks conservation invariants over the live state: every
    /// `Running` span is backed by a live grant of the right size on an
    /// up machine, per-machine occupancy sums match the machine's own
    /// accounting, and every reservation ledger's incremental index agrees
    /// with a from-scratch rebuild. One pass over live requests +
    /// machines — cheap next to a scheduling round, but still opt-in
    /// outside tests. Requests are visited in admission order so the
    /// violation report (and the f64 occupancy accumulation) is
    /// deterministic and matches the historical dense scan.
    pub(super) fn audit_tick(&mut self, now: SimTime) {
        let mut violations: Vec<String> = Vec::new();
        let mut used: HashMap<u32, ResourceVector> = HashMap::new();
        for id in self.table.live_ids_in_admission_order() {
            let req = self.table.get(id).expect("live id has an entry");
            let rid = req.info.id.0;
            for (node, st) in req.state.iter().enumerate() {
                let NState::Running { occupied, grant, .. } = *st else {
                    continue;
                };
                if req.abandoned {
                    violations.push(format!("request {rid} node {node} Running after abandon"));
                    continue;
                }
                let mid = req.plan.nodes[node].machine;
                let machine = self.cluster.machine(mid);
                if !machine.is_up() {
                    violations
                        .push(format!("request {rid} node {node} Running on down machine {mid:?}"));
                }
                match machine.grant_amount(grant) {
                    None => violations
                        .push(format!("request {rid} node {node}: grant gone on machine {mid:?}")),
                    Some(g) if !rv_close(g, occupied) => violations.push(format!(
                        "request {rid} node {node}: grant {g:?} != occupied {occupied:?}"
                    )),
                    Some(_) => {}
                }
                *used.entry(mid.0).or_insert(ResourceVector::ZERO) += occupied;
            }
        }
        // Per-machine checks (occupancy conservation + ledger consistency
        // rebuild) are independent, so a sharded cluster fans them out
        // over the worker pool; results are re-sorted by machine id before
        // merging, making the violation list byte-identical to the
        // sequential ascending-id walk at any worker count.
        if self.cluster.shard_count() > 1 {
            let used_ref = &used;
            let jobs: Vec<_> = self
                .cluster
                .machines_by_shard_mut()
                .into_iter()
                .map(|machines| {
                    move |_s: usize| {
                        machines
                            .iter()
                            .map(|m| (m.id.0, machine_checks(m, used_ref)))
                            .collect::<Vec<(u32, Vec<String>)>>()
                    }
                })
                .collect();
            let mut per_machine: Vec<(u32, Vec<String>)> =
                self.pool.scatter(jobs).into_iter().flatten().collect();
            per_machine.sort_by_key(|(id, _)| *id);
            for (_, v) in per_machine {
                violations.extend(v);
            }
        } else {
            for m in self.cluster.machines() {
                violations.extend(machine_checks(m, &used));
            }
        }
        // Shard-partition consistency: the shard map must remain a strict
        // partition of the cluster (every machine in exactly one shard,
        // member lists ascending and duplicate-free, per-shard capacity
        // aggregates equal to the member sums). The map is immutable after
        // cluster construction, so any drift here means memory corruption
        // or a cluster/map mix-up — exactly what an auditor is for.
        if let Err(e) = self.cluster.shards().check_partition(self.cluster.machines()) {
            violations.push(format!("shard partition: {e}"));
        }
        // Overload-resilience invariants: the retry-token bucket must obey
        // exact micro-token conservation, and every breaker's transition
        // history must be a legal state-machine walk.
        if let Some(o) = self.overload.as_ref() {
            if !o.budget.conservation_holds() {
                violations.push(format!(
                    "retry budget leaks tokens: {} available, {} granted, {} denied",
                    o.budget.tokens_available(),
                    o.budget.granted(),
                    o.budget.denied(),
                ));
            }
            if let Err(e) = o.breakers.check_legal() {
                violations.push(format!("breaker state machine: {e}"));
            }
        }
        self.report_violations(now, &violations);
    }

    /// End-of-run replay of the admission log: every admitted request's
    /// recorded ideal critical path must match a recomputation from the
    /// catalog, and its feasibility inequality must actually have held at
    /// gate time. Catches a drifting critical-path estimate or a gate that
    /// admits infeasible work under pressure. Resilience-off runs keep no
    /// admission log and pass trivially.
    pub(super) fn audit_overload_end(&mut self) {
        let Some(o) = self.overload.as_ref() else { return };
        let mut violations: Vec<String> = Vec::new();
        let mut last = SimTime::ZERO;
        for rec in &o.admission_log {
            last = last.max(rec.at);
            let ideal = ideal_cp_ms(self.catalog, rec.rtype);
            if (ideal - rec.ideal_cp_ms).abs() > 1e-6 {
                violations.push(format!(
                    "request {} admission recorded ideal cp {} ms but catalog gives {} ms",
                    rec.request.0, rec.ideal_cp_ms, ideal
                ));
                continue;
            }
            let remaining_ms = rec.deadline.since(rec.at).as_millis_f64();
            if o.cfg.admission_slack * rec.ideal_cp_ms > remaining_ms + 1e-6 {
                violations.push(format!(
                    "request {} admitted infeasibly: slack*cp = {} ms > {} ms to deadline",
                    rec.request.0,
                    o.cfg.admission_slack * rec.ideal_cp_ms,
                    remaining_ms
                ));
            }
        }
        // Once the admission log wraps (admission_log_dropped > 0) the
        // replay is best-effort over the retained tail — still a real
        // check, just not exhaustive.
        self.report_violations(last, &violations);
    }

    /// End-of-run cross-checks between the audit trail and the recorded
    /// spans (needs both the auditor and the trail enabled). In streaming
    /// mode the collector retains no raw spans, so the admit-before-span
    /// check degrades to the trail-ordering check alone.
    pub(super) fn audit_end_of_run(&mut self) {
        if !self.audit.is_enabled() {
            return;
        }
        let mut violations: Vec<String> = Vec::new();
        let ds = self.audit.decisions();
        for w in ds.windows(2) {
            if w[0].at_us > w[1].at_us {
                violations.push(format!(
                    "audit trail not time-ordered: {} recorded after {}",
                    w[0].at_us, w[1].at_us
                ));
                break;
            }
        }
        // No span of a request may start before its admission decision.
        let mut first_start: HashMap<u64, u64> = HashMap::new();
        for s in self.collector.spans() {
            let e = first_start.entry(s.request.0).or_insert(u64::MAX);
            *e = (*e).min(s.start.as_micros());
        }
        for d in &ds {
            if d.kind != DecisionKind::Admit {
                continue;
            }
            let Some(r) = d.request else { continue };
            if let Some(&st) = first_start.get(&r) {
                if d.at_us > st {
                    violations.push(format!(
                        "request {r} admitted at {} after its first span start {st}",
                        d.at_us
                    ));
                }
            }
        }
        let last = ds.last().map_or(SimTime::ZERO, |d| SimTime(d.at_us));
        self.report_violations(last, &violations);
    }

    /// Counts violations under the shared metric and captures the first
    /// one as a minimized repro dump (config + seed + what tripped).
    pub(super) fn report_violations(&mut self, now: SimTime, violations: &[String]) {
        if violations.is_empty() {
            return;
        }
        self.metrics.add(names::INVARIANT_VIOLATIONS, violations.len() as u64);
        if self.invariant_report.is_none() {
            let cfg =
                serde_json::to_string(&self.cfg).unwrap_or_else(|_| format!("{:?}", self.cfg));
            self.invariant_report = Some(format!(
                "first invariant violation at t={now}:\n  {}\nrepro: seed {} with config {cfg}",
                violations.join("\n  "),
                self.cfg.seed,
            ));
        }
    }
}
