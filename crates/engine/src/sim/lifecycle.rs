//! The request/node state machine: invocation, deviation checks, healing,
//! failure recovery, completion, and latency attribution.
//!
//! All request lookups go through the [`RequestTable`](super::table)
//! slab by raw request id. Events that outlive their request (a stale
//! completion after an abandon, a retry for a request that finished)
//! find no entry and die — observably identical to the historical
//! generation-mismatch / abandoned-flag early returns, because entries
//! are reclaimed only *between* event turns.

use super::*;
use mlp_faults::attempt_fails;
use mlp_sched::{HealingAction, LateInfo, NodeFailure};
use mlp_trace::{
    metrics::names, Decision, DecisionKind, ExecutionCase, LatencyBreakdown, RequestRecord, Span,
};

impl<'c, D: Driver> Sim<'c, D> {
    pub(super) fn try_invoke(
        &mut self,
        now: SimTime,
        request: u64,
        node: usize,
        gen: u64,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let Some(req) = self.table.get_mut(request) else {
            return; // request finished; event is dead
        };
        if req.abandoned || req.gens[node] != gen {
            return; // superseded by a promotion, re-plan, or abandon
        }
        let at = match req.state[node] {
            NState::Ready { at } => at,
            _ => return,
        };
        if now < at {
            // Promotion moved the planned start ahead of readiness.
            self.driver.schedule(at, Event::TryInvoke { request, node, gen });
            return;
        }

        let np = req.plan.nodes[node];
        if self.faults.is_active() && !self.cluster.machine(np.machine).is_up() {
            // The planned machine is down. Fault-aware schemes re-plan via
            // `on_machine_failure`; the naive default waits the outage out.
            let at = match self.faults.next_recovery(np.machine, now) {
                Some(up) => up + SimDuration(1), // strictly after MachineUp
                None => now + RETRY_BACKOFF,
            };
            self.driver.schedule(at, Event::TryInvoke { request, node, gen });
            return;
        }
        let attempt = req.attempts[node];
        let fails =
            self.faults.is_active() && attempt_fails(&self.faults, req.info.id, node, attempt, now);

        let dag = &self.catalog.request(req.info.rtype).dag;
        let dnode = dag.node(node);
        let svc = self.catalog.services.get(dnode.service);

        // What the service wants is bounded by its grant; what it gets is
        // bounded by what is actually free on the machine right now.
        let machine = self.cluster.machine_mut(np.machine);
        let want = svc.demand.min(&np.grant);
        let occupied = want.min(&machine.actual_free()).clamp_non_negative();
        let satisfaction = occupied.satisfaction_of(&svc.demand).max(MIN_SATISFACTION);
        let grant = machine.occupy(occupied);

        let (dur_ms, penalty) =
            svc.sample_exec_ms_capped_parts(dnode.work_factor, satisfaction, rng.rng());
        let end = now + SimDuration::from_millis_f64(dur_ms);
        req.gens[node] += 1;
        let gen = req.gens[node];
        req.state[node] = NState::Running { start: now, end, occupied, satisfaction, grant };
        // Attribution sees the attempt that completes; retries overwrite.
        req.attrib[node].start = now;
        req.attrib[node].planned = np.planned_start;
        req.attrib[node].penalty = penalty;
        req.attrib[node].healed_us = 0;
        let rid = req.info.id;
        // A failing attempt holds its resources for the full sampled
        // duration, then dies instead of completing (same RNG draws either
        // way, so disabled faults stay byte-identical).
        if fails {
            self.driver.schedule(end, Event::NodeFailed { request, node, gen });
        } else {
            self.driver.schedule(end, Event::Complete { request, node, gen });
        }
        if let Some(t0) = self.orphan_since.remove(&(request, node)) {
            self.mttr_sum_us += now.since(t0).as_micros();
            self.mttr_count += 1;
        }

        let mut ctx = sched_ctx!(self, now);
        scheduler.on_span_start(rid, node, &mut ctx);
    }

    pub(super) fn check_deviation(
        &mut self,
        now: SimTime,
        request: u64,
        node: usize,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let Some(req) = self.table.get(request) else {
            return;
        };
        if req.abandoned {
            return;
        }
        let np = req.plan.nodes[node];
        if np.planned_start > now {
            return; // plan was moved; a fresh PlannedStart is queued
        }
        let late = match req.state[node] {
            NState::WaitingDeps { .. } => true,
            NState::Ready { at } => at > now,
            NState::Running { .. } | NState::Done => false,
        };
        if !late {
            return;
        }
        let info = LateInfo {
            request: req.info.id,
            node,
            machine: np.machine,
            planned_start: np.planned_start,
        };
        self.audit.record(
            Decision::new(now, DecisionKind::LateInvocation, "planned-start-passed")
                .request(req.info.id)
                .node(node)
                .machine(np.machine)
                .value(now.since(np.planned_start).as_millis_f64()),
        );
        let actions = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_late_invocation(info, &mut ctx)
        };
        for a in actions {
            self.apply_healing(now, a, scheduler, rng);
        }
        // Delay-slot "request" candidates: give the waiting queue a chance
        // to fill the stall.
        self.maybe_round(now, scheduler);
    }

    pub(super) fn apply_healing(
        &mut self,
        now: SimTime,
        action: HealingAction,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let _ = rng;
        match action {
            HealingAction::PromoteNode { request, node, new_start } => {
                let id = request.0;
                let Some(req) = self.table.get_mut(id) else {
                    return;
                };
                let new_start = new_start.max(now);
                req.plan.nodes[node].planned_start = new_start;
                // A deviation check still applies at the new start.
                self.driver.schedule(new_start, Event::PlannedStart { request: id, node });
                if let NState::Ready { at } = req.state[node] {
                    req.gens[node] += 1;
                    let gen = req.gens[node];
                    self.driver
                        .schedule(new_start.max(at), Event::TryInvoke { request: id, node, gen });
                }
            }
            HealingAction::StretchRunning { request, node, factor } => {
                // Brownout tier 1+: resource stretches are a luxury the
                // cluster cannot afford under pressure — suppress them so
                // the spare capacity serves admissions instead.
                if self.overload.as_ref().is_some_and(|o| o.suppress_stretch()) {
                    self.metrics.inc(names::OVERLOAD_STRETCHES_SUPPRESSED);
                    return;
                }
                let id = request.0;
                if factor <= 1.0 {
                    return;
                }
                let Some(req) = self.table.get_mut(id) else {
                    return;
                };
                let NState::Running { start, end, occupied, satisfaction, grant } = req.state[node]
                else {
                    return;
                };
                if end <= now {
                    return;
                }
                let dag = &self.catalog.request(req.info.rtype).dag;
                let svc = self.catalog.services.get(dag.node(node).service);
                let machine = self.cluster.machine_mut(req.plan.nodes[node].machine);
                // Grant the extra resources that are actually free.
                let extra = (svc.demand * (factor - 1.0)).min(&machine.actual_free());
                if extra.has_negative() || extra == ResourceVector::ZERO {
                    return;
                }
                if !machine.grow(grant, extra) {
                    return; // grant died (machine crashed under the span)
                }
                let new_occupied = occupied + extra;
                // Speedup proportional to the satisfaction recovered.
                let new_sat = new_occupied.satisfaction_of(&svc.demand).max(satisfaction);
                let speedup = (new_sat / satisfaction).max(1.0);
                let remaining = end.since(now);
                let new_end = now + remaining.mul_f64(1.0 / speedup);
                // Attribution: the healing module reclaimed this much of
                // the span's tail.
                req.attrib[node].healed_us += end.0.saturating_sub(new_end.0);
                req.state[node] = NState::Running {
                    start,
                    end: new_end,
                    occupied: new_occupied,
                    satisfaction: new_sat,
                    grant,
                };
                req.gens[node] += 1;
                let gen = req.gens[node];
                // The failure verdict for this attempt was drawn at invoke
                // time; a stretched span keeps its Complete outcome.
                self.driver.schedule(new_end, Event::Complete { request: id, node, gen });
            }
            HealingAction::Retry { request, node, backoff } => {
                let id = request.0;
                // Scheduler-issued retries draw from the same global token
                // bucket as engine blind retries: under overload an
                // exhausted budget sheds the request instead of feeding a
                // retry storm.
                if let Some(o) = self.overload.as_mut() {
                    if !o.try_retry_token(now) {
                        self.metrics.inc(names::OVERLOAD_RETRIES_DENIED);
                        self.audit.record(
                            Decision::new(now, DecisionKind::Shed, "retry-budget-exhausted")
                                .request(request)
                                .node(node),
                        );
                        self.abandon_request(now, id, scheduler);
                        return;
                    }
                }
                let Some(req) = self.table.get_mut(id) else {
                    return;
                };
                if req.abandoned || !matches!(req.state[node], NState::Ready { .. }) {
                    return;
                }
                req.gens[node] += 1;
                let gen = req.gens[node];
                self.metrics.inc(names::RETRIES);
                self.driver.schedule(now + backoff, Event::TryInvoke { request: id, node, gen });
            }
            HealingAction::Replan { request, node, machine, new_start } => {
                let id = request.0;
                let Some(req) = self.table.get_mut(id) else {
                    return;
                };
                if req.abandoned || matches!(req.state[node], NState::Running { .. } | NState::Done)
                {
                    return;
                }
                let new_start = new_start.max(now);
                req.plan.nodes[node].machine = machine;
                req.plan.nodes[node].planned_start = new_start;
                self.driver.schedule(new_start, Event::PlannedStart { request: id, node });
                if let NState::Ready { at } = req.state[node] {
                    req.gens[node] += 1;
                    let gen = req.gens[node];
                    self.driver
                        .schedule(new_start.max(at), Event::TryInvoke { request: id, node, gen });
                }
            }
            HealingAction::Abandon { request } => {
                self.abandon_request(now, request.0, scheduler);
            }
        }
    }

    /// Drops a request for good: kills every pending event for it,
    /// releases any running grants, and notifies the scheduler. The
    /// request never completes, so it counts as unfinished; its table
    /// entry is reclaimed at the next event turn.
    pub(super) fn abandon_request(&mut self, now: SimTime, id: u64, scheduler: &mut dyn Scheduler) {
        let Some(req) = self.table.get_mut(id) else {
            return;
        };
        if req.abandoned || req.remaining == 0 {
            return;
        }
        req.abandoned = true;
        let mut held: Vec<(MachineId, GrantId)> = Vec::new();
        for node in 0..req.state.len() {
            req.gens[node] += 1; // invalidate every in-flight event
            if let NState::Running { grant, .. } = req.state[node] {
                held.push((req.plan.nodes[node].machine, grant));
                req.state[node] = NState::Ready { at: now };
            }
        }
        let rid = req.info.id;
        for (m, g) in held {
            self.cluster.machine_mut(m).release(g);
        }
        // Abandoned nodes never "recover": drop them from MTTR tracking.
        self.orphan_since.retain(|&(r, _), _| r != id);
        self.abandoned += 1;
        self.reclaim.push(id);
        self.metrics.inc(names::ABANDONS);
        self.live_notify(id, crate::live::OutcomeKind::Abandoned);
        let mut ctx = sched_ctx!(self, now);
        scheduler.on_request_abandoned(rid, &mut ctx);
    }

    /// A running invocation died (transient fault). Release its grant,
    /// put the node back in the ready state, and let the scheduler decide
    /// between retry, re-plan, and shedding; schemes without a policy get
    /// a bounded blind retry.
    pub(super) fn node_failed(
        &mut self,
        now: SimTime,
        request: u64,
        node: usize,
        gen: u64,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let Some(req) = self.table.get_mut(request) else {
            return;
        };
        if req.abandoned || req.gens[node] != gen {
            return;
        }
        let NState::Running { grant, .. } = req.state[node] else {
            return;
        };
        let np = req.plan.nodes[node];
        let attempt = req.attempts[node];
        req.attempts[node] = attempt + 1;
        req.state[node] = NState::Ready { at: now };
        req.gens[node] += 1;
        let rid = req.info.id;
        let rtype = req.info.rtype;
        self.cluster.machine_mut(np.machine).release(grant);
        self.metrics.inc(names::NODE_FAILURES);
        // Feed the per-service circuit breaker: repeated failures of one
        // service trip its breaker open, and the admission gate then
        // rejects new requests whose DAGs depend on it.
        if let Some(o) = self.overload.as_mut() {
            if o.cfg.resilience {
                let svc = self.catalog.request(rtype).dag.node(node).service;
                o.breakers.record_failure(svc, now);
            }
        }

        let failure = NodeFailure { request: rid, node, machine: np.machine, attempt, at: now };
        let actions = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_node_failure(failure, &mut ctx)
        };
        let handled = actions.iter().any(|a| match a {
            HealingAction::Retry { request, node: n, .. }
            | HealingAction::Replan { request, node: n, .. } => *request == rid && *n == node,
            HealingAction::Abandon { request } => *request == rid,
            _ => false,
        });
        for a in actions {
            self.apply_healing(now, a, scheduler, rng);
        }
        if handled {
            return;
        }
        // Engine fallback for fault-oblivious schemes: blind retry with a
        // fixed backoff, bounded by ENGINE_MAX_ATTEMPTS. The entry is
        // still present even if a healing action just abandoned it —
        // reclamation is deferred past this turn.
        let Some(req) = self.table.get_mut(request) else {
            return;
        };
        if req.abandoned {
            return;
        }
        if req.attempts[node] >= ENGINE_MAX_ATTEMPTS {
            let attempts = req.attempts[node];
            self.audit.record(
                Decision::new(now, DecisionKind::Shed, "engine-retry-budget")
                    .request(rid)
                    .node(node)
                    .value(attempts as f64),
            );
            self.abandon_request(now, request, scheduler);
        } else {
            let gen = req.gens[node];
            let attempts = req.attempts[node];
            // Under resilience the blind retry draws a token from the
            // global budget (shed on exhaustion) and backs off with
            // exponential jitter instead of the fixed engine backoff.
            let backoff = if self.overload.as_ref().is_some_and(|o| o.cfg.resilience) {
                let o = self.overload.as_mut().expect("checked above");
                if !o.try_retry_token(now) {
                    self.metrics.inc(names::OVERLOAD_RETRIES_DENIED);
                    self.audit.record(
                        Decision::new(now, DecisionKind::Shed, "retry-budget-exhausted")
                            .request(rid)
                            .node(node)
                            .value(attempts as f64),
                    );
                    self.abandon_request(now, request, scheduler);
                    return;
                }
                SimDuration::from_millis_f64(o.retry_backoff_ms(attempts))
            } else {
                RETRY_BACKOFF
            };
            self.metrics.inc(names::RETRIES);
            self.audit.record(
                Decision::new(now, DecisionKind::Retry, "engine-blind-retry")
                    .request(rid)
                    .node(node)
                    .value(attempts as f64),
            );
            self.driver.schedule(now + backoff, Event::TryInvoke { request, node, gen });
        }
    }

    /// An injected machine crash: every span executing there is killed and
    /// re-enters the ready state, the machine's grants and ledger are
    /// wiped, and the scheduler gets a chance to re-plan displaced work
    /// onto surviving machines. Live requests are visited in admission
    /// order (the slab's iteration helper) so recovery scheduling and the
    /// scheduler notification order match the historical dense scan.
    pub(super) fn machine_down(
        &mut self,
        now: SimTime,
        id: MachineId,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        self.metrics.inc(names::MACHINE_CRASHES);
        self.audit
            .record(Decision::new(now, DecisionKind::MachineDown, "injected-outage").machine(id));
        let mut orphans: Vec<(u64, usize)> = Vec::new(); // (request id, node)
        for rid in self.table.live_ids_in_admission_order() {
            let req = self.table.get_mut(rid).expect("live id has an entry");
            if req.abandoned || req.remaining == 0 {
                continue;
            }
            for node in 0..req.state.len() {
                if req.plan.nodes[node].machine != id {
                    continue;
                }
                if matches!(req.state[node], NState::Running { .. }) {
                    // The work in flight is lost; the re-execution is a new
                    // attempt with a fresh failure verdict.
                    req.state[node] = NState::Ready { at: now };
                    req.gens[node] += 1;
                    req.attempts[node] += 1;
                    orphans.push((rid, node));
                }
            }
        }
        self.cluster.machine_mut(id).crash();

        // Naive default recovery: re-invoke when the machine comes back.
        // Fault-aware schedulers supersede these events by re-planning
        // (which bumps the generation counters).
        let recovery = self.faults.next_recovery(id, now);
        for &(rid, node) in &orphans {
            self.orphan_since.entry((rid, node)).or_insert(now);
            let at = match recovery {
                Some(up) => up + SimDuration(1),
                None => now + RETRY_BACKOFF,
            };
            let gen = self.table.get(rid).expect("orphan entry lives").gens[node];
            self.driver.schedule(at, Event::TryInvoke { request: rid, node, gen });
        }

        let orphan_ids: Vec<(RequestId, usize)> =
            orphans.iter().map(|&(rid, node)| (RequestId(rid), node)).collect();
        let actions = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_machine_failure(id, &orphan_ids, &mut ctx)
        };
        for a in actions {
            self.apply_healing(now, a, scheduler, rng);
        }
    }

    pub(super) fn complete(
        &mut self,
        now: SimTime,
        request: u64,
        node: usize,
        gen: u64,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) {
        let Some(req) = self.table.get_mut(request) else {
            return;
        };
        if req.abandoned || req.gens[node] != gen {
            return; // stale completion (stretched span / fault recovery)
        }
        let NState::Running { start, occupied, satisfaction, grant, .. } = req.state[node] else {
            return;
        };
        req.state[node] = NState::Done;
        req.remaining -= 1;
        req.attrib[node].end = now;

        let np = req.plan.nodes[node];
        let rtype = req.info.rtype;
        let rid = req.info.id;
        let machine_load = {
            let machine = self.cluster.machine_mut(np.machine);
            machine.release(grant);
            machine.utilization()
        };

        let dag = &self.catalog.request(rtype).dag;
        let service = dag.node(node).service;
        let span = Span {
            request: rid,
            request_type: rtype,
            service,
            dag_node: node,
            machine: np.machine,
            planned_start: np.planned_start,
            start,
            end: now,
            satisfaction,
        };
        self.collector.record_span(span);
        self.profiles.record(
            service,
            ExecutionCase {
                usage: occupied,
                machine_load,
                exec_ms: now.since(start).as_millis_f64(),
            },
        );
        // A completed span is a success vote for its service's breaker
        // (HalfOpen probes recover through here).
        if let Some(o) = self.overload.as_mut() {
            if o.cfg.resilience {
                o.breakers.record_success(service, now);
            }
        }
        let heal = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_span_complete(&span, &mut ctx)
        };
        for a in heal {
            self.apply_healing(now, a, scheduler, rng);
        }

        // Ready the children. The entry is still present even if a healing
        // action just abandoned this request (reclamation is deferred).
        let degrade = self.faults.degradation_at(now);
        // Brownout tier 2+: optional terminal branches are shed — a leaf
        // child whose only unmet dependency is this completing node is
        // marked done without ever running. One leaf is always kept so
        // every request still produces a meaningful response.
        let shed_branches = self.overload.as_ref().is_some_and(|o| o.shed_optional_branches());
        let req = self.table.get_mut(request).expect("entry lives until end of turn");
        let children = dag.children(node);
        let keep_leaf = if shed_branches {
            children.iter().copied().filter(|&c| dag.children(c).is_empty()).max()
        } else {
            None
        };
        let parent_machine = np.machine;
        let mut newly_ready: Vec<(RequestId, usize, SimTime)> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        let mut violations = 0u64;
        for c in children {
            if shed_branches && dag.children(c).is_empty() && Some(c) != keep_leaf {
                if let NState::WaitingDeps { deps_left: 1, .. } = req.state[c] {
                    req.state[c] = NState::Done;
                    req.remaining -= 1;
                    req.gens[c] += 1; // kill any stale events for the node
                    skipped.push(c);
                    continue;
                }
            }
            let callee = self.catalog.services.get(dag.node(c).service);
            let same = req.plan.nodes[c].machine == parent_machine;
            let mut comm = self.net.sample_delay(same, callee.comm, rng);
            if degrade != 1.0 {
                // Fault-injected network degradation stretches the delay
                // after sampling, so the RNG stream is untouched.
                comm = comm.mul_f64(degrade);
            }
            let arrive = now + comm;
            match &mut req.state[c] {
                NState::WaitingDeps { deps_left, ready_hint } => {
                    // The parent whose message lands last (ties to the
                    // later arrival) is the child's critical dependency.
                    if arrive >= *ready_hint {
                        req.attrib[c].crit_parent = Some(node);
                    }
                    *ready_hint = (*ready_hint).max(arrive);
                    *deps_left -= 1;
                    if *deps_left == 0 {
                        let at = *ready_hint;
                        req.attrib[c].ready_at = at;
                        req.state[c] = NState::Ready { at };
                        let when = at.max(req.plan.nodes[c].planned_start).max(now);
                        let gen = req.gens[c];
                        self.driver.schedule(when, Event::TryInvoke { request, node: c, gen });
                        newly_ready.push((rid, c, at));
                    }
                }
                other => {
                    // A child in any state but WaitingDeps here means the
                    // dependency bookkeeping drifted (e.g. a stale event
                    // survived a generation bump). Recoverable: count it
                    // and leave the child's lifecycle alone.
                    debug_assert!(false, "child {c} of a completing node in state {other:?}");
                    violations += 1;
                }
            }
        }
        if violations > 0 {
            self.metrics.add(names::INVARIANT_VIOLATIONS, violations);
        }

        if !skipped.is_empty() {
            if let Some(o) = self.overload.as_mut() {
                o.branch_sheds += skipped.len() as u64;
            }
            for &c in &skipped {
                self.metrics.inc(names::OVERLOAD_BRANCH_SHEDS);
                self.audit.record(
                    Decision::new(now, DecisionKind::Shed, "brownout-branch-shed")
                        .request(rid)
                        .node(c),
                );
                let mut ctx = sched_ctx!(self, now);
                scheduler.on_node_skipped(rid, c, &mut ctx);
            }
        }

        for (rid, c, at) in newly_ready {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_node_ready(rid, c, at, &mut ctx);
        }

        // Whole-request completion: flush the record and queue the entry
        // for reclamation — this is what keeps the table's occupancy
        // tracking the in-flight window instead of total arrivals.
        let req = self.table.get(request).expect("entry lives until end of turn");
        if req.remaining == 0 {
            let arrival = req.info.arrival;
            let rt = self.catalog.request(rtype);
            let rec = RequestRecord {
                id: rid,
                request_type: rtype,
                class: rt.class(),
                arrival,
                end: now,
                slo_ms: rt.slo_ms,
                breakdown: Some(self.attribute(request, node)),
            };
            self.collector.record_request(rec);
            self.completed_reqs += 1;
            self.reclaim.push(request);
            self.live_notify(
                request,
                crate::live::OutcomeKind::Completed { latency_us: now.since(arrival).as_micros() },
            );
            {
                let mut ctx = sched_ctx!(self, now);
                scheduler.on_request_complete(rid, &mut ctx);
            }
            self.maybe_round(now, scheduler);
        }
    }

    /// Decomposes one completed request's end-to-end latency by walking
    /// its critical chain backwards from the last node to finish. The
    /// chain alternates node phases (`ready_at → start → end`, split into
    /// queueing, placement delay, and span) with comm hops
    /// (`ready_at − parent.end`), all measured in whole µs, so
    /// queue + placement + comm + span telescopes *exactly* to
    /// `end − arrival`; each span then splits into ideal execution vs
    /// cap-induced slowdown via the penalty captured at sample time.
    fn attribute(&self, request: u64, last_node: usize) -> LatencyBreakdown {
        let req = self.table.get(request).expect("attributing a live request");
        let (mut queue_us, mut place_us, mut comm_us) = (0u64, 0u64, 0u64);
        let (mut exec_ms, mut cap_ms, mut healed_ms) = (0.0f64, 0.0f64, 0.0f64);
        let mut cur = last_node;
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > req.state.len() + 1 {
                debug_assert!(false, "attribution walk cycled");
                break;
            }
            let a = req.attrib[cur];
            let span_ms = a.end.since(a.start).as_millis_f64();
            let ideal_ms = if a.penalty.is_finite() && a.penalty > 0.0 {
                span_ms / a.penalty
            } else {
                span_ms
            };
            exec_ms += ideal_ms;
            cap_ms += span_ms - ideal_ms;
            healed_ms += SimDuration(a.healed_us).as_millis_f64();
            // Failed attempts and outage waits land in the wait; the part
            // the *plan* asked for is placement delay, the rest queueing.
            let wait_us = a.start.since(a.ready_at).as_micros();
            let p_us = a.planned.since(a.ready_at).as_micros().min(wait_us);
            place_us += p_us;
            queue_us += wait_us - p_us;
            match a.crit_parent {
                Some(p) => {
                    comm_us += a.ready_at.since(req.attrib[p].end).as_micros();
                    cur = p;
                }
                None => {
                    // Root: admission queueing back to the arrival.
                    queue_us += a.ready_at.since(req.info.arrival).as_micros();
                    break;
                }
            }
        }
        LatencyBreakdown {
            queue_ms: SimDuration(queue_us).as_millis_f64(),
            placement_ms: SimDuration(place_us).as_millis_f64(),
            comm_ms: SimDuration(comm_us).as_millis_f64(),
            exec_ms,
            cap_ms,
            healed_ms,
        }
    }
}
