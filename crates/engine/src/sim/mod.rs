//! The discrete-event simulator that executes one run.
//!
//! Event flow per request: arrival (pulled lazily from an
//! [`ArrivalSource`]) → scheduler admission (a [`RequestPlan`]) → per-node
//! invocation once dependencies and their sampled communication delays
//! resolve → execution under the machine's *actual* resource availability
//! (capping penalties per the Fig 3c sensitivity model) → completion,
//! which releases resources, feeds the profile store, and readies
//! children.
//!
//! Deviations (Fig 5) arise naturally: a node whose planned start passes
//! while its dependencies are still running (or their messages still in
//! flight) triggers [`Scheduler::on_late_invocation`]; the engine applies
//! whatever [`HealingAction`](mlp_sched::HealingAction)s the scheme
//! returns.
//!
//! Fault injection (robustness extension): when the config enables it, a
//! precompiled [`FaultSchedule`] crashes machines (killing their running
//! spans and voiding their ledgers), fails individual invocations
//! transiently, and degrades communication. Failures surface to the
//! scheduler through `on_node_failure` / `on_machine_failure`; schemes
//! without a policy get a bounded blind retry from the engine. With faults
//! disabled the schedule is empty and runs are byte-identical to a build
//! without this subsystem.
//!
//! # Module layout
//!
//! The engine used to be one ~1,400-line file; it is now split along its
//! natural seams, all operating on the shared `Sim` state defined here:
//!
//! - `table` — the generation-indexed request slab (`RequestTable`).
//!   Entries live only while a request is in flight, so memory tracks the
//!   *working set*, not total arrivals.
//! - `kernel` — the event loop: arrival pull, event dispatch, admission
//!   rounds, and entry reclamation.
//! - `lifecycle` — the request/node state machine: invocation,
//!   deviation checks, healing, failure recovery, completion, and
//!   latency attribution.
//! - `telemetry` — sampling-tick bookkeeping: utilization, ledger
//!   pruning (window set by `cfg.ledger_retention_s`), and gauges.
//! - `auditing` — the opt-in invariant auditor and its repro dumps.
//!
//! # Bounded-memory open-loop runs
//!
//! [`simulate`] pulls arrivals one at a time and interleaves them with
//! queued events by timestamp (arrival wins ties, which reproduces the
//! historical engine's event ordering exactly — it scheduled every arrival
//! up front with the lowest sequence numbers). Combined with the slab's
//! reclamation of finished requests, a multi-million-request soak holds
//! only the in-flight window in memory: the `request_table_peak` gauge
//! plateaus near rate × residence time while arrivals grow without bound.

use crate::config::ExperimentConfig;
use mlp_cluster::{Cluster, GrantId, MachineId, ShardPool};
use mlp_faults::FaultSchedule;
use mlp_model::{RequestCatalog, RequestTypeId, ResourceVector};
use mlp_net::NetworkModel;
use mlp_sched::{OverloadRuntime, RequestInfo, RequestPlan, Scheduler, SchedulerCtx};
use mlp_sim::{SimDuration, SimRng, SimTime};
use mlp_stats::TimeSeries;
use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore, RequestId, TraceCollector};
use mlp_workload::{Arrival, ArrivalSource};
use std::collections::HashMap;

pub(crate) use driver::{Driver, LiveDriver, SimDriver, Step};

/// Completion sink for live mode: invoked by the kernel whenever a
/// token-carrying request reaches a terminal state.
pub(crate) type LiveNotify = Box<dyn FnMut(crate::live::LiveOutcome) + Send>;

/// Minimum spacing between scheduling rounds once the waiting queue grows
/// large (amortizes queue sorting under overload).
const ROUND_THROTTLE: SimDuration = SimDuration(5_000); // 5 ms
/// Upper bound for the adaptive backoff between *fruitless* rounds: when a
/// saturated scheduler keeps failing to admit anything, re-running the
/// full admission pass every 5 ms only burns time re-sorting the backlog.
const ROUND_BACKOFF_MAX: SimDuration = SimDuration(320_000); // 320 ms
/// Queue length below which rounds run unthrottled.
const SMALL_QUEUE: usize = 64;
/// Floor on the satisfaction fraction a service can be driven to — even a
/// fully saturated node makes some progress (cgroups shares never starve a
/// container completely).
pub(crate) const MIN_SATISFACTION: f64 = 0.05;
/// Engine-fallback cap on per-node attempts for schedulers that return no
/// recovery action from `on_node_failure` (bounds work under fault storms).
const ENGINE_MAX_ATTEMPTS: u32 = 10;
/// Backoff for the engine's blind-retry fallback.
const RETRY_BACKOFF: SimDuration = SimDuration(10_000); // 10 ms

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    TryInvoke {
        request: u64,
        node: usize,
        gen: u64,
    },
    PlannedStart {
        request: u64,
        node: usize,
    },
    Complete {
        request: u64,
        node: usize,
        gen: u64,
    },
    /// The running invocation dies at this instant (fault injection).
    NodeFailed {
        request: u64,
        node: usize,
        gen: u64,
    },
    /// Injected machine crash / recovery (precompiled outage schedule).
    MachineDown(MachineId),
    MachineUp(MachineId),
    Sample,
}

#[derive(Debug, Clone, Copy)]
enum NState {
    /// Waiting for `deps_left` parents; `ready_hint` tracks the latest
    /// parent-completion + comm-delay seen so far.
    WaitingDeps { deps_left: usize, ready_hint: SimTime },
    /// All dependencies resolved; invocable from `at`.
    Ready { at: SimTime },
    /// Executing.
    Running {
        start: SimTime,
        end: SimTime,
        occupied: ResourceVector,
        satisfaction: f64,
        grant: GrantId,
    },
    /// Finished.
    Done,
}

/// Engine-side record of one admitted request, stored in the
/// [`table::RequestTable`] slab while the request is in flight.
struct RunReq {
    info: RequestInfo,
    plan: RequestPlan,
    state: Vec<NState>,
    gens: Vec<u64>,
    remaining: usize,
    /// Per-node invocation attempts so far (fault injection hashes these
    /// into its fail/succeed verdicts).
    attempts: Vec<u32>,
    /// Given up on: stays unfinished, all events for it are dead.
    abandoned: bool,
    /// Per-node critical-path attribution bookkeeping.
    attrib: Vec<NodeAttrib>,
    /// Admission order stamp (assigned by the table); crash handling and
    /// auditing iterate live entries in this order so their behavior is
    /// independent of slot reuse.
    admit_seq: u64,
}

/// Per-node bookkeeping for latency attribution. Everything temporal is
/// kept in whole microseconds ([`SimTime`]) so the walk over the critical
/// chain telescopes *exactly* to the measured end-to-end latency.
#[derive(Debug, Clone, Copy)]
struct NodeAttrib {
    /// The dependency whose completion message arrived last (ties go to
    /// the later parent), pinning this node's readiness — the upstream
    /// link of the critical chain. `None` for root nodes.
    crit_parent: Option<usize>,
    /// When the node became invocable: admission for roots, the last
    /// dependency message arrival otherwise.
    ready_at: SimTime,
    /// Execution window of the attempt that finally completed.
    start: SimTime,
    end: SimTime,
    /// Planned start in force when that attempt launched (reflects
    /// delay-slot promotions and crash re-plans).
    planned: SimTime,
    /// Capping penalty sampled for the completing attempt (total exec
    /// time = ideal × penalty; captured at sample time because the
    /// high-sensitivity penalty draws noise and cannot be recomputed).
    penalty: f64,
    /// Execution time reclaimed by resource stretching, µs.
    healed_us: u64,
}

impl NodeAttrib {
    fn new(now: SimTime, planned: SimTime) -> Self {
        NodeAttrib {
            crit_parent: None,
            ready_at: now,
            start: now,
            end: now,
            planned,
            penalty: 1.0,
            healed_us: 0,
        }
    }
}

/// Everything one simulation run produces.
pub struct SimOutput {
    /// Spans and request records (exact mode) or running aggregates
    /// (streaming mode, see [`TraceCollector::streaming`]).
    pub collector: TraceCollector,
    /// Cluster utilization `U` sampled at the configured period
    /// (only within the horizon).
    pub utilization: TimeSeries,
    /// Scheduler-internal counters (delay-slot fills, stretches, …).
    pub metrics: MetricsRegistry,
    /// Requests admitted or queued but not finished at cut-off.
    pub unfinished: usize,
    /// Requests abandoned by failure recovery (a subset of `unfinished`).
    pub abandoned: usize,
    /// Requests that arrived in total.
    pub arrived: usize,
    /// High-water mark of live entries in the request table. On a healthy
    /// open-loop run this plateaus near rate × residence time while
    /// `arrived` grows without bound — the bounded-memory guarantee.
    pub request_table_peak: usize,
    /// The profile store as enriched by the run (for trace-driven reuse).
    pub profiles: ProfileStore,
    /// Decision-audit trail (disabled and empty unless `cfg.audit`).
    pub audit: AuditLog,
    /// First invariant violation the auditor caught, as a minimized repro
    /// dump (`None` when the auditor is off or nothing fired).
    pub invariant_report: Option<String>,
    /// Requests shed at the overload admission gate (a subset of
    /// `unfinished`; always 0 with the overload subsystem off).
    pub shed_requests: usize,
}

/// Runs one experiment: arrivals pulled from `source` against `scheduler`
/// on a fresh cluster. The collector is built from the config:
/// `cfg.stream_stats` selects the constant-memory streaming mode,
/// otherwise every span and request record is retained exactly.
pub fn simulate(
    cfg: &ExperimentConfig,
    catalog: &RequestCatalog,
    profiles: ProfileStore,
    source: &mut dyn ArrivalSource,
    scheduler: &mut dyn Scheduler,
    rng: &mut SimRng,
) -> SimOutput {
    let collector = if cfg.stream_stats {
        TraceCollector::streaming(SimTime::from_secs_f64(cfg.horizon_s))
    } else {
        TraceCollector::new()
    };
    simulate_with(cfg, catalog, profiles, source, scheduler, rng, collector)
}

/// [`simulate`] with a caller-supplied collector (e.g. a streaming
/// collector wired to a JSONL spill sink for soak runs).
#[allow(clippy::too_many_arguments)]
pub fn simulate_with(
    cfg: &ExperimentConfig,
    catalog: &RequestCatalog,
    profiles: ProfileStore,
    source: &mut dyn ArrivalSource,
    scheduler: &mut dyn Scheduler,
    rng: &mut SimRng,
    collector: TraceCollector,
) -> SimOutput {
    // Queue capacity: sized from the source's hint when one exists, but
    // capped — an open-loop source may promise millions of arrivals while
    // the queue only ever holds the in-flight window.
    let cap = source.size_hint().map_or(4096, |n| (n * 4 + 16).min(1 << 20));
    let hard_cap = SimTime::from_secs_f64(cfg.horizon_s * cfg.drain_factor.max(1.0));
    let driver = SimDriver::new(source, cap, hard_cap);
    let mut sim = build_sim(cfg, catalog, profiles, collector, driver, hard_cap);
    sim.run(scheduler, rng)
}

/// [`simulate`] against the wall clock: the kernel runs on a
/// [`LiveDriver`], pulling real submissions from `submissions` and firing
/// scheduled events as timer expirations. Terminal outcomes for
/// token-carrying requests are pushed through `notify`. Blocks the calling
/// thread until `shutdown` is observed and the drain completes (or every
/// submission sender hangs up with nothing in flight).
///
/// There is no hard time cap in live mode — the server runs until told to
/// stop — and the collector always streams, since arrivals are unbounded.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_live(
    cfg: &ExperimentConfig,
    catalog: &RequestCatalog,
    profiles: ProfileStore,
    scheduler: &mut dyn Scheduler,
    rng: &mut SimRng,
    submissions: std::sync::mpsc::Receiver<crate::live::Submission>,
    shutdown: std::sync::Arc<std::sync::atomic::AtomicBool>,
    opts: &crate::live::LiveOptions,
    notify: LiveNotify,
) -> SimOutput {
    let collector = TraceCollector::streaming(SimTime::from_secs_f64(cfg.horizon_s));
    let driver = LiveDriver::new(submissions, shutdown, opts.drain_timeout, opts.poll);
    let hard_cap = SimTime(u64::MAX >> 1);
    let mut sim = build_sim(cfg, catalog, profiles, collector, driver, hard_cap);
    sim.notify = Some(notify);
    // Anchor decision timestamps (µs since the epoch the driver just set)
    // to the wall clock, so live audit trails line up with server logs.
    let unix_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    sim.audit = std::mem::take(&mut sim.audit).with_epoch(unix_us);
    sim.run(scheduler, rng)
}

/// Shared construction: everything about a run except where its clock
/// comes from.
fn build_sim<'c, D: Driver>(
    cfg: &ExperimentConfig,
    catalog: &'c RequestCatalog,
    profiles: ProfileStore,
    collector: TraceCollector,
    driver: D,
    hard_cap: SimTime,
) -> Sim<'c, D> {
    Sim {
        cluster: cfg.build_cluster(),
        pool: ShardPool::new(cfg.workers),
        catalog,
        profiles,
        net: NetworkModel::paper_default(),
        metrics: MetricsRegistry::new(),
        collector,
        utilization: TimeSeries::new(cfg.sample_period_s),
        driver,
        table: table::RequestTable::new(),
        pending_info: HashMap::new(),
        next_request_id: 0,
        arrived: 0,
        completed_reqs: 0,
        reclaim: Vec::new(),
        last_round: SimTime::ZERO,
        round_backoff: ROUND_THROTTLE,
        horizon: SimTime::from_secs_f64(cfg.horizon_s),
        hard_cap,
        sample_period: SimDuration::from_secs_f64(cfg.sample_period_s),
        ledger_retention: SimDuration::from_secs_f64(cfg.ledger_retention_s),
        pending_ready: Vec::new(),
        faults: cfg.faults.compile(cfg.machines, cfg.seed),
        abandoned: 0,
        orphan_since: HashMap::new(),
        mttr_sum_us: 0,
        mttr_count: 0,
        audit: if cfg.audit { AuditLog::enabled() } else { AuditLog::disabled() },
        auditor: cfg.auditor,
        invariant_report: None,
        // The overload runtime (and its RNG fork) exists only when the
        // subsystem is on: disabled runs draw exactly the historical RNG
        // streams and stay byte-identical.
        overload: cfg
            .overload
            .enabled
            .then(|| OverloadRuntime::new(cfg.overload, SimRng::new(cfg.seed).fork(3))),
        shed_requests: 0,
        breaker_log_cursor: 0,
        live_tokens: HashMap::new(),
        notify: None,
        cfg: cfg.clone(),
    }
}

struct Sim<'c, D: Driver> {
    cluster: Cluster,
    /// Worker pool for per-tick shard work (admission, telemetry,
    /// auditing). One worker (the default) executes inline.
    pool: ShardPool,
    catalog: &'c RequestCatalog,
    profiles: ProfileStore,
    net: NetworkModel,
    metrics: MetricsRegistry,
    collector: TraceCollector,
    utilization: TimeSeries,
    /// The clock: owns the event queue and the arrival stream. Generic
    /// (not `dyn`) so the sim-mode hot loop keeps its inlining.
    driver: D,
    /// Live (in-flight) requests, keyed by raw request id.
    table: table::RequestTable,
    /// Arrival metadata for requests the scheduler has seen but not yet
    /// admitted; moved into the table entry at admission. Bounded by the
    /// scheduler's waiting queue, which v-MLP never sheds.
    pending_info: HashMap<u64, RequestInfo>,
    /// Monotonic request-id allocator (ids are assigned in pull order, so
    /// a [`SliceSource`](mlp_workload::SliceSource) reproduces the
    /// historical arrival-index ids exactly).
    next_request_id: u64,
    /// Arrivals processed so far.
    arrived: u64,
    /// Whole requests completed so far.
    completed_reqs: u64,
    /// Finished (completed or abandoned) request ids whose table entries
    /// are reclaimed at the top of the next event iteration — deferral
    /// keeps same-turn accesses (e.g. post-abandon checks) valid.
    reclaim: Vec<u64>,
    last_round: SimTime,
    /// Current spacing between rounds; grows exponentially while rounds
    /// admit nothing against a non-empty queue, resets on any admission.
    round_backoff: SimDuration,
    horizon: SimTime,
    hard_cap: SimTime,
    sample_period: SimDuration,
    /// Reservation-ledger retention window (`cfg.ledger_retention_s`):
    /// breakpoints older than `now − retention` are pruned every tick.
    ledger_retention: SimDuration,
    /// Root nodes that became ready during admission; their
    /// `on_node_ready` notifications are delivered right after the
    /// admission round returns (the scheduler is borrowed during it).
    pending_ready: Vec<(RequestId, usize, SimTime)>,
    /// Precompiled fault schedule (empty when faults are disabled).
    faults: FaultSchedule,
    /// Requests given up on by failure recovery.
    abandoned: usize,
    /// `(request id, node) → crash instant` for spans killed by a machine
    /// crash, cleared when the node next starts executing (MTTR
    /// accounting).
    orphan_since: HashMap<(u64, usize), SimTime>,
    mttr_sum_us: u64,
    mttr_count: u64,
    /// Decision-audit sink, shared with the scheduler through the context.
    audit: AuditLog,
    /// Whether the per-tick invariant auditor runs.
    auditor: bool,
    /// First violation's repro dump.
    invariant_report: Option<String>,
    /// Overload-resilience runtime (`None` unless `cfg.overload.enabled`).
    overload: Option<OverloadRuntime>,
    /// Requests shed at the overload admission gate.
    shed_requests: u64,
    /// How many breaker transitions have already been mirrored into the
    /// decision-audit trail (the telemetry tick drains the rest).
    breaker_log_cursor: usize,
    /// Live mode: submission token per raw request id, registered when the
    /// driver delivers a token-carrying arrival and consumed by
    /// [`Sim::live_notify`] at the request's terminal state. Always empty
    /// in sim mode.
    live_tokens: HashMap<u64, u64>,
    /// Live mode: terminal-outcome sink (`None` in sim mode).
    notify: Option<LiveNotify>,
    /// The run's config, kept for the repro dump.
    cfg: ExperimentConfig,
}

/// Zero-contention critical path of a request type, ms: nominal execution
/// times (`base_ms × work_factor`) along the longest DAG chain, no
/// communication or queueing. The overload admission gate compares this
/// against the remaining deadline budget; the auditor recomputes it to
/// confirm every admitted request was feasible at its gate time.
pub(crate) fn ideal_cp_ms(catalog: &RequestCatalog, rtype: RequestTypeId) -> f64 {
    let rt = catalog.request(rtype);
    rt.dag.critical_path(|i| {
        let n = rt.dag.node(i);
        catalog.services.get(n.service).base_ms * n.work_factor
    })
}

/// Builds a [`SchedulerCtx`] borrowing the relevant `Sim` fields. A macro
/// (rather than a method) so the remaining fields stay independently
/// borrowable at the call site; defined before the child modules so it is
/// textually in scope for all of them.
macro_rules! sched_ctx {
    ($sim:expr, $now:expr) => {
        SchedulerCtx {
            now: $now,
            cluster: &mut $sim.cluster,
            profiles: &$sim.profiles,
            catalog: $sim.catalog,
            net: &$sim.net,
            metrics: &$sim.metrics,
            audit: &$sim.audit,
        }
    };
}

mod auditing;
mod driver;
mod kernel;
mod lifecycle;
mod table;
mod telemetry;

/// Component-wise approximate equality for the conservation checks: the
/// machine's running accumulator and a fresh per-span sum visit the same
/// amounts in different orders, so bit-equality is too strict.
fn rv_close(a: ResourceVector, b: ResourceVector) -> bool {
    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() <= 1e-6 * x.abs().max(y.abs()).max(1.0)
    }
    close(a.cpu, b.cpu) && close(a.mem, b.mem) && close(a.io, b.io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::warm_profiles;
    use crate::scheme::Scheme;
    use mlp_trace::Span;
    use mlp_workload::{generate_stream, OpenLoopSource, SliceSource};

    fn run(scheme: Scheme, seed: u64) -> SimOutput {
        let cfg = ExperimentConfig::smoke(scheme).with_seed(seed);
        let catalog = RequestCatalog::paper();
        let root = SimRng::new(cfg.seed);
        let mut arr_rng = root.fork(0);
        let mut sim_rng = root.fork(1);
        let mut warm_rng = root.fork(2);
        let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);
        let mix = cfg.mix.resolve(&catalog);
        let arrivals =
            generate_stream(cfg.pattern, cfg.max_rate, cfg.horizon_s, &mix, &mut arr_rng);
        let mut source = SliceSource::new(&arrivals);
        let mut sched = crate::registry::default_registry().build(&cfg.scheme, cfg.seed).unwrap();
        simulate(&cfg, &catalog, profiles, &mut source, sched.as_mut(), &mut sim_rng)
    }

    #[test]
    fn smoke_runs_complete_for_every_scheme() {
        for scheme in Scheme::PAPER {
            let out = run(scheme, 42);
            assert!(out.arrived > 100, "{}: only {} arrivals", scheme.label(), out.arrived);
            let finished = out.collector.completed();
            assert!(
                finished + out.unfinished >= out.arrived,
                "{}: lost requests: {finished} + {} < {}",
                scheme.label(),
                out.unfinished,
                out.arrived
            );
            assert!(
                finished as f64 >= 0.9 * out.arrived as f64,
                "{}: only {finished}/{} finished",
                scheme.label(),
                out.arrived
            );
        }
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let a = run(Scheme::VMlp, 7);
        let b = run(Scheme::VMlp, 7);
        assert_eq!(a.collector.completed(), b.collector.completed());
        assert_eq!(
            a.collector.latency_percentile(99.0, None),
            b.collector.latency_percentile(99.0, None)
        );
        assert_eq!(a.collector.spans().len(), b.collector.spans().len());
    }

    #[test]
    fn spans_respect_causality() {
        let out = run(Scheme::VMlp, 3);
        let catalog = RequestCatalog::paper();
        // Group spans per request and check every DAG edge ordering.
        use std::collections::HashMap;
        let mut per_req: HashMap<RequestId, Vec<&Span>> = HashMap::new();
        for s in out.collector.spans() {
            per_req.entry(s.request).or_default().push(s);
        }
        for (_, spans) in per_req {
            let rtype = spans[0].request_type;
            let dag = &catalog.request(rtype).dag;
            let mut end_of: HashMap<usize, SimTime> = HashMap::new();
            let mut start_of: HashMap<usize, SimTime> = HashMap::new();
            for s in &spans {
                end_of.insert(s.dag_node, s.end);
                start_of.insert(s.dag_node, s.start);
            }
            for &(p, c) in dag.edges() {
                if let (Some(&pe), Some(&cs)) = (end_of.get(&p), start_of.get(&c)) {
                    assert!(cs >= pe, "child {c} started {cs} before parent {p} ended {pe}");
                }
            }
        }
    }

    #[test]
    fn machines_never_exceed_capacity() {
        // Reconstruct machine occupancy over time from spans and verify
        // the actual-accounting invariant (occupied ≤ capacity).
        let out = run(Scheme::FairSched, 11); // FairSched over-commits the most
        let cfg = ExperimentConfig::smoke(Scheme::FairSched);
        let mut events: Vec<(SimTime, usize, f64)> = Vec::new(); // (t, machine, cpu delta)
        for s in out.collector.spans() {
            // occupied CPU is not recorded on the span; satisfaction < 1
            // already proves clamping, so here we assert the satisfaction
            // floor instead.
            assert!(s.satisfaction >= MIN_SATISFACTION - 1e-9);
            assert!(s.satisfaction <= 1.0 + 1e-9);
            events.push((s.start, s.machine.0 as usize, 0.0));
        }
        let _ = cfg;
        assert!(!events.is_empty());
    }

    #[test]
    fn vmlp_heals_more_than_baselines() {
        let v = run(Scheme::VMlp, 5);
        let fills = v.metrics.counter(mlp_trace::metrics::names::DELAY_SLOT_FILLS)
            + v.metrics.counter(mlp_trace::metrics::names::RESOURCE_STRETCHES);
        let f = run(Scheme::FairSched, 5);
        let base_fills = f.metrics.counter(mlp_trace::metrics::names::DELAY_SLOT_FILLS);
        assert_eq!(base_fills, 0, "baselines never heal");
        // v-MLP may or may not heal in a smoke run; just ensure counters
        // are consistent (no panic path) and late invocations are tracked.
        let _ = fills;
    }

    #[test]
    fn request_table_reclaims_finished_requests() {
        let out = run(Scheme::VMlp, 42);
        assert!(out.request_table_peak > 0);
        assert!(
            out.request_table_peak < out.arrived,
            "peak occupancy {} should be below total arrivals {} (entries are reclaimed)",
            out.request_table_peak,
            out.arrived
        );
    }

    #[test]
    fn streaming_open_loop_run_is_bounded_and_consistent() {
        // An open-loop source with a request cap plus the streaming
        // collector: the configuration fig_soak uses, at smoke scale.
        let cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(9).with_stream_stats(true);
        let catalog = RequestCatalog::paper();
        let root = SimRng::new(cfg.seed);
        let arr_rng = root.fork(0);
        let mut sim_rng = root.fork(1);
        let mut warm_rng = root.fork(2);
        let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);
        let mix = cfg.mix.resolve(&catalog);
        // The smoke horizon offers >100 arrivals, so a cap of 60 binds.
        let mut source =
            OpenLoopSource::poisson(cfg.pattern, cfg.max_rate, cfg.horizon_s, mix, arr_rng)
                .with_max_requests(60);
        let mut sched = crate::registry::default_registry().build(&cfg.scheme, cfg.seed).unwrap();
        let out = simulate(&cfg, &catalog, profiles, &mut source, sched.as_mut(), &mut sim_rng);
        assert_eq!(out.arrived, 60, "cap honored");
        assert!(out.collector.is_streaming());
        assert!(out.collector.spans().is_empty(), "streaming mode keeps no raw spans");
        let completed = out.collector.completed();
        assert!(completed + out.unfinished >= out.arrived, "request conservation");
        assert!(out.request_table_peak < out.arrived);
    }
}
