//! Sampling-tick bookkeeping: utilization series, reservation-ledger
//! pruning, and the gauges long runs assert on (retained ledger
//! breakpoints, per-shard load, request-table occupancy).

use super::*;
use mlp_sched::pressure_signal;
use mlp_trace::metrics::names;
use mlp_trace::{Decision, DecisionKind};

impl<'c, D: Driver> Sim<'c, D> {
    /// One `Event::Sample` tick's telemetry work. Ordering matters for
    /// byte-identity with the historical engine: utilization first, then
    /// ledger pruning, then gauge publication (gauges never feed back into
    /// scheduling, but the prune does — it bounds what window queries can
    /// see — so it runs before the admission round the kernel issues
    /// right after this). `waiting` is the scheduler's admission-queue
    /// depth, sampled by the kernel before handing control here; it feeds
    /// the overload pressure signal.
    pub(super) fn on_sample(&mut self, now: SimTime, waiting: usize) {
        if now <= self.horizon {
            self.utilization.push(self.cluster.utilization());
        }
        // Retention window is a config knob (`ledger_retention_s`); the
        // default 2 s matches the historical hardcoded window, and the
        // auditor cross-checks that a tighter window never breaks
        // reservation consistency.
        //
        // Pruning (and the timeline-length survey that follows) is
        // per-machine-independent, so on a sharded cluster it fans out
        // over the worker pool; lengths come back per shard and the gauge
        // publication below walks them in shard-index order. Each gauge
        // name is machine-unique, so the published state is identical to
        // the sequential walk at any worker count.
        let cutoff = now.saturating_sub(self.ledger_retention);
        let mut total = 0usize;
        let mut largest = 0usize;
        if self.cluster.shard_count() > 1 {
            let jobs: Vec<_> = self
                .cluster
                .machines_by_shard_mut()
                .into_iter()
                .map(|mut machines| {
                    move |_s: usize| {
                        machines
                            .iter_mut()
                            .map(|m| {
                                m.ledger.prune_before(cutoff);
                                (m.id.0, m.ledger.timeline_len())
                            })
                            .collect::<Vec<(u32, usize)>>()
                    }
                })
                .collect();
            for lens in self.pool.scatter(jobs) {
                for (machine, len) in lens {
                    total += len;
                    largest = largest.max(len);
                    self.metrics.set_gauge(&names::ledger_timeline(machine), len as f64);
                }
            }
        } else {
            self.cluster.prune_ledgers_before(cutoff);
            // Publish how much timeline pruning left behind: the
            // per-machine gauges plus a cluster max (a high-water mark
            // across ticks) and per-tick total. Long runs assert on these
            // to prove retained breakpoints stay bounded.
            for m in self.cluster.machines() {
                let len = m.ledger.timeline_len();
                total += len;
                largest = largest.max(len);
                self.metrics.set_gauge(&names::ledger_timeline(m.id.0), len as f64);
            }
        }
        let max_seen =
            self.metrics.gauge(names::LEDGER_TIMELINE_MAX).unwrap_or(0.0).max(largest as f64);
        self.metrics.set_gauge(names::LEDGER_TIMELINE_MAX, max_seen);
        self.metrics.set_gauge(names::LEDGER_TIMELINE_TOTAL, total as f64);
        // Request-table occupancy: the soak benchmark asserts the peak
        // plateaus (memory tracks the in-flight window, not arrivals).
        self.metrics.set_gauge(names::REQUEST_TABLE_PEAK, self.table.peak() as f64);
        // Per-shard gauges, only when actually sharded: scale runs watch
        // whether load (and retained timeline) stays balanced across
        // shards or piles up in a few.
        if self.cluster.shard_count() > 1 {
            for s in 0..self.cluster.shard_count() as u32 {
                let shard = mlp_cluster::ShardId(s);
                let util = self.cluster.shard_utilization(shard);
                self.metrics.set_gauge(&names::shard_utilization(s), util);
                let peak_name = names::shard_utilization_peak(s);
                let peak = self.metrics.gauge(&peak_name).unwrap_or(0.0).max(util);
                self.metrics.set_gauge(&peak_name, peak);
                let timeline: usize =
                    self.cluster.shard_machines(shard).map(|m| m.ledger.timeline_len()).sum();
                self.metrics.set_gauge(&names::shard_ledger_timeline(s), timeline as f64);
            }
        }
        self.overload_tick(now, waiting);
    }

    /// Overload-resilience sampling: compute the pressure signal, advance
    /// the brownout controller and breaker cooldown clocks, publish the
    /// gauges, and drain newly recorded breaker transitions into the
    /// decision-audit log. No-op when overload is disabled (the runtime is
    /// never constructed), so overload-off runs stay byte-identical.
    fn overload_tick(&mut self, now: SimTime, waiting: usize) {
        // Queue component: total in-system backlog (admission queue plus
        // live admitted requests), matching what the admission gate sees.
        // Load component: cluster utilization mapped onto a nominal
        // in-flight scale — `pressure_signal` clamps both terms, so the
        // exact scale only needs to be monotone in utilization.
        let util = self.cluster.utilization();
        let backlog = waiting + self.table.live();
        let Some(o) = self.overload.as_mut() else { return };
        let pressure =
            pressure_signal(backlog, o.cfg.max_queue_depth, (util * 1000.0) as usize, 1000);
        let (tier_move, _transitions) = o.on_tick(now, pressure);
        self.metrics.set_gauge(names::OVERLOAD_PRESSURE, pressure);
        self.metrics.set_gauge(names::BROWNOUT_TIER, o.brownout.tier() as f64);
        self.metrics.set_gauge(names::BREAKER_OPEN_CIRCUITS, o.breakers.open_count() as f64);
        self.metrics.set_gauge(names::RETRY_TOKENS, o.budget.tokens_available());
        if let Some((from, to)) = tier_move {
            self.audit.record(
                Decision::new(now, DecisionKind::Brownout, "pressure-tier-change")
                    .rank(from as f64)
                    .value(to as f64),
            );
        }
        // Breaker transitions accumulate in the bank (from gate calls and
        // success/failure recording as well as the tick above); mirror any
        // new ones into the audit log exactly once.
        let all = o.breakers.transitions();
        for t in &all[self.breaker_log_cursor..] {
            use mlp_sched::BreakerState as B;
            let reason = match (t.from, t.to) {
                (B::Closed, B::Open) => "tripped-open",
                (B::Open, B::HalfOpen) => "cooldown-half-open",
                (B::HalfOpen, B::Open) => "probe-failed",
                (B::HalfOpen, B::Closed) => "probes-recovered",
                _ => "illegal-transition",
            };
            self.audit.record(
                Decision::new(t.at, DecisionKind::BreakerTransition, reason)
                    .value(t.service.0 as f64),
            );
        }
        self.breaker_log_cursor = all.len();
    }
}
