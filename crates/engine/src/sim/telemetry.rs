//! Sampling-tick bookkeeping: utilization series, reservation-ledger
//! pruning, and the gauges long runs assert on (retained ledger
//! breakpoints, per-shard load, request-table occupancy).

use super::*;
use mlp_trace::metrics::names;

impl<'c> Sim<'c> {
    /// One `Event::Sample` tick's telemetry work. Ordering matters for
    /// byte-identity with the historical engine: utilization first, then
    /// ledger pruning, then gauge publication (gauges never feed back into
    /// scheduling, but the prune does — it bounds what window queries can
    /// see — so it runs before the admission round the kernel issues
    /// right after this).
    pub(super) fn on_sample(&mut self, now: SimTime) {
        if now <= self.horizon {
            self.utilization.push(self.cluster.utilization());
        }
        // Retention window is a config knob (`ledger_retention_s`); the
        // default 2 s matches the historical hardcoded window, and the
        // auditor cross-checks that a tighter window never breaks
        // reservation consistency.
        self.cluster.prune_ledgers_before(now.saturating_sub(self.ledger_retention));
        // Publish how much timeline pruning left behind: the per-machine
        // gauges plus a cluster max (a high-water mark across ticks) and
        // per-tick total. Long runs assert on these to prove retained
        // breakpoints stay bounded.
        let mut total = 0usize;
        let mut largest = 0usize;
        for m in self.cluster.machines() {
            let len = m.ledger.timeline_len();
            total += len;
            largest = largest.max(len);
            self.metrics.set_gauge(&names::ledger_timeline(m.id.0), len as f64);
        }
        let max_seen =
            self.metrics.gauge(names::LEDGER_TIMELINE_MAX).unwrap_or(0.0).max(largest as f64);
        self.metrics.set_gauge(names::LEDGER_TIMELINE_MAX, max_seen);
        self.metrics.set_gauge(names::LEDGER_TIMELINE_TOTAL, total as f64);
        // Request-table occupancy: the soak benchmark asserts the peak
        // plateaus (memory tracks the in-flight window, not arrivals).
        self.metrics.set_gauge(names::REQUEST_TABLE_PEAK, self.table.peak() as f64);
        // Per-shard gauges, only when actually sharded: scale runs watch
        // whether load (and retained timeline) stays balanced across
        // shards or piles up in a few.
        if self.cluster.shard_count() > 1 {
            for s in 0..self.cluster.shard_count() as u32 {
                let shard = mlp_cluster::ShardId(s);
                let util = self.cluster.shard_utilization(shard);
                self.metrics.set_gauge(&names::shard_utilization(s), util);
                let peak_name = names::shard_utilization_peak(s);
                let peak = self.metrics.gauge(&peak_name).unwrap_or(0.0).max(util);
                self.metrics.set_gauge(&peak_name, peak);
                let timeline: usize =
                    self.cluster.shard_machines(shard).map(|m| m.ledger.timeline_len()).sum();
                self.metrics.set_gauge(&names::shard_ledger_timeline(s), timeline as f64);
            }
        }
    }
}
