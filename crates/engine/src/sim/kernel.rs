//! The event loop: arrival pull, event dispatch, admission rounds, and
//! request-table reclamation.
//!
//! Arrivals are *pulled* from the [`ArrivalSource`] one at a time and
//! interleaved with queued events by timestamp. The historical engine
//! scheduled every arrival up front, which gave arrival events the lowest
//! sequence numbers — so at a timestamp tie the arrival always popped
//! first. The pull loop reproduces that exactly by letting the pending
//! arrival win ties against [`EventQueue::peek_time`]; everything else
//! about event ordering (init order, dynamic scheduling order) is
//! unchanged, so slice-driven runs are byte-identical to the historical
//! dense path.

use super::*;
use mlp_trace::metrics::names;
use mlp_trace::{Decision, DecisionKind};
use std::ops::ControlFlow;

impl<'c, D: Driver> Sim<'c, D> {
    pub(super) fn run(&mut self, scheduler: &mut dyn Scheduler, rng: &mut SimRng) -> SimOutput {
        if self.sample_period > SimDuration::ZERO {
            self.driver.schedule(SimTime::ZERO + self.sample_period, Event::Sample);
        }
        for o in self.faults.outages().to_vec() {
            self.driver.schedule(o.down_at, Event::MachineDown(o.machine));
            self.driver.schedule(o.up_at, Event::MachineUp(o.machine));
        }

        loop {
            self.drain_reclaim();
            let live = self.table.live() + self.pending_info.len();
            match self.driver.next_step(self.next_request_id, live) {
                Step::Arrival(a, token) => {
                    if let Some(token) = token {
                        // The arrival is about to be assigned this id (both
                        // the shed and the admit path consume exactly one).
                        self.live_tokens.insert(self.next_request_id, token);
                    }
                    self.arrival(a, scheduler);
                }
                Step::Event(now, ev) => {
                    if self.apply_event(now, ev, scheduler, rng).is_break() {
                        break;
                    }
                }
                Step::Idle => {}
                Step::Done => break,
            }
        }

        self.epilogue(scheduler)
    }

    fn apply_event(
        &mut self,
        now: SimTime,
        ev: Event,
        scheduler: &mut dyn Scheduler,
        rng: &mut SimRng,
    ) -> ControlFlow<()> {
        match ev {
            Event::TryInvoke { request, node, gen } => {
                self.try_invoke(now, request, node, gen, scheduler, rng);
            }
            Event::PlannedStart { request, node } => {
                self.check_deviation(now, request, node, scheduler, rng);
            }
            Event::Complete { request, node, gen } => {
                self.complete(now, request, node, gen, scheduler, rng);
            }
            Event::NodeFailed { request, node, gen } => {
                self.node_failed(now, request, node, gen, scheduler, rng);
            }
            Event::MachineDown(id) => {
                self.machine_down(now, id, scheduler, rng);
            }
            Event::MachineUp(id) => {
                self.cluster.machine_mut(id).recover();
                self.audit.record(
                    Decision::new(now, DecisionKind::MachineUp, "injected-recovery").machine(id),
                );
                self.maybe_round(now, scheduler);
            }
            Event::Sample => {
                // Graceful shutdown for long sim-mode runs: the sampling
                // tick is the natural boundary where all per-turn state is
                // settled, so a ctrl-c ends the run here and the epilogue
                // still produces a consistent (partial) output. Live mode
                // opts out — its driver runs the drain protocol instead.
                if crate::shutdown::requested() && !self.driver.handles_shutdown() {
                    return ControlFlow::Break(());
                }
                self.on_sample(now, scheduler.waiting());
                if self.auditor {
                    self.audit_tick(now);
                }
                self.run_round(now, scheduler);
                let more_work =
                    scheduler.waiting() > 0 || self.table.live() > 0 || self.driver.has_pending();
                let next = now + self.sample_period;
                if more_work && next <= self.hard_cap {
                    self.driver.schedule(next, Event::Sample);
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Routes a terminal outcome for a token-carrying (live) request to
    /// the completion sink. No-op in sim mode (`live_tokens` stays empty).
    pub(super) fn live_notify(&mut self, request: u64, kind: crate::live::OutcomeKind) {
        if let Some(token) = self.live_tokens.remove(&request) {
            if let Some(n) = self.notify.as_mut() {
                n(crate::live::LiveOutcome { token, request, kind });
            }
        }
    }

    /// One arrival: assign the next request id, register its metadata, and
    /// notify the scheduler. Note the event-queue clock is *not* advanced
    /// here (nothing was popped); every schedule issued downstream uses
    /// times ≥ the arrival instant, which is ≥ the last popped time.
    ///
    /// Under overload the admission gate runs first: an arrival that the
    /// queue cap, the deadline-feasibility check, or an open circuit
    /// breaker rejects is shed on the spot — it consumes a request id and
    /// counts as arrived-but-unfinished, and the scheduler never sees it.
    fn arrival(&mut self, a: Arrival, scheduler: &mut dyn Scheduler) {
        let now = a.at;
        if let Some(o) = self.overload.as_mut() {
            use mlp_sched::AdmissionVerdict;
            let rt = self.catalog.request(a.request_type);
            let ideal = ideal_cp_ms(self.catalog, a.request_type);
            let deadline = now + SimDuration::from_millis_f64(rt.slo_ms);
            // Backlog is everything in the system, not just the admission
            // queue: schedulers that admit eagerly park the excess in
            // machine plans, where it still queues ahead of this arrival.
            let depth = scheduler.waiting() + self.table.live();
            let id = RequestId(self.next_request_id);
            let verdict = o.admission(
                now,
                id,
                a.request_type,
                depth,
                ideal,
                deadline,
                rt.dag.nodes().iter().map(|n| n.service),
            );
            let reason = match verdict {
                AdmissionVerdict::Admit { .. } => None,
                AdmissionVerdict::RejectQueueFull { .. } => Some("queue-full"),
                AdmissionVerdict::RejectInfeasible { .. } => Some("deadline-infeasible"),
                AdmissionVerdict::RejectBreaker { .. } => Some("breaker-open"),
            };
            if let Some(reason) = reason {
                self.next_request_id += 1;
                self.arrived += 1;
                self.shed_requests += 1;
                self.metrics.inc(names::OVERLOAD_SHED_REQUESTS);
                self.audit.record(
                    Decision::new(now, DecisionKind::AdmissionReject, reason)
                        .request(id)
                        .budget_ms(ideal)
                        .value(depth as f64),
                );
                self.live_notify(id.0, crate::live::OutcomeKind::Shed { reason });
                return;
            }
        }
        let id = self.next_request_id;
        self.next_request_id += 1;
        self.arrived += 1;
        let info = RequestInfo { id: RequestId(id), rtype: a.request_type, arrival: now };
        self.pending_info.insert(id, info);
        let mut ctx = sched_ctx!(self, now);
        scheduler.on_arrival(info, &mut ctx);
        let _ = ctx;
        self.maybe_round(now, scheduler);
    }

    /// Frees table entries queued by completion/abandon during the
    /// previous event turn. Deferred so same-turn accesses (a post-abandon
    /// flag check, a completion's final scheduler callback) still see the
    /// entry; any event that targets a reclaimed request simply finds no
    /// entry, which is observably identical to the historical stale-
    /// generation / abandoned-flag early returns.
    fn drain_reclaim(&mut self) {
        if self.reclaim.is_empty() {
            return;
        }
        let ids = std::mem::take(&mut self.reclaim);
        for id in ids {
            self.table.remove(id);
        }
    }

    fn epilogue(&mut self, scheduler: &mut dyn Scheduler) -> SimOutput {
        use mlp_trace::metrics::names;
        // Live requests still holding a token were neither completed nor
        // shed — the run ended around them. Tell their connections.
        if let Some(n) = self.notify.as_mut().filter(|_| !self.live_tokens.is_empty()) {
            let mut leftover: Vec<(u64, u64)> = self.live_tokens.drain().collect();
            leftover.sort_unstable();
            for (request, token) in leftover {
                n(crate::live::LiveOutcome {
                    token,
                    request,
                    kind: crate::live::OutcomeKind::Dropped,
                });
            }
        }
        if self.mttr_count > 0 {
            let mean_ms = self.mttr_sum_us as f64 / self.mttr_count as f64 / 1000.0;
            self.metrics.set_gauge(names::MTTR_MS, mean_ms);
        }
        self.metrics.set_gauge(names::REQUEST_TABLE_PEAK, self.table.peak() as f64);
        if let Some(o) = self.overload.as_ref() {
            self.metrics.set_gauge(names::OVERLOAD_PRESSURE_PEAK, o.brownout.peak_pressure());
            self.metrics.set_gauge(names::BREAKER_OPENS, o.breakers.opens() as f64);
            self.metrics.set_gauge(names::RETRY_TOKENS, o.budget.tokens_available());
            self.metrics.set_gauge(names::OVERLOAD_RETRIES_GRANTED, o.budget.granted() as f64);
        }
        if self.auditor {
            self.audit_end_of_run();
            self.audit_overload_end();
        }
        // Abandoned requests never complete, so they are counted as
        // unfinished and request conservation holds under faults. Shed
        // arrivals were never admitted anywhere, so they are added on top:
        // arrived == finished + unfinished still balances.
        let unfinished = (self.table.admitted() - self.completed_reqs) as usize
            + scheduler.waiting()
            + self.shed_requests as usize;
        SimOutput {
            collector: std::mem::take(&mut self.collector),
            utilization: std::mem::replace(
                &mut self.utilization,
                TimeSeries::new(self.sample_period.as_secs_f64().max(1e-9)),
            ),
            metrics: self.metrics.clone(),
            unfinished,
            abandoned: self.abandoned,
            arrived: self.arrived as usize,
            shed_requests: self.shed_requests as usize,
            request_table_peak: self.table.peak(),
            profiles: std::mem::take(&mut self.profiles),
            audit: self.audit.clone(),
            invariant_report: self.invariant_report.take(),
        }
    }

    /// Runs an admission round unless throttled by a long waiting queue
    /// or backed off after fruitless rounds.
    pub(super) fn maybe_round(&mut self, now: SimTime, scheduler: &mut dyn Scheduler) {
        if scheduler.waiting() < SMALL_QUEUE || now.since(self.last_round) >= self.round_backoff {
            self.run_round(now, scheduler);
        }
    }

    pub(super) fn run_round(&mut self, now: SimTime, scheduler: &mut dyn Scheduler) {
        self.last_round = now;
        let plans = {
            let mut ctx = sched_ctx!(self, now);
            scheduler.schedule_parallel(&mut ctx, &self.pool)
        };
        // Adapt the round spacing: a saturated cluster gains nothing from
        // re-examining the same backlog every few milliseconds.
        if plans.is_empty() && scheduler.waiting() > 0 {
            self.round_backoff =
                SimDuration(self.round_backoff.0.saturating_mul(2)).min(ROUND_BACKOFF_MAX);
        } else {
            self.round_backoff = ROUND_THROTTLE;
        }
        for plan in plans {
            self.admit(now, plan);
        }
        let ready = std::mem::take(&mut self.pending_ready);
        for (rid, node, at) in ready {
            let mut ctx = sched_ctx!(self, now);
            scheduler.on_node_ready(rid, node, at, &mut ctx);
        }
    }

    fn admit(&mut self, now: SimTime, plan: RequestPlan) {
        let id = plan.request.0;
        let info = self.pending_info.remove(&id).expect("scheduler admitted an unknown request");
        let dag = &self.catalog.request(info.rtype).dag;
        assert_eq!(plan.nodes.len(), dag.len(), "plan does not cover the DAG");

        let n = dag.len();
        let deg = dag.in_degrees();
        let mut state = Vec::with_capacity(n);
        for &d in &deg {
            if d == 0 {
                state.push(NState::Ready { at: now });
            } else {
                state.push(NState::WaitingDeps { deps_left: d, ready_hint: now });
            }
        }
        self.audit.record(
            Decision::new(now, DecisionKind::Admit, "plan-accepted")
                .request(info.id)
                .value(n as f64),
        );
        let attrib = plan.nodes.iter().map(|np| NodeAttrib::new(now, np.planned_start)).collect();
        self.table.insert(
            id,
            RunReq {
                info,
                plan,
                state,
                gens: vec![0; n],
                remaining: n,
                attempts: vec![0; n],
                abandoned: false,
                attrib,
                admit_seq: 0, // stamped by the table
            },
        );

        // Schedule root invocations and deviation checks.
        let req = self.table.get(id).expect("just inserted");
        let mut roots = Vec::new();
        let mut schedules = Vec::with_capacity(n * 2);
        for (i, (&d, np)) in deg.iter().zip(&req.plan.nodes).enumerate() {
            let ps = np.planned_start.max(now);
            schedules.push((ps, Event::PlannedStart { request: id, node: i }));
            if d == 0 {
                schedules.push((ps, Event::TryInvoke { request: id, node: i, gen: 0 }));
                roots.push(i);
            }
        }
        for (at, ev) in schedules {
            self.driver.schedule(at, ev);
        }
        self.pending_ready.extend(roots.into_iter().map(|i| (RequestId(id), i, now)));
    }
}
