//! One-call experiment runner: config in, figure-ready metrics out.

use crate::config::ExperimentConfig;
use crate::sim::SimOutput;
use mlp_model::{RequestCatalog, VolatilityClass};
use mlp_sim::SimTime;
use mlp_stats::TimeSeries;
use mlp_trace::metrics::names;
use serde::{Deserialize, Serialize};

/// Figure-ready metrics of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests completed by cut-off.
    pub completed: usize,
    /// Requests completed within the horizon (Fig 14's throughput
    /// numerator: "finished requests within certain scheduling period").
    pub completed_in_horizon: usize,
    /// Requests unfinished at cut-off (counted as violations).
    pub unfinished: usize,
    /// Requests completed within the horizon *and* within their SLO — the
    /// goodput numerator (a violated completion is useless work in an
    /// interactive service).
    pub good_in_horizon: usize,
    /// SLO-violation fraction overall and per volatility class, with
    /// unfinished requests counted as violated (Fig 10).
    pub violation_rate: f64,
    /// Per-class violation fractions `[low, mid, high]`.
    pub violation_by_class: [f64; 3],
    /// End-to-end latency percentiles in ms `[p50, p90, p99]` over
    /// completed requests (Fig 12).
    pub latency_ms: [f64; 3],
    /// Per-class p99 latency `[low, mid, high]` (Fig 13).
    pub p99_by_class: [f64; 3],
    /// Mean end-to-end latency, ms.
    pub mean_latency_ms: f64,
    /// Cluster-utilization time series (Fig 11).
    pub utilization: TimeSeries,
    /// Mean utilization over the horizon.
    pub mean_utilization: f64,
    /// Fraction of spans that invoked later than planned.
    pub late_fraction: f64,
    /// Fraction of spans that ran resource-capped.
    pub capped_fraction: f64,
    /// Self-healing counters: (delay-slot fills, resource stretches,
    /// queue switches).
    pub healing: (u64, u64, u64),
    /// Requests abandoned by failure recovery (a subset of `unfinished`;
    /// 0 when fault injection is disabled).
    pub abandoned: usize,
    /// Running invocations killed by fault injection.
    pub node_failures: u64,
    /// Failed nodes re-attempted (scheduler retries plus engine fallback).
    pub fault_retries: u64,
    /// Machine crash events injected.
    pub machine_crashes: u64,
    /// Nodes re-planned onto surviving machines after a crash.
    pub crash_replans: u64,
    /// Mean time-to-recover crash-orphaned nodes, ms (0 with no crashes).
    pub mttr_ms: f64,
    /// Mean critical-path latency attribution over completed requests
    /// (queue / placement / comm / exec / cap, plus informational healed).
    /// `None` only for traces recorded before attribution existed.
    #[serde(default)]
    pub mean_breakdown: Option<mlp_trace::LatencyBreakdown>,
    /// Invariant-auditor violations (0 when the auditor is off or the run
    /// is clean).
    #[serde(default)]
    pub invariant_violations: u64,
    /// Placements that spilled out of their home shard (always 0 when the
    /// cluster runs unsharded).
    #[serde(default)]
    pub shard_overflows: u64,
    /// High-water mark of live entries in the engine's request table. On a
    /// bounded-memory open-loop run this plateaus near rate × residence
    /// time while `arrived` grows without bound (0 for traces recorded
    /// before the gauge existed).
    #[serde(default)]
    pub request_table_peak: usize,
    /// Arrivals refused by the overload admission gate (a subset of
    /// `unfinished`; 0 when overload resilience is disabled).
    #[serde(default)]
    pub shed_requests: usize,
    /// DAG leaves skipped by brownout branch shedding.
    #[serde(default)]
    pub branch_sheds: u64,
    /// Retries refused by the global retry-token budget.
    #[serde(default)]
    pub retries_denied: u64,
    /// Times any per-service circuit breaker tripped open.
    #[serde(default)]
    pub breaker_opens: u64,
    /// Peak overload pressure signal observed (0 with overload off).
    #[serde(default)]
    pub peak_pressure: f64,
}

impl ExperimentResult {
    /// Throughput in completed requests per second of scheduling period.
    pub fn throughput(&self) -> f64 {
        self.completed_in_horizon as f64 / self.config.horizon_s
    }

    /// Goodput: SLO-compliant completions per second of scheduling period.
    pub fn goodput(&self) -> f64 {
        self.good_in_horizon as f64 / self.config.horizon_s
    }
}

fn class_idx(c: VolatilityClass) -> usize {
    match c {
        VolatilityClass::Low => 0,
        VolatilityClass::Mid => 1,
        VolatilityClass::High => 2,
    }
}

pub(crate) fn summarize(
    config: &ExperimentConfig,
    catalog: &RequestCatalog,
    out: &SimOutput,
) -> ExperimentResult {
    let horizon = SimTime::from_secs_f64(config.horizon_s);
    let completed = out.collector.completed();
    // The horizon-windowed counts, the latency distribution, and the
    // violated-completion count come from running aggregates in streaming
    // mode and from the exact record set otherwise.
    let (completed_in_horizon, good_in_horizon, violated_completed, latency_ms, mean_latency_ms) =
        match out.collector.streaming_stats() {
            Some(stats) => (
                stats.completed_in_horizon(),
                stats.good_in_horizon(),
                stats.violated(),
                [
                    out.collector.latency_percentile(50.0, None).unwrap_or(0.0),
                    out.collector.latency_percentile(90.0, None).unwrap_or(0.0),
                    out.collector.latency_percentile(99.0, None).unwrap_or(0.0),
                ],
                stats.mean_latency_ms(),
            ),
            None => {
                let mut cdf = out.collector.latency_cdf(None);
                (
                    out.collector.completed_where(|r| r.end <= horizon),
                    out.collector.completed_where(|r| r.end <= horizon && !r.violated()),
                    out.collector.completed_where(|r| r.violated()),
                    [
                        cdf.percentile(50.0).unwrap_or(0.0),
                        cdf.percentile(90.0).unwrap_or(0.0),
                        cdf.percentile(99.0).unwrap_or(0.0),
                    ],
                    cdf.mean(),
                )
            }
        };

    // Violations: completed-and-violated plus everything unfinished.
    let total = completed + out.unfinished;
    let violated = violated_completed + out.unfinished;
    let violation_rate = if total == 0 { 0.0 } else { violated as f64 / total as f64 };

    // Per-class violations: unfinished requests cannot be attributed to a
    // class (they never completed), so classes are computed over completed
    // requests; the overall rate above includes the censored mass.
    let mut violation_by_class = [0.0; 3];
    let mut p99_by_class = [0.0; 3];
    for class in [VolatilityClass::Low, VolatilityClass::Mid, VolatilityClass::High] {
        let i = class_idx(class);
        violation_by_class[i] = out.collector.violation_rate(Some(class));
        p99_by_class[i] = out.collector.latency_percentile(99.0, Some(class)).unwrap_or(0.0);
    }

    let (late_fraction, _) = out.collector.lateness_stats();
    let capped_fraction = out.collector.capped_fraction();
    let mean_utilization = out.utilization.mean();

    let healing = (
        out.metrics.counter(names::DELAY_SLOT_FILLS),
        out.metrics.counter(names::RESOURCE_STRETCHES),
        out.metrics.counter(names::QUEUE_SWITCHES),
    );

    let _ = catalog;
    ExperimentResult {
        config: config.clone(),
        arrived: out.arrived,
        completed,
        completed_in_horizon,
        unfinished: out.unfinished,
        good_in_horizon,
        violation_rate,
        violation_by_class,
        latency_ms,
        p99_by_class,
        mean_latency_ms,
        utilization: out.utilization.clone(),
        mean_utilization,
        late_fraction,
        capped_fraction,
        healing,
        abandoned: out.abandoned,
        node_failures: out.metrics.counter(names::NODE_FAILURES),
        fault_retries: out.metrics.counter(names::RETRIES),
        machine_crashes: out.metrics.counter(names::MACHINE_CRASHES),
        crash_replans: out.metrics.counter(names::CRASH_REPLANS),
        mttr_ms: out.metrics.gauge(names::MTTR_MS).unwrap_or(0.0),
        mean_breakdown: out.collector.mean_breakdown(),
        invariant_violations: out.metrics.counter(names::INVARIANT_VIOLATIONS),
        shard_overflows: out.metrics.counter(names::SHARD_OVERFLOWS),
        request_table_peak: out.request_table_peak,
        shed_requests: out.shed_requests,
        branch_sheds: out.metrics.counter(names::OVERLOAD_BRANCH_SHEDS),
        retries_denied: out.metrics.counter(names::OVERLOAD_RETRIES_DENIED),
        breaker_opens: out.metrics.gauge(names::BREAKER_OPENS).unwrap_or(0.0) as u64,
        peak_pressure: out.metrics.gauge(names::OVERLOAD_PRESSURE_PEAK).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MixSpec;
    use crate::experiment::Experiment;
    use crate::scheme::Scheme;

    #[test]
    fn smoke_experiment_produces_sane_metrics() {
        let cfg = ExperimentConfig::smoke(Scheme::VMlp);
        let r = Experiment::from_config(cfg).run().unwrap();
        assert!(r.arrived > 0);
        assert!(r.completed > 0);
        assert!(r.completed_in_horizon <= r.completed);
        assert!((0.0..=1.0).contains(&r.violation_rate));
        assert!(r.latency_ms[0] <= r.latency_ms[1] && r.latency_ms[1] <= r.latency_ms[2]);
        assert!(r.mean_latency_ms > 0.0);
        assert!(r.mean_utilization > 0.0 && r.mean_utilization <= 1.0);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn identical_seeds_identical_results() {
        let cfg = ExperimentConfig::smoke(Scheme::PartProfile).with_seed(99);
        let a = Experiment::from_config(cfg.clone()).run().unwrap();
        let b = Experiment::from_config(cfg).run().unwrap();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.violation_rate, b.violation_rate);
    }

    #[test]
    fn attribution_sums_to_latency_and_auditor_is_clean() {
        // smoke() runs the invariant auditor; attribution is always on.
        let cfg = ExperimentConfig::smoke(Scheme::VMlp);
        let catalog = RequestCatalog::paper();
        let (r, out) = Experiment::from_config(cfg).catalog(&catalog).run_full().unwrap();
        assert_eq!(r.invariant_violations, 0, "report: {:?}", out.invariant_report);
        assert!(out.invariant_report.is_none());
        let mut checked = 0usize;
        for rec in out.collector.requests() {
            let b = rec.breakdown.expect("every completed request is attributed");
            let lat = rec.latency().as_millis_f64();
            assert!(
                (b.total_ms() - lat).abs() < 1e-9,
                "request {:?}: components {b:?} sum to {} but latency is {lat}",
                rec.id,
                b.total_ms(),
            );
            checked += 1;
        }
        assert!(checked > 0, "run completed no requests");
        let mean = r.mean_breakdown.expect("completions imply a mean breakdown");
        assert!((mean.total_ms() - r.mean_latency_ms).abs() < 1e-6);
    }

    #[test]
    fn single_class_mix_only_populates_that_class() {
        let cfg = ExperimentConfig::smoke(Scheme::CurSched)
            .with_mix(MixSpec::SingleClass(VolatilityClass::High));
        let r = Experiment::from_config(cfg).run().unwrap();
        assert!(r.p99_by_class[2] > 0.0, "high class must have latencies");
        assert_eq!(r.p99_by_class[0], 0.0, "no low-class requests expected");
        assert_eq!(r.p99_by_class[1], 0.0, "no mid-class requests expected");
    }
}
