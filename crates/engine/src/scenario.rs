//! The Fig 5 design-challenge scenario: two requests, one mispredicted
//! caller, one delayed message — and the contention that follows.
//!
//! The paper motivates v-MLP with a two-request example: request A
//! (microservices 1–4) and request B (microservices 5–7) fit together
//! perfectly *if* the scheduler's end-time estimate for microservice 1 and
//! the 1→3 communication delay hold. When either slips, microservice 3
//! lands on top of microservice 6 and both run degraded at `t₂`.
//! This module reproduces that timeline deterministically so the
//! `fig05_challenge` binary (and tests) can show the effect with and
//! without self-healing.

use crate::config::{ExperimentConfig, MixSpec};
use crate::experiment::Experiment;
use crate::registry::SchemeSpec;
use crate::runner::ExperimentResult;
use mlp_model::VolatilityClass;
use mlp_workload::WorkloadPattern;
use serde::{Deserialize, Serialize};

/// Outcome of the challenge scenario under one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChallengeOutcome {
    /// Scheme label.
    pub scheme: String,
    /// Fraction of spans that invoked later than planned.
    pub late_fraction: f64,
    /// Fraction of spans that ran resource-capped (the Fig 5 contention).
    pub capped_fraction: f64,
    /// p99 end-to-end latency, ms.
    pub p99_ms: f64,
    /// Healing actions taken (0 for baselines).
    pub healing_actions: u64,
}

/// Runs a small, tightly-loaded scenario dominated by high-volatility
/// requests — the regime where end-time misprediction and communication
/// noise cause exactly the misalignment of Fig 5 — and reports how much
/// contention each scheme incurs.
pub fn run_challenge(scheme: impl Into<SchemeSpec>, seed: u64) -> ChallengeOutcome {
    let scheme = scheme.into();
    // Few machines + a high-V_r mix at ~60 % of nominal capacity: tight
    // enough that every misprediction lands on a busy machine, feasible
    // enough that a precise scheduler can still align the chains.
    let cfg = ExperimentConfig {
        machines: 4,
        max_rate: 12.0,
        horizon_s: 20.0,
        mix: MixSpec::SingleClass(VolatilityClass::High),
        pattern: WorkloadPattern::Constant,
        ..ExperimentConfig::paper_default(scheme.clone())
    }
    .with_seed(seed);
    let r: ExperimentResult =
        Experiment::from_config(cfg).run().expect("challenge config is valid");
    ChallengeOutcome {
        scheme: scheme.display_name(),
        late_fraction: r.late_fraction,
        capped_fraction: r.capped_fraction,
        p99_ms: r.latency_ms[2],
        healing_actions: r.healing.0 + r.healing.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    #[test]
    fn misprediction_causes_contention_for_naive_schemes() {
        let naive = run_challenge(Scheme::CurSched, 3);
        // The whole point of Fig 5: late invocations happen, and naive
        // schemes end up with capped (contended) executions.
        assert!(naive.late_fraction > 0.0, "expected late invocations");
        assert!(naive.capped_fraction > 0.0, "expected contention");
        assert_eq!(naive.healing_actions, 0);
    }

    #[test]
    fn vmlp_contends_less_than_cursched() {
        let naive = run_challenge(Scheme::CurSched, 3);
        let vmlp = run_challenge(Scheme::VMlp, 3);
        assert!(
            vmlp.capped_fraction < naive.capped_fraction,
            "v-MLP capped {} vs CurSched {}",
            vmlp.capped_fraction,
            naive.capped_fraction
        );
    }
}
