//! Live mode: the kernel driven by the wall clock instead of virtual time.
//!
//! [`run_live`] blocks its calling thread in the same event-application
//! loop simulation uses — admission rounds, lifecycle, healing, the
//! invariant auditor — but behind a
//! [`LiveDriver`](crate::sim) the clock is monotonic wall time
//! (µs since the server epoch), arrivals are [`Submission`]s pulled from a
//! bounded channel, and scheduled events fire as timer expirations. The
//! serve layer (the `mlp-serve` crate) sits in front: it accepts TCP
//! connections, turns each request line into a `Submission` carrying a
//! fresh token, and parks the connection's worker until the kernel pushes
//! the token's [`LiveOutcome`] back through the notify sink.
//!
//! Determinism does not survive the wall clock — two live runs interleave
//! differently by construction — so live mode gates on the invariant
//! auditor (zero violations over a soak) where sim mode gates on
//! byte-identity at fixed seed. Everything the auditor checks is
//! mode-agnostic, which is the point of the driver split: the exact code
//! that held at zero violations over billions of simulated events is the
//! code serving the socket.

use crate::config::ExperimentConfig;
use crate::sim::{simulate_live, SimOutput};
use mlp_model::{RequestCatalog, RequestTypeId};
use mlp_sched::Scheduler;
use mlp_sim::SimRng;
use mlp_trace::ProfileStore;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Duration;

/// One live request, as handed to the kernel by the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// Caller-chosen correlation token, echoed back in the
    /// [`LiveOutcome`]. The serve layer allocates these from an atomic
    /// counter, one per in-flight connection request.
    pub token: u64,
    /// Which request DAG to run.
    pub rtype: RequestTypeId,
}

/// Terminal state of a live request, pushed through the notify sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveOutcome {
    /// The submission's correlation token.
    pub token: u64,
    /// The kernel request id it was assigned (stable in audit trails).
    pub request: u64,
    pub kind: OutcomeKind,
}

/// How a live request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Every DAG node finished; end-to-end latency in whole µs.
    Completed { latency_us: u64 },
    /// Rejected at the overload admission gate (queue cap, deadline
    /// infeasibility, or an open circuit breaker).
    Shed { reason: &'static str },
    /// Given up on by failure recovery.
    Abandoned,
    /// Still in flight when the run ended (shutdown drain timed out
    /// around it).
    Dropped,
}

/// Knobs of the live tick loop.
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// How long a shutdown waits for in-flight requests before dropping
    /// the stragglers.
    pub drain_timeout: Duration,
    /// Longest single block on the submission channel; bounds how stale
    /// the shutdown-flag observation can get under zero traffic.
    pub poll: Duration,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions { drain_timeout: Duration::from_secs(5), poll: Duration::from_millis(25) }
    }
}

/// Runs the kernel against the wall clock until `shutdown` is observed
/// (then drains) or every submission sender hangs up with nothing in
/// flight. Blocks the calling thread; the serve layer runs it on a
/// dedicated kernel thread.
///
/// `notify` receives exactly one [`LiveOutcome`] per submission pulled off
/// the channel (completed, shed, abandoned, or dropped at shutdown); it is
/// called from the kernel thread, so it must hand off, not block.
#[allow(clippy::too_many_arguments)]
pub fn run_live(
    cfg: &ExperimentConfig,
    catalog: &RequestCatalog,
    profiles: ProfileStore,
    scheduler: &mut dyn Scheduler,
    rng: &mut SimRng,
    submissions: Receiver<Submission>,
    shutdown: Arc<AtomicBool>,
    opts: &LiveOptions,
    notify: Box<dyn FnMut(LiveOutcome) + Send>,
) -> SimOutput {
    simulate_live(cfg, catalog, profiles, scheduler, rng, submissions, shutdown, opts, notify)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::warm_profiles;
    use crate::scheme::Scheme;
    use std::sync::atomic::Ordering;
    use std::sync::mpsc;

    /// End-to-end live smoke at the engine layer: submissions in,
    /// one terminal outcome per submission out, clean drain on shutdown.
    #[test]
    fn live_kernel_completes_submissions_and_drains() {
        let cfg = ExperimentConfig::smoke(Scheme::VMlp).with_seed(11);
        let catalog = RequestCatalog::paper();
        let root = SimRng::new(cfg.seed);
        let mut warm_rng = root.fork(2);
        let profiles = warm_profiles(&catalog, cfg.warmup_cases, &mut warm_rng);

        let (sub_tx, sub_rx) = mpsc::sync_channel::<Submission>(64);
        let (out_tx, out_rx) = mpsc::channel::<LiveOutcome>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let kernel_shutdown = Arc::clone(&shutdown);

        let kernel = std::thread::spawn(move || {
            let mut rng = SimRng::new(cfg.seed).fork(1);
            let mut sched =
                crate::registry::default_registry().build(&cfg.scheme, cfg.seed).unwrap();
            let opts = LiveOptions {
                drain_timeout: Duration::from_secs(30),
                poll: Duration::from_millis(2),
            };
            run_live(
                &cfg,
                &catalog,
                profiles,
                sched.as_mut(),
                &mut rng,
                sub_rx,
                kernel_shutdown,
                &opts,
                Box::new(move |o| {
                    let _ = out_tx.send(o);
                }),
            )
        });

        const N: u64 = 40;
        for token in 0..N {
            sub_tx.send(Submission { token, rtype: RequestTypeId((token % 3) as u32) }).unwrap();
        }
        let mut outcomes = Vec::new();
        for _ in 0..N {
            outcomes.push(out_rx.recv_timeout(Duration::from_secs(60)).expect("outcome per token"));
        }
        shutdown.store(true, Ordering::Relaxed);
        drop(sub_tx);
        let out = kernel.join().expect("kernel thread");

        assert_eq!(outcomes.len() as u64, N);
        let mut tokens: Vec<u64> = outcomes.iter().map(|o| o.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..N).collect::<Vec<_>>(), "every token answered once");
        assert!(
            outcomes.iter().all(|o| matches!(o.kind, OutcomeKind::Completed { .. })),
            "an unloaded live kernel completes everything: {outcomes:?}"
        );
        assert_eq!(out.arrived as u64, N);
        assert!(out.invariant_report.is_none(), "{:?}", out.invariant_report);
    }
}
