//! Experiment configuration (Table IV's simulation platform, Section V's
//! run parameters).

use crate::registry::SchemeSpec;
use mlp_cluster::ShardPolicy;
use mlp_faults::FaultConfig;
use mlp_model::{RequestTypeId, ResourceVector, VolatilityClass};
use mlp_sched::OverloadConfig;
use mlp_workload::WorkloadPattern;
use serde::{Deserialize, Serialize};

/// Which request mix a run offers (Section IV / Figs 13–14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MixSpec {
    /// All five types, each volatility category carrying equal mass.
    Balanced,
    /// Only the request types of one volatility class (Fig 13's separated
    /// streams).
    SingleClass(VolatilityClass),
    /// `ratio` of high-V_r requests, the rest split low/mid (Fig 14).
    HighRatio(f64),
}

impl MixSpec {
    /// Resolves the mix into `(type, weight)` pairs against a catalog.
    pub fn resolve(self, catalog: &mlp_model::RequestCatalog) -> Vec<(RequestTypeId, f64)> {
        match self {
            MixSpec::Balanced => catalog.balanced_mix(),
            MixSpec::SingleClass(c) => catalog.class_mix(c),
            MixSpec::HighRatio(r) => catalog.high_ratio_mix(r),
        }
    }
}

/// Full description of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentConfig {
    /// Scheduling scheme under test, by registry spec. Accepts the legacy
    /// `Scheme` enum values via `Into`, spec strings (`"vmlp:healing=off"`),
    /// and explicit [`SchemeSpec`]s.
    pub scheme: SchemeSpec,
    /// Number of machines (the paper simulates 100).
    pub machines: usize,
    /// Per-machine capacity (defaults to the Table IV worker shape).
    pub machine_capacity: ResourceVector,
    /// Offered-load pattern.
    pub pattern: WorkloadPattern,
    /// Peak arrival rate, requests/second (the paper caps at 1000).
    pub max_rate: f64,
    /// Run horizon in seconds (the paper's scheduling period is 100 s).
    pub horizon_s: f64,
    /// Request mix.
    pub mix: MixSpec,
    /// Root RNG seed (arrivals, execution noise, comm noise all fork from
    /// this, so runs are exactly reproducible).
    pub seed: u64,
    /// Profiling cases recorded per request type before the run starts
    /// (the "historical traces" input of Fig 8).
    pub warmup_cases: usize,
    /// Utilization sampling period, seconds (Fig 11's curve resolution).
    pub sample_period_s: f64,
    /// Hard wall: the run drains in-flight requests after the horizon but
    /// never past `horizon_s × drain_factor`.
    pub drain_factor: f64,
    /// Heterogeneous-fleet extension (beyond the paper's homogeneous
    /// cluster): when set, `(count, scale)` turns the *last* `count`
    /// machines into a small tier with `capacity × scale`. `None` keeps
    /// the homogeneous setup.
    pub small_tier: Option<(usize, f64)>,
    /// Fault-injection model (robustness extension beyond the paper).
    /// Disabled by default: runs are byte-identical to pre-fault builds.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Records a structured decision-audit trail (admissions, deferrals,
    /// reorders, healing actions) retrievable from [`SimOutput`]. Off by
    /// default; never touches the RNG stream, so enabling it cannot change
    /// simulation results.
    ///
    /// [`SimOutput`]: crate::sim::SimOutput
    #[serde(default)]
    pub audit: bool,
    /// Runs the per-tick invariant auditor (occupancy conservation, grant
    /// ledger / run-state cross-checks). Default-off in release runs,
    /// default-on in `smoke()` so every test exercises it. Violations
    /// increment the `invariant_violations` metric and capture a repro
    /// dump in [`SimOutput::invariant_report`].
    ///
    /// [`SimOutput::invariant_report`]: crate::sim::SimOutput
    #[serde(default)]
    pub auditor: bool,
    /// Number of scheduling shards the cluster is partitioned into.
    /// `1` (the default) is the unsharded paper setup and is byte-identical
    /// to pre-shard builds; production-scale runs use `machines / 16`-ish
    /// so placement and healing scan a shard instead of the fleet. Clamped
    /// to `[1, machines]` at cluster build time.
    #[serde(default)]
    pub shards: usize,
    /// How machines are assigned to shards (round-robin or
    /// capacity-balanced). Irrelevant when `shards == 1`.
    #[serde(default)]
    pub shard_policy: ShardPolicy,
    /// Worker threads for per-tick shard work (parallel admission,
    /// telemetry, and auditing; DESIGN.md §16). `1` (the default) runs
    /// everything inline on the simulation thread; `0` means "all
    /// available cores". Results are bit-identical across worker counts —
    /// the thread count changes wall time, never the schedule.
    #[serde(default)]
    pub workers: usize,
    /// How far back reservation-ledger history is retained, in seconds.
    /// Each sampling tick prunes breakpoints older than `now − retention`;
    /// 2 s (the default, and the previously hardcoded value) comfortably
    /// covers the deepest deviation look-backs while keeping per-machine
    /// timelines bounded. Tighter windows shrink memory further and must
    /// still pass the invariant auditor.
    #[serde(default)]
    pub ledger_retention_s: f64,
    /// Open-loop request-count cap: `Some(n)` makes the experiment pull
    /// arrivals lazily from an [`OpenLoopSource`] until `n` requests (or
    /// the horizon, whichever first) instead of materializing the trace.
    /// `None` (the default) keeps the dense `generate_stream` path,
    /// byte-identical to earlier builds.
    ///
    /// [`OpenLoopSource`]: mlp_workload::OpenLoopSource
    #[serde(default)]
    pub max_requests: Option<u64>,
    /// Folds trace records into streaming aggregates instead of retaining
    /// them (constant memory; quantiles become P² estimates). Off by
    /// default: figure runs keep exact records.
    #[serde(default)]
    pub stream_stats: bool,
    /// Cap on execution cases retained per service in the profile store
    /// (ring-buffer semantics); `0` (the default) keeps the full history,
    /// byte-identical to earlier builds. Long soaks must bound this: the
    /// engine enriches the store with one case per completed span, and
    /// v-MLP's banded Δt estimator rebuilds a CDF over the whole retained
    /// window per admission — unbounded history means O(arrivals) memory
    /// *and* quadratic scheduling time.
    #[serde(default)]
    pub profile_retention: usize,
    /// Overload-resilience subsystem (flash-crowd surge shaping, admission
    /// control, retry budgets, circuit breakers, brownout tiers). Disabled
    /// by default: runs are byte-identical to pre-overload builds — the
    /// subsystem's RNG fork is never even created.
    #[serde(default)]
    pub overload: OverloadConfig,
}

/// Hand-written (the vendored derive errors on absent fields) so config
/// files predating the fault model or the audit flags keep loading: the
/// run-defining fields stay required, while `faults`, `audit`, and
/// `auditor` fall back to their disabled defaults when missing.
impl Deserialize for ExperimentConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn req<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            let got = match v.get(name) {
                Some(x) => Deserialize::from_value(x),
                None => Deserialize::absent(name),
            };
            got.map_err(|e| e.in_context(&format!("ExperimentConfig.{name}")))
        }
        fn opt<T: Deserialize>(
            v: &serde::Value,
            name: &str,
            fallback: T,
        ) -> Result<T, serde::Error> {
            match v.get(name) {
                Some(x) => Deserialize::from_value(x)
                    .map_err(|e| e.in_context(&format!("ExperimentConfig.{name}"))),
                None => Ok(fallback),
            }
        }
        Ok(ExperimentConfig {
            scheme: req(v, "scheme")?,
            machines: req(v, "machines")?,
            machine_capacity: req(v, "machine_capacity")?,
            pattern: req(v, "pattern")?,
            max_rate: req(v, "max_rate")?,
            horizon_s: req(v, "horizon_s")?,
            mix: req(v, "mix")?,
            seed: req(v, "seed")?,
            warmup_cases: req(v, "warmup_cases")?,
            sample_period_s: req(v, "sample_period_s")?,
            drain_factor: req(v, "drain_factor")?,
            small_tier: req(v, "small_tier")?,
            faults: req(v, "faults")?,
            audit: opt(v, "audit", false)?,
            auditor: opt(v, "auditor", false)?,
            shards: opt(v, "shards", 1)?,
            shard_policy: opt(v, "shard_policy", ShardPolicy::RoundRobin)?,
            workers: opt(v, "workers", 1)?,
            ledger_retention_s: opt(v, "ledger_retention_s", 2.0)?,
            max_requests: opt(v, "max_requests", None)?,
            stream_stats: opt(v, "stream_stats", false)?,
            profile_retention: opt(v, "profile_retention", 0)?,
            overload: opt(v, "overload", OverloadConfig::disabled())?,
        })
    }
}

impl ExperimentConfig {
    /// The paper-shaped default: 100 machines, L1 pattern, balanced mix.
    ///
    /// `max_rate` defaults to 1000 req/s like the paper; most figure
    /// binaries scale it down together with `machines` to keep laptop
    /// runtimes reasonable (the scheduler dynamics are per-machine-load
    /// driven, so scaling both preserves the regime).
    pub fn paper_default(scheme: impl Into<SchemeSpec>) -> Self {
        ExperimentConfig {
            scheme: scheme.into(),
            machines: 100,
            machine_capacity: ResourceVector::new(2.4, 2_500.0, 350.0),
            pattern: WorkloadPattern::L1Pulse,
            max_rate: 1000.0,
            horizon_s: 100.0,
            mix: MixSpec::Balanced,
            seed: 2022,
            warmup_cases: 100,
            sample_period_s: 1.0,
            drain_factor: 3.0,
            small_tier: None,
            faults: FaultConfig::disabled(),
            audit: false,
            auditor: false,
            shards: 1,
            shard_policy: ShardPolicy::RoundRobin,
            workers: 1,
            ledger_retention_s: 2.0,
            max_requests: None,
            stream_stats: false,
            profile_retention: 0,
            overload: OverloadConfig::disabled(),
        }
    }

    /// A laptop-scale configuration preserving the paper's per-machine
    /// load regime (peak ≈ 70 % of cluster CPU, sustained plateaus ≈ 50 %):
    /// 20 machines at 140 req/s peak over 40 s.
    pub fn small(scheme: impl Into<SchemeSpec>) -> Self {
        ExperimentConfig {
            machines: 20,
            max_rate: 140.0,
            horizon_s: 40.0,
            ..Self::paper_default(scheme)
        }
    }

    /// A tiny smoke-test configuration for unit/integration tests. The
    /// invariant auditor is on so every engine test cross-checks
    /// conservation laws for free.
    pub fn smoke(scheme: impl Into<SchemeSpec>) -> Self {
        ExperimentConfig {
            machines: 8,
            max_rate: 40.0,
            horizon_s: 8.0,
            warmup_cases: 30,
            auditor: true,
            ..Self::paper_default(scheme)
        }
    }

    /// Builder-style override helpers.
    pub fn with_pattern(mut self, p: WorkloadPattern) -> Self {
        self.pattern = p;
        self
    }

    /// Sets the request mix.
    pub fn with_mix(mut self, m: MixSpec) -> Self {
        self.mix = m;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the peak rate.
    pub fn with_rate(mut self, r: f64) -> Self {
        self.max_rate = r;
        self
    }

    /// Enables the heterogeneous two-tier fleet extension.
    pub fn with_small_tier(mut self, count: usize, scale: f64) -> Self {
        self.small_tier = Some((count, scale));
        self
    }

    /// Sets the fault-injection model.
    pub fn with_faults(mut self, f: FaultConfig) -> Self {
        self.faults = f;
        self
    }

    /// Enables or disables the decision-audit trail.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Enables or disables the per-tick invariant auditor.
    pub fn with_auditor(mut self, on: bool) -> Self {
        self.auditor = on;
        self
    }

    /// Partitions the cluster into `k` scheduling shards under `policy`.
    pub fn with_shards(mut self, k: usize, policy: ShardPolicy) -> Self {
        self.shards = k;
        self.shard_policy = policy;
        self
    }

    /// Sets the shard worker-thread count (`0` = all cores, `1` = inline;
    /// see [`Self::workers`]).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the reservation-ledger retention window, seconds.
    pub fn with_ledger_retention(mut self, secs: f64) -> Self {
        self.ledger_retention_s = secs;
        self
    }

    /// Caps the run at `n` open-loop requests (switches the experiment to
    /// the lazy arrival source; see [`Self::max_requests`]).
    pub fn with_max_requests(mut self, n: u64) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// Enables or disables streaming (constant-memory) trace statistics.
    pub fn with_stream_stats(mut self, on: bool) -> Self {
        self.stream_stats = on;
        self
    }

    /// Caps the per-service profile history at `n` recent cases (`0` =
    /// unbounded; see [`Self::profile_retention`]).
    pub fn with_profile_retention(mut self, n: usize) -> Self {
        self.profile_retention = n;
        self
    }

    /// Sets the overload-resilience configuration (see [`OverloadConfig`]).
    pub fn with_overload(mut self, o: OverloadConfig) -> Self {
        self.overload = o;
        self
    }

    /// Builds the cluster this config describes.
    pub fn build_cluster(&self) -> mlp_cluster::Cluster {
        let cluster = match self.small_tier {
            None => mlp_cluster::Cluster::homogeneous(self.machines, self.machine_capacity),
            Some((count, scale)) => {
                let count = count.min(self.machines);
                mlp_cluster::Cluster::two_tier(
                    self.machines - count,
                    self.machine_capacity,
                    count,
                    self.machine_capacity * scale,
                )
            }
        };
        cluster.with_shards(self.shards.max(1), self.shard_policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use mlp_model::RequestCatalog;

    #[test]
    fn paper_default_matches_section5() {
        let c = ExperimentConfig::paper_default(Scheme::VMlp);
        assert_eq!(c.machines, 100);
        assert_eq!(c.max_rate, 1000.0);
        assert_eq!(c.horizon_s, 100.0);
    }

    #[test]
    fn builders_compose() {
        let c = ExperimentConfig::small(Scheme::FairSched)
            .with_pattern(WorkloadPattern::L3PeriodicWide)
            .with_seed(7)
            .with_rate(120.0)
            .with_mix(MixSpec::SingleClass(VolatilityClass::High));
        assert_eq!(c.pattern, WorkloadPattern::L3PeriodicWide);
        assert_eq!(c.seed, 7);
        assert_eq!(c.max_rate, 120.0);
        assert_eq!(c.mix, MixSpec::SingleClass(VolatilityClass::High));
    }

    #[test]
    fn mixes_resolve_to_weights() {
        let cat = RequestCatalog::paper();
        for mix in
            [MixSpec::Balanced, MixSpec::SingleClass(VolatilityClass::Mid), MixSpec::HighRatio(0.5)]
        {
            let resolved = mix.resolve(&cat);
            assert!(!resolved.is_empty());
            let total: f64 = resolved.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{mix:?} sums to {total}");
        }
    }

    #[test]
    fn two_tier_cluster_built_from_config() {
        let c = ExperimentConfig::smoke(Scheme::VMlp).with_small_tier(3, 0.5);
        let cluster = c.build_cluster();
        assert_eq!(cluster.len(), 8);
        let big = cluster.machine(mlp_cluster::MachineId(0)).capacity;
        let small = cluster.machine(mlp_cluster::MachineId(7)).capacity;
        assert!((small.cpu - big.cpu * 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_serializes() {
        let c = ExperimentConfig::smoke(Scheme::PartProfile);
        let js = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn configs_predating_audit_and_fault_fields_still_load() {
        let c = ExperimentConfig::smoke(Scheme::VMlp);
        let serde_json::Value::Object(entries) = serde_json::to_value(&c).unwrap() else {
            panic!("config serializes to an object")
        };
        // An "old" config file: the same JSON without the fields added
        // after the original schema.
        let old = serde_json::Value::Object(
            entries
                .into_iter()
                .filter(|(k, _)| {
                    !matches!(
                        k.as_str(),
                        "faults"
                            | "audit"
                            | "auditor"
                            | "shards"
                            | "shard_policy"
                            | "workers"
                            | "ledger_retention_s"
                            | "max_requests"
                            | "stream_stats"
                            | "profile_retention"
                            | "overload"
                    )
                })
                .collect(),
        );
        let back: ExperimentConfig = serde_json::from_value(old).unwrap();
        assert!(!back.faults.is_active());
        assert!(!back.audit);
        assert!(!back.auditor);
        assert_eq!(back.shards, 1, "pre-shard configs load as unsharded");
        assert_eq!(back.shard_policy, ShardPolicy::RoundRobin);
        assert_eq!(back.workers, 1, "pre-pool configs run inline");
        assert_eq!(back.ledger_retention_s, 2.0, "pre-knob configs keep the old 2 s window");
        assert_eq!(back.max_requests, None, "pre-streaming configs use the dense path");
        assert!(!back.stream_stats);
        assert_eq!(back.profile_retention, 0, "pre-knob configs keep unbounded history");
        assert!(!back.overload.enabled, "pre-overload configs load with the subsystem off");
        assert_eq!(back.machines, c.machines);
        assert_eq!(back.seed, c.seed);
    }

    #[test]
    fn sharded_config_roundtrips_and_builds_partitioned_cluster() {
        let c = ExperimentConfig::smoke(Scheme::VMlp).with_shards(4, ShardPolicy::CapacityBalanced);
        let js = serde_json::to_string(&c).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(back, c);
        let cluster = c.build_cluster();
        assert_eq!(cluster.shard_count(), 4);
        assert!(cluster.shards().check_partition(cluster.machines()).is_ok());
        // Defaults build a single shard, and shards is clamped to machines.
        assert_eq!(ExperimentConfig::smoke(Scheme::VMlp).build_cluster().shard_count(), 1);
        let over = ExperimentConfig::smoke(Scheme::VMlp)
            .with_shards(1000, ShardPolicy::RoundRobin)
            .build_cluster();
        assert_eq!(over.shard_count(), 8, "clamped to the machine count");
    }

    #[test]
    fn faults_default_disabled_and_roundtrip() {
        let c = ExperimentConfig::smoke(Scheme::VMlp);
        assert!(!c.faults.is_active());
        let stormy = c.with_faults(FaultConfig::storm());
        assert!(stormy.faults.is_active());
        let js = serde_json::to_string(&stormy).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&js).unwrap();
        assert_eq!(back, stormy);
    }
}
