//! Parallel experiment sweeps (std scoped threads).
//!
//! The evaluation grid — 5 schemes × 3 patterns × 3 volatility streams ×
//! seeds — is embarrassingly parallel. Each configuration carries its own
//! seed, so results are independent of worker scheduling, and a bounded
//! worker pool keeps memory proportional to core count.

use crate::config::ExperimentConfig;
use crate::runner::{run_experiment_with_catalog, ExperimentResult};
use mlp_model::RequestCatalog;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs every configuration, fanning out over up to `workers` threads
/// (0 = number of available cores). Results come back in input order.
pub fn run_all(configs: &[ExperimentConfig], workers: usize) -> Vec<ExperimentResult> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        workers
    };
    let workers = workers.min(configs.len().max(1));
    let catalog = RequestCatalog::paper();

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ExperimentResult>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    let slot_refs: Vec<std::sync::Mutex<&mut Option<ExperimentResult>>> =
        slots.iter_mut().map(std::sync::Mutex::new).collect();

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let result = run_experiment_with_catalog(&configs[i], &catalog);
                **slot_refs[i].lock().expect("experiment worker panicked") = Some(result);
            });
        }
    });

    drop(slot_refs);
    slots.into_iter().map(|r| r.expect("every config produces a result")).collect()
}

/// Convenience: run one scheme-per-config comparison and pair each result
/// with its scheme label.
pub fn run_labeled(
    configs: &[ExperimentConfig],
    workers: usize,
) -> Vec<(&'static str, ExperimentResult)> {
    run_all(configs, workers).into_iter().map(|r| (r.config.scheme.label(), r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    #[test]
    fn parallel_matches_sequential() {
        let configs: Vec<ExperimentConfig> = [Scheme::FairSched, Scheme::VMlp]
            .into_iter()
            .map(|s| ExperimentConfig::smoke(s).with_seed(5))
            .collect();
        let par = run_all(&configs, 2);
        let seq: Vec<_> = configs.iter().map(crate::runner::run_experiment).collect();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.completed, s.completed);
            assert_eq!(p.latency_ms, s.latency_ms);
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let configs: Vec<ExperimentConfig> =
            Scheme::PAPER.into_iter().map(|s| ExperimentConfig::smoke(s).with_seed(1)).collect();
        let labeled = run_labeled(&configs, 0);
        let labels: Vec<&str> = labeled.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["FairSched", "CurSched", "PartProfile", "FullProfile", "v-MLP"]);
    }

    #[test]
    fn empty_config_list() {
        assert!(run_all(&[], 4).is_empty());
    }
}
