//! Parallel experiment sweeps (std scoped threads).
//!
//! The evaluation grid — 5 schemes × 3 patterns × 3 volatility streams ×
//! seeds — is embarrassingly parallel. Each configuration carries its own
//! seed, so results are independent of worker scheduling, and a bounded
//! worker pool keeps memory proportional to core count.

use crate::config::ExperimentConfig;
use crate::experiment::Experiment;
use crate::runner::ExperimentResult;
use mlp_model::RequestCatalog;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs every configuration, fanning out over up to `workers` threads
/// (0 = number of available cores). Results come back in input order.
pub fn run_all(configs: &[ExperimentConfig], workers: usize) -> Vec<ExperimentResult> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        workers
    };
    let workers = workers.min(configs.len().max(1));
    let catalog = RequestCatalog::paper();

    // Workers pull indices from a shared counter and send `(index, result)`
    // pairs over a channel; the scope exit joins every worker, after which
    // results are reassembled into input order.
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, ExperimentResult)>();

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let catalog = &catalog;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let result = Experiment::from_config(configs[i].clone())
                    .catalog(catalog)
                    .run()
                    .expect("sweep configs are valid");
                tx.send((i, result)).expect("collector outlives the scope");
            });
        }
    });
    drop(tx); // the scope's workers are joined; close our own sender

    let mut slots: Vec<Option<ExperimentResult>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    for (i, result) in rx {
        slots[i] = Some(result);
    }
    slots.into_iter().map(|r| r.expect("every config produces a result")).collect()
}

/// Convenience: run one scheme-per-config comparison and pair each result
/// with its registry-derived display name (e.g. `v-MLP[healing=off]` for
/// an ablated spec, not the old opaque `v-MLP*`).
pub fn run_labeled(
    configs: &[ExperimentConfig],
    workers: usize,
) -> Vec<(String, ExperimentResult)> {
    run_all(configs, workers).into_iter().map(|r| (r.config.scheme.display_name(), r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    #[test]
    fn parallel_matches_sequential() {
        let configs: Vec<ExperimentConfig> = [Scheme::FairSched, Scheme::VMlp]
            .into_iter()
            .map(|s| ExperimentConfig::smoke(s).with_seed(5))
            .collect();
        let par = run_all(&configs, 2);
        let seq: Vec<_> =
            configs.iter().map(|c| Experiment::from_config(c.clone()).run().unwrap()).collect();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.completed, s.completed);
            assert_eq!(p.latency_ms, s.latency_ms);
        }
    }

    #[test]
    fn results_preserve_input_order() {
        let configs: Vec<ExperimentConfig> =
            Scheme::PAPER.into_iter().map(|s| ExperimentConfig::smoke(s).with_seed(1)).collect();
        let labeled = run_labeled(&configs, 0);
        let labels: Vec<&str> = labeled.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["FairSched", "CurSched", "PartProfile", "FullProfile", "v-MLP"]);
    }

    #[test]
    fn empty_config_list() {
        assert!(run_all(&[], 4).is_empty());
    }
}
