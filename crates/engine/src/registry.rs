//! Scheduler registry: name + typed params → `Box<dyn Scheduler>`.
//!
//! Scheduler construction used to be a closed `Scheme` enum; adding a
//! contender or an ablation sweep meant editing engine source. The
//! registry replaces that with an open factory table: a [`SchemeSpec`]
//! names a registered scheduler and carries typed, validated
//! [`SchedulerParams`]; [`SchedulerRegistry::build`] resolves the name,
//! rejects unknown names and unknown/ill-typed params with
//! [`Error::InvalidConfig`] (listing the registered names), and invokes
//! the entry's factory with a [`BuildCtx`] carrying the experiment seed.
//!
//! Every built-in — the four Table VI baselines, v-MLP with all its
//! ablation switches, and the local-search contender `SearchSched` — is
//! pre-registered in [`default_registry`]. Out-of-tree schedulers
//! register through [`SchedulerRegistry::register`] on a custom registry
//! handed to [`Experiment::registry`](crate::Experiment::registry).
//!
//! The old [`Scheme`](crate::Scheme) enum remains as a thin deprecated
//! shim over this module, so fixed-seed figures stay byte-identical.

use crate::error::Error;
use mlp_core::organizer::DtPolicy;
use mlp_core::{VMlpConfig, VMlpScheduler};
use mlp_sched::{
    CurSched, FairSched, FullProfile, PartProfile, Scheduler, SearchConfig, SearchSched,
};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

/// One typed scheduler parameter value.
///
/// Spec strings parse tokens in this order: `on`/`true` and `off`/`false`
/// become booleans, then integers, then floats, and anything else stays a
/// string. Display is the exact inverse, so spec strings round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A flag (`on`/`off` in spec strings).
    Bool(bool),
    /// An integer count or id.
    Int(i64),
    /// A real-valued knob.
    Float(f64),
    /// An enumerated choice (e.g. `dt_policy=always-p99`).
    Str(String),
}

impl ParamValue {
    /// Parses one `k=v` value token from a spec string.
    pub fn parse_token(tok: &str) -> ParamValue {
        match tok {
            "on" | "true" => return ParamValue::Bool(true),
            "off" | "false" => return ParamValue::Bool(false),
            _ => {}
        }
        if let Ok(i) = tok.parse::<i64>() {
            return ParamValue::Int(i);
        }
        if let Ok(f) = tok.parse::<f64>() {
            return ParamValue::Float(f);
        }
        ParamValue::Str(tok.to_string())
    }

    fn type_name(&self) -> &'static str {
        match self {
            ParamValue::Bool(_) => "bool",
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Str(_) => "string",
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Bool(true) => f.write_str("on"),
            ParamValue::Bool(false) => f.write_str("off"),
            ParamValue::Int(i) => write!(f, "{i}"),
            // `{:?}` keeps a trailing `.0`, so floats stay floats on
            // re-parse ("margin=1.0" round-trips as Float, not Int).
            ParamValue::Float(x) => write!(f, "{x:?}"),
            ParamValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for ParamValue {
    fn from(b: bool) -> Self {
        ParamValue::Bool(b)
    }
}
impl From<i64> for ParamValue {
    fn from(i: i64) -> Self {
        ParamValue::Int(i)
    }
}
impl From<usize> for ParamValue {
    fn from(n: usize) -> Self {
        ParamValue::Int(n as i64)
    }
}
impl From<f64> for ParamValue {
    fn from(x: f64) -> Self {
        ParamValue::Float(x)
    }
}
impl From<&str> for ParamValue {
    fn from(s: &str) -> Self {
        ParamValue::Str(s.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(s: String) -> Self {
        ParamValue::Str(s)
    }
}

impl Serialize for ParamValue {
    fn to_value(&self) -> Value {
        match self {
            ParamValue::Bool(b) => b.to_value(),
            ParamValue::Int(i) => i.to_value(),
            ParamValue::Float(x) => x.to_value(),
            ParamValue::Str(s) => s.to_value(),
        }
    }
}

impl Deserialize for ParamValue {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Bool(b) => Ok(ParamValue::Bool(*b)),
            Value::Num(_) => {
                // Canonicalize numbers: exact integers become Int so JSON
                // `3` and spec-string `3` compare equal.
                if let Some(i) = v.as_i64() {
                    Ok(ParamValue::Int(i))
                } else {
                    Ok(ParamValue::Float(v.as_f64().expect("numbers convert to f64")))
                }
            }
            Value::Str(s) => Ok(ParamValue::parse_token(s)),
            other => Err(serde::Error::custom(format!(
                "ParamValue: expected bool, number, or string, got {}",
                other.kind()
            ))),
        }
    }
}

/// Typed, validated parameters for one scheduler instance.
///
/// A sorted map, so [`fmt::Display`] of a [`SchemeSpec`] — and therefore
/// every derived display name and serialized sweep file — is canonical
/// regardless of insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerParams(BTreeMap<String, ParamValue>);

impl SchedulerParams {
    /// No parameters: every knob at the scheduler's default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insert.
    pub fn with(mut self, key: &str, value: impl Into<ParamValue>) -> Self {
        self.0.insert(key.to_string(), value.into());
        self
    }

    /// True when no parameter was set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.0.get(key)
    }

    /// Iterates `(key, value)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Typed read: a flag, defaulting when absent.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(ParamValue::Bool(b)) => Ok(*b),
            Some(other) => {
                Err(format!("param `{key}` expects on/off, got {} `{other}`", other.type_name()))
            }
        }
    }

    /// Typed read: a non-negative count, defaulting when absent.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(ParamValue::Int(i)) if *i >= 0 => Ok(*i as usize),
            Some(other) => Err(format!(
                "param `{key}` expects a non-negative integer, got {} `{other}`",
                other.type_name()
            )),
        }
    }

    /// Typed read: a float (integers widen), defaulting when absent.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(ParamValue::Float(x)) => Ok(*x),
            Some(ParamValue::Int(i)) => Ok(*i as f64),
            Some(other) => {
                Err(format!("param `{key}` expects a number, got {} `{other}`", other.type_name()))
            }
        }
    }

    /// Typed read: an enumerated string choice, defaulting when absent.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> Result<&'a str, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(ParamValue::Str(s)) => Ok(s.as_str()),
            Some(other) => {
                Err(format!("param `{key}` expects a string, got {} `{other}`", other.type_name()))
            }
        }
    }

    /// Rejects any key outside `known` (factories call this first, so a
    /// typo'd param is an [`Error::InvalidConfig`], not a silent no-op).
    pub fn check_keys(&self, known: &[&str]) -> Result<(), String> {
        for k in self.0.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown param `{k}` (known params: {})", known.join(", ")));
            }
        }
        Ok(())
    }
}

impl Serialize for SchedulerParams {
    fn to_value(&self) -> Value {
        Value::Object(self.0.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl Deserialize for SchedulerParams {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let Value::Object(entries) = v else {
            return Err(serde::Error::custom(format!(
                "SchedulerParams: expected object, got {}",
                v.kind()
            )));
        };
        let mut map = BTreeMap::new();
        for (k, val) in entries {
            let pv = ParamValue::from_value(val)
                .map_err(|e| e.in_context(&format!("SchedulerParams.{k}")))?;
            map.insert(k.clone(), pv);
        }
        Ok(SchedulerParams(map))
    }
}

/// Lowercases and strips `-`/`_`, so `v-MLP`, `vmlp`, and `FairSched` /
/// `fairsched` all address the same registry entry.
pub fn canonical_name(name: &str) -> String {
    name.chars().filter(|c| *c != '-' && *c != '_').map(|c| c.to_ascii_lowercase()).collect()
}

/// A scheduler by registered name plus typed parameters — the open
/// replacement for the closed `Scheme` enum.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSpec {
    /// Canonical registry name (lowercase, separators stripped).
    name: String,
    /// Typed knobs; empty means "the scheduler's defaults".
    params: SchedulerParams,
}

impl SchemeSpec {
    /// A spec with default params.
    pub fn named(name: &str) -> Self {
        SchemeSpec { name: canonical_name(name), params: SchedulerParams::new() }
    }

    /// A spec with explicit params.
    pub fn with_params(name: &str, params: SchedulerParams) -> Self {
        SchemeSpec { name: canonical_name(name), params }
    }

    /// The canonical scheme name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The typed parameters.
    pub fn params(&self) -> &SchedulerParams {
        &self.params
    }

    /// Parses `"name"` or `"name:k=v,k2=v2"`. A bare key (no `=`) is a
    /// flag set to `on`. Name resolution happens later, at registry
    /// build/validate time — parse only checks the spec's shape.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (name, rest) = match spec.split_once(':') {
            None => (spec.trim(), None),
            Some((n, r)) => (n.trim(), Some(r)),
        };
        if name.is_empty() {
            return Err(format!("scheme spec `{spec}` has an empty name"));
        }
        let mut params = SchedulerParams::new();
        if let Some(rest) = rest {
            for tok in rest.split(',') {
                let tok = tok.trim();
                if tok.is_empty() {
                    return Err(format!("scheme spec `{spec}` has an empty param token"));
                }
                let (k, v) = match tok.split_once('=') {
                    None => (tok, ParamValue::Bool(true)),
                    Some((k, v)) => (k.trim(), ParamValue::parse_token(v.trim())),
                };
                if k.is_empty() {
                    return Err(format!("scheme spec `{spec}` has an empty param key"));
                }
                if params.get(k).is_some() {
                    return Err(format!("scheme spec `{spec}` sets param `{k}` twice"));
                }
                params = params.with(k, v);
            }
        }
        Ok(SchemeSpec::with_params(name, params))
    }

    /// Human-facing label from the default registry (e.g.
    /// `v-MLP[healing=off]`); falls back to the canonical spec string for
    /// unregistered names or invalid params.
    pub fn display_name(&self) -> String {
        default_registry().display_name(self).unwrap_or_else(|_| self.to_string())
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        let mut sep = ':';
        for (k, v) in self.params.iter() {
            write!(f, "{sep}{k}={v}")?;
            sep = ',';
        }
        Ok(())
    }
}

/// Ergonomic conversion for static spec strings in tests and binaries
/// (`Experiment::from_config(ExperimentConfig::smoke("vmlp"))`). Panics on
/// a malformed spec — use [`SchemeSpec::parse`] for untrusted input.
impl From<&str> for SchemeSpec {
    fn from(spec: &str) -> Self {
        SchemeSpec::parse(spec).expect("static scheme spec parses")
    }
}

impl Serialize for SchemeSpec {
    fn to_value(&self) -> Value {
        // Spec-string form whenever it round-trips; the object form is
        // the escape hatch for string params that collide with the spec
        // grammar.
        let ambiguous = self.params.iter().any(
            |(_, v)| matches!(v, ParamValue::Str(s) if s.contains([',', ':', '=']) || s.is_empty()),
        );
        if ambiguous {
            Value::Object(vec![
                ("name".to_string(), self.name.to_value()),
                ("params".to_string(), self.params.to_value()),
            ])
        } else {
            Value::Str(self.to_string())
        }
    }
}

impl Deserialize for SchemeSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            // Spec strings and the legacy unit variants (`"VMlp"`,
            // `"FairSched"`, …) — canonicalization makes the enum names
            // parse to the right registry entries for free.
            Value::Str(s) => SchemeSpec::parse(s).map_err(serde::Error::custom),
            Value::Object(entries) => {
                if let Some(name) = v.get("name") {
                    let name = name
                        .as_str()
                        .ok_or_else(|| serde::Error::custom("SchemeSpec.name: expected string"))?;
                    let params = match v.get("params") {
                        None => SchedulerParams::new(),
                        Some(p) => SchedulerParams::from_value(p)
                            .map_err(|e| e.in_context("SchemeSpec.params"))?,
                    };
                    return Ok(SchemeSpec::with_params(name, params));
                }
                // Legacy externally-tagged `{"VMlpCustom": <VMlpConfig>}`.
                if let [(tag, cfg)] = entries.as_slice() {
                    if tag == "VMlpCustom" {
                        let cfg = VMlpConfig::from_value(cfg)
                            .map_err(|e| e.in_context("SchemeSpec.VMlpCustom"))?;
                        return Ok(SchemeSpec::with_params("vmlp", vmlp_params_from_config(cfg)));
                    }
                }
                Err(serde::Error::custom(
                    "SchemeSpec: expected a spec string, {name, params}, or a legacy Scheme value",
                ))
            }
            other => Err(serde::Error::custom(format!(
                "SchemeSpec: expected string or object, got {}",
                other.kind()
            ))),
        }
    }
}

/// Context handed to scheduler factories at build time.
#[derive(Debug, Clone, Copy)]
pub struct BuildCtx {
    /// The experiment's root RNG seed; seeded schedulers must fork their
    /// streams from this so runs stay reproducible.
    pub seed: u64,
}

/// A registered scheduler factory: typed params + build context in,
/// boxed scheduler out (errors are param-validation messages).
pub type BuildFn = fn(&SchedulerParams, &BuildCtx) -> Result<Box<dyn Scheduler>, String>;

/// One registered scheduler: name, docs, known params, and factories.
#[derive(Clone)]
pub struct RegistryEntry {
    /// Canonical name (must already be in [`canonical_name`] form).
    pub name: &'static str,
    /// One-line description for `--help` style listings.
    pub summary: &'static str,
    /// Every param key the factory understands (unknown keys error).
    pub param_keys: &'static [&'static str],
    /// Builds the scheduler; errors are param-validation messages.
    pub build: BuildFn,
    /// Derives the display label for a param set (e.g. `v-MLP[healing=off]`).
    pub display: fn(&SchedulerParams) -> Result<String, String>,
}

/// The scheme-name → factory table.
pub struct SchedulerRegistry {
    entries: Vec<RegistryEntry>,
}

impl SchedulerRegistry {
    /// An empty registry (out-of-tree embedders start here).
    pub fn empty() -> Self {
        SchedulerRegistry { entries: Vec::new() }
    }

    /// A registry with every built-in scheme registered.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        for e in builtin_entries() {
            r.register(e).expect("built-in names are unique");
        }
        r
    }

    /// Registers a scheduler; duplicate names are an error.
    pub fn register(&mut self, entry: RegistryEntry) -> Result<(), Error> {
        if entry.name != canonical_name(entry.name) {
            return Err(Error::InvalidConfig(format!(
                "registry name `{}` is not canonical (want `{}`)",
                entry.name,
                canonical_name(entry.name)
            )));
        }
        if self.resolve(entry.name).is_some() {
            return Err(Error::InvalidConfig(format!(
                "scheme `{}` is already registered",
                entry.name
            )));
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Registered canonical names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// Looks up an entry by (canonicalized) name.
    pub fn resolve(&self, name: &str) -> Option<&RegistryEntry> {
        let canon = canonical_name(name);
        self.entries.iter().find(|e| e.name == canon)
    }

    fn entry_for(&self, spec: &SchemeSpec) -> Result<&RegistryEntry, Error> {
        self.resolve(spec.name()).ok_or_else(|| {
            Error::InvalidConfig(format!(
                "unknown scheme `{}`; registered schemes: {}",
                spec.name(),
                self.names().join(", ")
            ))
        })
    }

    /// Builds the scheduler a spec describes. Unknown names, unknown
    /// params, and ill-typed params all surface as
    /// [`Error::InvalidConfig`].
    pub fn build(&self, spec: &SchemeSpec, seed: u64) -> Result<Box<dyn Scheduler>, Error> {
        let entry = self.entry_for(spec)?;
        spec.params()
            .check_keys(entry.param_keys)
            .and_then(|()| (entry.build)(spec.params(), &BuildCtx { seed }))
            .map_err(|msg| Error::InvalidConfig(format!("scheme `{}`: {msg}", entry.name)))
    }

    /// The display label for a spec (e.g. `v-MLP[healing=off]`).
    pub fn display_name(&self, spec: &SchemeSpec) -> Result<String, Error> {
        let entry = self.entry_for(spec)?;
        spec.params()
            .check_keys(entry.param_keys)
            .and_then(|()| (entry.display)(spec.params()))
            .map_err(|msg| Error::InvalidConfig(format!("scheme `{}`: {msg}", entry.name)))
    }

    /// Full validation: the name resolves and the params build.
    pub fn validate_spec(&self, spec: &SchemeSpec) -> Result<(), Error> {
        self.build(spec, 0).map(|_| ())
    }
}

/// The process-wide registry of built-in schemes.
pub fn default_registry() -> &'static SchedulerRegistry {
    static REGISTRY: OnceLock<SchedulerRegistry> = OnceLock::new();
    REGISTRY.get_or_init(SchedulerRegistry::builtin)
}

// ---------------------------------------------------------------------------
// Built-in entries
// ---------------------------------------------------------------------------

/// Zero-param baselines share this entry shape; a macro (not a helper fn)
/// because `RegistryEntry.build` is a plain fn pointer and cannot close
/// over the concrete scheduler type.
macro_rules! baseline_entry {
    ($name:literal, $summary:literal, $label:literal, $ty:ty) => {
        RegistryEntry {
            name: $name,
            summary: $summary,
            param_keys: &[],
            build: |params, _ctx| {
                params.check_keys(&[])?;
                Ok(Box::new(<$ty>::new()) as Box<dyn Scheduler>)
            },
            display: |_params| Ok($label.to_string()),
        }
    };
}

const VMLP_PARAM_KEYS: &[&str] = &[
    "healing",
    "reorder",
    "queue_switch",
    "delay_slot",
    "resource_stretch",
    "trim_reservations",
    "heal_fanout",
    "dt_policy",
    "unindexed_reorder",
];

const SEARCH_PARAM_KEYS: &[&str] = &["neighborhood", "window", "iters", "round_budget", "margin"];

fn dt_policy_from_str(s: &str) -> Result<DtPolicy, String> {
    match canonical_name(s).as_str() {
        "banded" => Ok(DtPolicy::Banded),
        "alwaysmean" => Ok(DtPolicy::AlwaysMean),
        "alwaysp99" => Ok(DtPolicy::AlwaysP99),
        _ => {
            Err(format!("param `dt_policy` expects banded, always-mean, or always-p99, got `{s}`"))
        }
    }
}

fn dt_policy_str(p: DtPolicy) -> &'static str {
    match p {
        DtPolicy::Banded => "banded",
        DtPolicy::AlwaysMean => "always-mean",
        DtPolicy::AlwaysP99 => "always-p99",
    }
}

/// Lowers typed params onto [`VMlpConfig::paper`]. The aggregate
/// `healing` flag drives both healing switches; the specific flags win
/// when both are given.
fn vmlp_config_from_params(params: &SchedulerParams) -> Result<VMlpConfig, String> {
    let mut cfg = VMlpConfig::paper();
    if params.get("healing").is_some() {
        let on = params.bool_or("healing", true)?;
        cfg.delay_slot = on;
        cfg.resource_stretch = on;
    }
    cfg.reorder = params.bool_or("reorder", cfg.reorder)?;
    cfg.queue_switch = params.bool_or("queue_switch", cfg.queue_switch)?;
    cfg.delay_slot = params.bool_or("delay_slot", cfg.delay_slot)?;
    cfg.resource_stretch = params.bool_or("resource_stretch", cfg.resource_stretch)?;
    cfg.trim_reservations = params.bool_or("trim_reservations", cfg.trim_reservations)?;
    cfg.heal_fanout = params.usize_or("heal_fanout", cfg.heal_fanout)?;
    cfg.dt_policy = dt_policy_from_str(params.str_or("dt_policy", dt_policy_str(cfg.dt_policy))?)?;
    cfg.unindexed_reorder = params.bool_or("unindexed_reorder", cfg.unindexed_reorder)?;
    Ok(cfg)
}

/// Inverse of [`vmlp_config_from_params`]: the minimal param set whose
/// application to `paper()` reproduces `cfg`. Used by the `Scheme` shim
/// and the legacy `VMlpCustom` deserializer.
pub(crate) fn vmlp_params_from_config(cfg: VMlpConfig) -> SchedulerParams {
    let paper = VMlpConfig::paper();
    let mut p = SchedulerParams::new();
    if !cfg.delay_slot && !cfg.resource_stretch && (paper.delay_slot || paper.resource_stretch) {
        p = p.with("healing", false);
    } else {
        if cfg.delay_slot != paper.delay_slot {
            p = p.with("delay_slot", cfg.delay_slot);
        }
        if cfg.resource_stretch != paper.resource_stretch {
            p = p.with("resource_stretch", cfg.resource_stretch);
        }
    }
    if cfg.reorder != paper.reorder {
        p = p.with("reorder", cfg.reorder);
    }
    if cfg.queue_switch != paper.queue_switch {
        p = p.with("queue_switch", cfg.queue_switch);
    }
    if cfg.trim_reservations != paper.trim_reservations {
        p = p.with("trim_reservations", cfg.trim_reservations);
    }
    if cfg.heal_fanout != paper.heal_fanout {
        p = p.with("heal_fanout", cfg.heal_fanout);
    }
    if cfg.dt_policy != paper.dt_policy {
        p = p.with("dt_policy", dt_policy_str(cfg.dt_policy));
    }
    if cfg.unindexed_reorder != paper.unindexed_reorder {
        p = p.with("unindexed_reorder", cfg.unindexed_reorder);
    }
    p
}

fn vmlp_display(params: &SchedulerParams) -> Result<String, String> {
    let cfg = vmlp_config_from_params(params)?;
    let diff = vmlp_params_from_config(cfg);
    if diff.is_empty() {
        return Ok("v-MLP".to_string());
    }
    let parts: Vec<String> = diff.iter().map(|(k, v)| format!("{k}={v}")).collect();
    Ok(format!("v-MLP[{}]", parts.join(",")))
}

fn search_config_from_params(params: &SchedulerParams) -> Result<SearchConfig, String> {
    let d = SearchConfig::default_config();
    let cfg = SearchConfig {
        neighborhood: params.usize_or("neighborhood", d.neighborhood)?,
        window: params.usize_or("window", d.window)?,
        iters: params.usize_or("iters", d.iters)?,
        round_budget: params.usize_or("round_budget", d.round_budget)?,
        margin: params.f64_or("margin", d.margin)?,
    };
    if cfg.neighborhood == 0 {
        return Err("param `neighborhood` must be at least 1".to_string());
    }
    if cfg.window == 0 {
        return Err("param `window` must be at least 1".to_string());
    }
    if !cfg.margin.is_finite() || cfg.margin <= 0.0 {
        return Err(format!("param `margin` must be positive, got {}", cfg.margin));
    }
    Ok(cfg)
}

fn search_display(params: &SchedulerParams) -> Result<String, String> {
    let cfg = search_config_from_params(params)?;
    let d = SearchConfig::default_config();
    let mut parts = Vec::new();
    if cfg.neighborhood != d.neighborhood {
        parts.push(format!("neighborhood={}", cfg.neighborhood));
    }
    if cfg.window != d.window {
        parts.push(format!("window={}", cfg.window));
    }
    if cfg.iters != d.iters {
        parts.push(format!("iters={}", cfg.iters));
    }
    if cfg.round_budget != d.round_budget {
        parts.push(format!("round_budget={}", cfg.round_budget));
    }
    if cfg.margin != d.margin {
        parts.push(format!("margin={:?}", cfg.margin));
    }
    if parts.is_empty() {
        Ok("SearchSched".to_string())
    } else {
        Ok(format!("SearchSched[{}]", parts.join(",")))
    }
}

fn builtin_entries() -> Vec<RegistryEntry> {
    vec![
        baseline_entry!(
            "fairsched",
            "FCFS admission, equal resource slices, round-robin placement",
            "FairSched",
            FairSched
        ),
        baseline_entry!(
            "cursched",
            "FCFS admission, placement on the currently least-loaded machine",
            "CurSched",
            CurSched
        ),
        baseline_entry!(
            "partprofile",
            "deadline priority queue, execution-time profiles drive placement",
            "PartProfile",
            PartProfile
        ),
        baseline_entry!(
            "fullprofile",
            "deadline priority queue, full time+resource profile reservations",
            "FullProfile",
            FullProfile
        ),
        RegistryEntry {
            name: "vmlp",
            summary: "the paper's volatility-aware MLP scheduler (every ablation switchable)",
            param_keys: VMLP_PARAM_KEYS,
            build: |params, _ctx| {
                Ok(Box::new(VMlpScheduler::with_config(vmlp_config_from_params(params)?)))
            },
            display: vmlp_display,
        },
        RegistryEntry {
            name: "searchsched",
            summary: "seeded local-search placement (greedy + variable-neighborhood refinement)",
            param_keys: SEARCH_PARAM_KEYS,
            build: |params, ctx| {
                Ok(Box::new(SearchSched::with_config(search_config_from_params(params)?, ctx.seed)))
            },
            display: search_display,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_names_and_builds() {
        let reg = default_registry();
        for name in ["fairsched", "cursched", "partprofile", "fullprofile", "vmlp", "searchsched"] {
            let spec = SchemeSpec::named(name);
            let sched = reg.build(&spec, 2022).unwrap();
            assert_eq!(
                canonical_name(sched.name()),
                canonical_name(name),
                "built scheduler's name maps back to its registry entry"
            );
            assert_eq!(SchemeSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn display_names_match_legacy_labels() {
        for (name, label) in [
            ("fairsched", "FairSched"),
            ("cursched", "CurSched"),
            ("partprofile", "PartProfile"),
            ("fullprofile", "FullProfile"),
            ("vmlp", "v-MLP"),
            ("searchsched", "SearchSched"),
        ] {
            assert_eq!(SchemeSpec::named(name).display_name(), label);
        }
    }

    #[test]
    fn names_canonicalize() {
        assert_eq!(canonical_name("v-MLP"), "vmlp");
        assert_eq!(canonical_name("FairSched"), "fairsched");
        assert_eq!(canonical_name("search_sched"), "searchsched");
        assert!(default_registry().resolve("v-MLP").is_some());
    }

    #[test]
    fn ablated_vmlp_gets_a_descriptive_display_name() {
        let spec = SchemeSpec::parse("vmlp:healing=off").unwrap();
        assert_eq!(spec.display_name(), "v-MLP[healing=off]");
        let spec = SchemeSpec::parse("vmlp:reorder=off,heal_fanout=4").unwrap();
        assert_eq!(spec.display_name(), "v-MLP[heal_fanout=4,reorder=off]");
        let spec = SchemeSpec::parse("searchsched:iters=24").unwrap();
        assert_eq!(spec.display_name(), "SearchSched[iters=24]");
    }

    fn build_err(spec: &SchemeSpec) -> Error {
        match default_registry().build(spec, 1) {
            Ok(_) => panic!("spec `{spec}` unexpectedly built"),
            Err(e) => e,
        }
    }

    #[test]
    fn unknown_scheme_lists_registered_names() {
        let err = build_err(&SchemeSpec::named("bogus"));
        let msg = err.to_string();
        assert!(msg.contains("bogus"), "{msg}");
        for name in default_registry().names() {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn bad_params_name_the_offending_key() {
        let cases = [
            ("vmlp:typo=on", "typo"),
            ("vmlp:heal_fanout=nope", "heal_fanout"),
            ("vmlp:dt_policy=sometimes", "dt_policy"),
            ("fairsched:anything=1", "anything"),
            ("searchsched:margin=-1.0", "margin"),
            ("searchsched:neighborhood=0", "neighborhood"),
        ];
        for (spec, key) in cases {
            let spec = SchemeSpec::parse(spec).unwrap();
            let err = build_err(&spec);
            let msg = err.to_string();
            assert!(msg.contains(key), "`{msg}` should name `{key}`");
            assert_eq!(err.exit_code(), 2);
        }
    }

    #[test]
    fn params_serde_round_trip() {
        let params = SchedulerParams::new()
            .with("healing", false)
            .with("heal_fanout", 4usize)
            .with("margin", 1.5)
            .with("dt_policy", "always-p99");
        let js = serde_json::to_string(&params).unwrap();
        let back: SchedulerParams = serde_json::from_str(&js).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn spec_serde_round_trip_and_legacy_forms() {
        let spec = SchemeSpec::parse("vmlp:healing=off,heal_fanout=4").unwrap();
        let js = serde_json::to_string(&spec).unwrap();
        let back: SchemeSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(back, spec);

        // Legacy unit-variant strings load as the matching registry spec.
        let legacy: SchemeSpec = serde_json::from_str("\"VMlp\"").unwrap();
        assert_eq!(legacy, SchemeSpec::named("vmlp"));
        let legacy: SchemeSpec = serde_json::from_str("\"FairSched\"").unwrap();
        assert_eq!(legacy, SchemeSpec::named("fairsched"));

        // Legacy `VMlpCustom` objects load as vmlp + diff params.
        let cfg = VMlpConfig::without_healing();
        let js = format!("{{\"VMlpCustom\":{}}}", serde_json::to_string(&cfg).unwrap());
        let back: SchemeSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(back, SchemeSpec::parse("vmlp:healing=off").unwrap());
    }

    #[test]
    fn vmlp_params_round_trip_through_config() {
        let cfgs = [
            VMlpConfig::paper(),
            VMlpConfig::without_healing(),
            VMlpConfig { reorder: false, ..VMlpConfig::paper() },
            VMlpConfig { dt_policy: DtPolicy::AlwaysP99, heal_fanout: 5, ..VMlpConfig::paper() },
            VMlpConfig { delay_slot: false, ..VMlpConfig::paper() },
        ];
        for cfg in cfgs {
            let params = vmlp_params_from_config(cfg);
            let back = vmlp_config_from_params(&params).unwrap();
            assert_eq!(back, cfg, "params {params:?}");
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut reg = SchedulerRegistry::builtin();
        let err = reg.register(baseline_entry!("vmlp", "dup", "dup", FairSched)).unwrap_err();
        assert!(err.to_string().contains("already registered"));
    }

    #[test]
    fn custom_registration_is_buildable() {
        let mut reg = SchedulerRegistry::builtin();
        reg.register(baseline_entry!("myfair", "out-of-tree example", "MyFair", FairSched))
            .unwrap();
        let sched = reg.build(&SchemeSpec::named("my-fair"), 7).unwrap();
        assert_eq!(sched.name(), "FairSched");
        assert_eq!(reg.display_name(&SchemeSpec::named("myfair")).unwrap(), "MyFair");
    }

    #[test]
    fn seeded_schemes_get_the_experiment_seed() {
        // Two builds with the same seed must behave identically; the
        // registry must thread the seed through (SearchSched's RNG).
        let spec = SchemeSpec::parse("searchsched:iters=4").unwrap();
        let a = default_registry().build(&spec, 11).unwrap();
        let b = default_registry().build(&spec, 11).unwrap();
        assert_eq!(a.name(), b.name());
    }
}
