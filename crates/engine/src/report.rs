//! Plain-text table and series rendering for the figure binaries.

use std::fmt::Write as _;

/// Renders a labeled table: one row per entry, fixed-width columns.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{c:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Renders a (time, value) series as an ASCII sparkline plus summary,
/// good enough to eyeball the utilization curves of Fig 11 in a terminal.
pub fn series(title: &str, step: f64, values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    if values.is_empty() {
        let _ = writeln!(out, "== {title} == (empty)");
        return out;
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let _ = writeln!(
        out,
        "== {title} ==  (n={}, step={step}s, min={lo:.3}, mean={mean:.3}, max={hi:.3})",
        values.len()
    );
    let spark: String = values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect();
    let _ = writeln!(out, "{spark}");
    out
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio normalized to a baseline (paper-style "normalized to
/// v-MLP/FairSched" columns); guards division by ~zero.
pub fn norm(v: f64, baseline: f64) -> String {
    if baseline.abs() < 1e-12 {
        "n/a".to_string()
    } else {
        format!("{:.2}", v / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            "Demo",
            &["scheme", "p99"],
            &[vec!["FairSched".into(), "123".into()], vec!["v-MLP".into(), "7".into()]],
        );
        assert!(t.contains("== Demo =="));
        assert!(t.contains("FairSched"));
        // Both rows align: "v-MLP" padded to "FairSched" width.
        let lines: Vec<&str> = t.lines().collect();
        let col = lines[3].find("123").unwrap();
        let col2 = lines[4].find('7').unwrap();
        assert_eq!(col, col2);
    }

    #[test]
    fn series_sparkline_has_all_points() {
        let s = series("util", 1.0, &[0.0, 0.5, 1.0, 0.5]);
        // 4 glyphs on the spark line.
        let spark_line = s.lines().nth(1).unwrap();
        assert_eq!(spark_line.chars().count(), 4);
        assert!(s.contains("max=1.000"));
    }

    #[test]
    fn empty_series() {
        assert!(series("x", 1.0, &[]).contains("(empty)"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(0.1234), "0.123");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(1234.6), "1235");
    }

    #[test]
    fn norm_guards_zero() {
        assert_eq!(norm(5.0, 0.0), "n/a");
        assert_eq!(norm(5.0, 2.0), "2.50");
    }
}
