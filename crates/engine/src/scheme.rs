//! The evaluated scheduling schemes (Table VI) as a buildable enum.

use mlp_core::{VMlpConfig, VMlpScheduler};
use mlp_sched::{CurSched, FairSched, FullProfile, PartProfile, Scheduler};
use serde::{Deserialize, Serialize};

/// One of the five evaluated schemes, plus ablated v-MLP variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Simple: FCFS + equal resource slices.
    FairSched,
    /// Simple: FCFS + current-load placement.
    CurSched,
    /// Advanced: priority + performance profile.
    PartProfile,
    /// Advanced: priority + overall profile.
    FullProfile,
    /// The paper's proposal.
    VMlp,
    /// v-MLP with a custom (typically ablated) configuration.
    VMlpCustom(VMlpConfig),
}

impl Scheme {
    /// The five paper schemes in Table VI order.
    pub const PAPER: [Scheme; 5] = [
        Scheme::FairSched,
        Scheme::CurSched,
        Scheme::PartProfile,
        Scheme::FullProfile,
        Scheme::VMlp,
    ];

    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            Scheme::FairSched => Box::new(FairSched::new()),
            Scheme::CurSched => Box::new(CurSched::new()),
            Scheme::PartProfile => Box::new(PartProfile::new()),
            Scheme::FullProfile => Box::new(FullProfile::new()),
            Scheme::VMlp => Box::new(VMlpScheduler::new()),
            Scheme::VMlpCustom(cfg) => Box::new(VMlpScheduler::with_config(cfg)),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::FairSched => "FairSched",
            Scheme::CurSched => "CurSched",
            Scheme::PartProfile => "PartProfile",
            Scheme::FullProfile => "FullProfile",
            Scheme::VMlp => "v-MLP",
            Scheme::VMlpCustom(_) => "v-MLP*",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_schemes_with_table6_names() {
        for s in Scheme::PAPER {
            let built = s.build();
            assert_eq!(built.name(), s.label());
            assert_eq!(built.waiting(), 0);
        }
    }

    #[test]
    fn custom_vmlp_builds() {
        let s = Scheme::VMlpCustom(VMlpConfig::without_healing()).build();
        assert_eq!(s.name(), "v-MLP");
    }
}
