//! The evaluated scheduling schemes (Table VI) as a buildable enum.
//!
//! Deprecated shim: scheduler construction now goes through the
//! [`registry`](crate::registry) — a `Scheme` converts losslessly into a
//! [`SchemeSpec`] (`Scheme::VMlp` → `"vmlp"`, `Scheme::VMlpCustom(cfg)` →
//! `"vmlp"` plus the params that differ from the paper config), and every
//! construction path funnels through [`SchedulerRegistry::build`]. The
//! enum survives so existing call sites (and Table VI iteration via
//! [`Scheme::PAPER`]) keep compiling and fixed-seed figures stay
//! byte-identical.
//!
//! [`SchedulerRegistry::build`]: crate::registry::SchedulerRegistry::build

use crate::registry::{default_registry, vmlp_params_from_config, SchemeSpec};
use mlp_core::VMlpConfig;
use mlp_sched::Scheduler;
use serde::{Deserialize, Serialize};

/// One of the five evaluated schemes, plus ablated v-MLP variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Simple: FCFS + equal resource slices.
    FairSched,
    /// Simple: FCFS + current-load placement.
    CurSched,
    /// Advanced: priority + performance profile.
    PartProfile,
    /// Advanced: priority + overall profile.
    FullProfile,
    /// The paper's proposal.
    VMlp,
    /// v-MLP with a custom (typically ablated) configuration.
    VMlpCustom(VMlpConfig),
}

impl Scheme {
    /// The five paper schemes in Table VI order.
    pub const PAPER: [Scheme; 5] = [
        Scheme::FairSched,
        Scheme::CurSched,
        Scheme::PartProfile,
        Scheme::FullProfile,
        Scheme::VMlp,
    ];

    /// The registry spec this enum value is a shorthand for.
    pub fn spec(self) -> SchemeSpec {
        match self {
            Scheme::FairSched => SchemeSpec::named("fairsched"),
            Scheme::CurSched => SchemeSpec::named("cursched"),
            Scheme::PartProfile => SchemeSpec::named("partprofile"),
            Scheme::FullProfile => SchemeSpec::named("fullprofile"),
            Scheme::VMlp => SchemeSpec::named("vmlp"),
            Scheme::VMlpCustom(cfg) => {
                SchemeSpec::with_params("vmlp", vmlp_params_from_config(cfg))
            }
        }
    }

    /// Instantiates the scheduler.
    #[deprecated(note = "build through the scheduler registry: \
                         `default_registry().build(&scheme.spec(), seed)`")]
    pub fn build(self) -> Box<dyn Scheduler> {
        default_registry().build(&self.spec(), 0).expect("built-in schemes always build")
    }

    /// Display label.
    ///
    /// Static Table VI names; `VMlpCustom` collapses to `"v-MLP*"` — use
    /// [`display_name`](Scheme::display_name) (or
    /// [`SchemeSpec::display_name`]) for a label that says *which*
    /// ablation ran.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::FairSched => "FairSched",
            Scheme::CurSched => "CurSched",
            Scheme::PartProfile => "PartProfile",
            Scheme::FullProfile => "FullProfile",
            Scheme::VMlp => "v-MLP",
            Scheme::VMlpCustom(_) => "v-MLP*",
        }
    }

    /// Registry-derived display name (e.g. `v-MLP[healing=off]` for an
    /// ablated custom config).
    pub fn display_name(self) -> String {
        self.spec().display_name()
    }
}

impl From<Scheme> for SchemeSpec {
    fn from(s: Scheme) -> SchemeSpec {
        s.spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn builds_all_schemes_with_table6_names() {
        for s in Scheme::PAPER {
            let built = s.build();
            assert_eq!(built.name(), s.label());
            assert_eq!(built.waiting(), 0);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn custom_vmlp_builds() {
        let s = Scheme::VMlpCustom(VMlpConfig::without_healing()).build();
        assert_eq!(s.name(), "v-MLP");
    }

    #[test]
    fn custom_vmlp_display_name_says_which_ablation() {
        let s = Scheme::VMlpCustom(VMlpConfig::without_healing());
        assert_eq!(s.label(), "v-MLP*", "static label stays for compatibility");
        assert_eq!(s.display_name(), "v-MLP[healing=off]");
        assert_eq!(Scheme::VMlp.display_name(), "v-MLP");
        for s in Scheme::PAPER {
            assert_eq!(s.display_name(), s.label(), "paper schemes keep Table VI names");
        }
    }

    #[test]
    fn enum_and_spec_serializations_both_load() {
        // The enum's own serde encoding still round-trips…
        let js = serde_json::to_string(&Scheme::VMlpCustom(VMlpConfig::without_healing())).unwrap();
        let back: Scheme = serde_json::from_str(&js).unwrap();
        assert_eq!(back, Scheme::VMlpCustom(VMlpConfig::without_healing()));
        // …and the same bytes load as the equivalent registry spec.
        let spec: SchemeSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(spec, SchemeSpec::parse("vmlp:healing=off").unwrap());
        let spec: SchemeSpec = serde_json::from_str("\"PartProfile\"").unwrap();
        assert_eq!(spec, Scheme::PartProfile.spec());
    }
}
