//! Ad-hoc regime probe used while calibrating the evaluation (not a paper
//! figure). Prints the headline metrics for every scheme × pattern at
//! laptop scale.
use mlp_engine::config::ExperimentConfig;
use mlp_engine::parallel::run_all;
use mlp_engine::scheme::Scheme;
use mlp_workload::WorkloadPattern;

fn main() {
    for pattern in WorkloadPattern::PAPER {
        println!("--- pattern {:?}", pattern);
        let configs: Vec<ExperimentConfig> = Scheme::PAPER
            .into_iter()
            .map(|s| ExperimentConfig::small(s).with_pattern(pattern).with_seed(3))
            .collect();
        for r in run_all(&configs, 0) {
            println!(
                "{:12} p50={:7.1} p90={:7.1} p99={:8.1} viol={:.3} util={:.3} thr={:6.1} capped={:.3} late={:.3} unfin={} heal={:?}",
                r.config.scheme.display_name(), r.latency_ms[0], r.latency_ms[1], r.latency_ms[2],
                r.violation_rate, r.mean_utilization, r.throughput(),
                r.capped_fraction, r.late_fraction, r.unfinished, r.healing,
            );
        }
    }
}
