//! Mid-stream diagnosis probe (calibration aid, not a paper figure).
use mlp_core::organizer::DtPolicy;
use mlp_core::VMlpConfig;
use mlp_engine::config::{ExperimentConfig, MixSpec};
use mlp_engine::parallel::run_all;
use mlp_engine::scheme::Scheme;
use mlp_model::VolatilityClass;
use mlp_workload::WorkloadPattern;

fn main() {
    let full = VMlpConfig::paper();
    let variants: Vec<(&str, Scheme)> = vec![
        ("full", Scheme::VMlp),
        ("no-slot", Scheme::VMlpCustom(VMlpConfig { delay_slot: false, ..full })),
        ("no-heal", Scheme::VMlpCustom(VMlpConfig::without_healing())),
        ("p99-dt", Scheme::VMlpCustom(VMlpConfig { dt_policy: DtPolicy::AlwaysP99, ..full })),
        ("mean-dt", Scheme::VMlpCustom(VMlpConfig { dt_policy: DtPolicy::AlwaysMean, ..full })),
        ("no-reorder", Scheme::VMlpCustom(VMlpConfig { reorder: false, ..full })),
    ];
    let configs: Vec<ExperimentConfig> = variants
        .iter()
        .map(|(_, s)| {
            ExperimentConfig {
                machines: 12,
                max_rate: 160.0,
                horizon_s: 40.0,
                pattern: WorkloadPattern::L2Fluctuating,
                mix: MixSpec::SingleClass(VolatilityClass::Mid),
                ..ExperimentConfig::paper_default(*s)
            }
            .with_seed(7)
        })
        .collect();
    for ((name, _), r) in variants.iter().zip(run_all(&configs, 0)) {
        println!(
            "{:10} p50={:7.1} p99={:8.1} viol={:.3} capped={:.3} late={:.3} heal={:?}",
            name,
            r.latency_ms[0],
            r.latency_ms[2],
            r.violation_rate,
            r.capped_fraction,
            r.late_fraction,
            r.healing
        );
    }
}
