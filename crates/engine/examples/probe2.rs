//! Ablation probe: which v-MLP component costs/pays at the current regime.
use mlp_core::organizer::DtPolicy;
use mlp_core::VMlpConfig;
use mlp_engine::config::ExperimentConfig;
use mlp_engine::parallel::run_all;
use mlp_engine::scheme::Scheme;
use mlp_workload::WorkloadPattern;

fn main() {
    let full = VMlpConfig::paper();
    let variants: Vec<(&str, Scheme)> = vec![
        ("full", Scheme::VMlp),
        ("no-heal", Scheme::VMlpCustom(VMlpConfig::without_healing())),
        ("slot-only", Scheme::VMlpCustom(VMlpConfig { resource_stretch: false, ..full })),
        ("stretch-only", Scheme::VMlpCustom(VMlpConfig { delay_slot: false, ..full })),
        ("no-trim", Scheme::VMlpCustom(VMlpConfig { trim_reservations: false, ..full })),
        ("mean-dt", Scheme::VMlpCustom(VMlpConfig { dt_policy: DtPolicy::AlwaysMean, ..full })),
        ("p99-dt", Scheme::VMlpCustom(VMlpConfig { dt_policy: DtPolicy::AlwaysP99, ..full })),
    ];
    for pattern in [WorkloadPattern::L1Pulse, WorkloadPattern::L2Fluctuating] {
        println!("--- {:?}", pattern);
        let configs: Vec<ExperimentConfig> = variants
            .iter()
            .map(|(_, s)| ExperimentConfig::small(*s).with_pattern(pattern).with_seed(3))
            .collect();
        for ((name, _), r) in variants.iter().zip(run_all(&configs, 0)) {
            println!(
                "{:12} p50={:7.1} p90={:7.1} p99={:8.1} viol={:.3} util={:.3} capped={:.3} heal={:?}",
                name, r.latency_ms[0], r.latency_ms[1], r.latency_ms[2],
                r.violation_rate, r.mean_utilization, r.capped_fraction, r.healing,
            );
        }
    }
}
