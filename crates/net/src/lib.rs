//! # mlp-net — communication-latency model
//!
//! Models Section II-C / Fig 4: caller→callee communication time is
//! bimodal in locality — a tight distribution when caller and callee share
//! a machine, a wider distribution with occasional congestion spikes (the
//! figure's "green blocks") across machines — and is the stochastic noise
//! source that breaks naive schedule alignment (Fig 5).

use mlp_model::CommClass;
use mlp_sim::{SimDuration, SimRng};
use mlp_stats::{Dist, Summary};
use serde::{Deserialize, Serialize};

/// Parameters of the communication model. All times in milliseconds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Mean intra-machine hop latency (loopback / IPC path).
    pub local_mean_ms: f64,
    /// Coefficient of variation of the intra-machine body.
    pub local_cv: f64,
    /// Mean cross-machine hop latency (switch + NIC path).
    pub remote_mean_ms: f64,
    /// Coefficient of variation of the cross-machine body.
    pub remote_cv: f64,
    /// Congestion-spike probability on cross-machine hops.
    pub spike_prob: f64,
    /// Scale (minimum) of a congestion spike, ms.
    pub spike_xm_ms: f64,
    /// Pareto shape of the spike tail (larger = lighter tail).
    pub spike_alpha: f64,
}

impl Default for NetworkConfig {
    /// Calibrated to Fig 4's structure: intra-machine times cluster
    /// tightly well under a millisecond; cross-machine times have ~4× the
    /// mean, visibly wider spread, and a low-probability congestion tail.
    fn default() -> Self {
        NetworkConfig {
            local_mean_ms: 0.15,
            local_cv: 0.25,
            remote_mean_ms: 0.60,
            remote_cv: 0.40,
            spike_prob: 0.04,
            spike_xm_ms: 2.5,
            spike_alpha: 2.2,
        }
    }
}

/// The communication model used by the evaluation engine.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    cfg: NetworkConfig,
    local: Dist,
    remote: Dist,
}

impl NetworkModel {
    /// Builds a model from explicit parameters.
    pub fn new(cfg: NetworkConfig) -> Self {
        let local = Dist::Spiked {
            body_mean: cfg.local_mean_ms,
            body_cv: cfg.local_cv,
            tail_xm: cfg.spike_xm_ms * 0.5,
            tail_alpha: cfg.spike_alpha,
            // Same-machine congestion is rare (Fig 4(a) is almost all in
            // the low blocks): an order of magnitude rarer than remote.
            p_tail: cfg.spike_prob * 0.1,
        };
        let remote = Dist::Spiked {
            body_mean: cfg.remote_mean_ms,
            body_cv: cfg.remote_cv,
            tail_xm: cfg.spike_xm_ms,
            tail_alpha: cfg.spike_alpha,
            p_tail: cfg.spike_prob,
        };
        NetworkModel { cfg, local, remote }
    }

    /// The model's parameters.
    pub fn config(&self) -> NetworkConfig {
        self.cfg
    }

    /// Default paper-calibrated model.
    pub fn paper_default() -> Self {
        NetworkModel::new(NetworkConfig::default())
    }

    /// Comm-class multiplier: heavier classes ride longer links / chattier
    /// protocols (Table II: levels map to growing Var(RTT)).
    fn class_factor(class: CommClass) -> f64 {
        match class {
            CommClass::Light => 0.7,
            CommClass::Medium => 1.0,
            CommClass::Heavy => 1.5,
        }
    }

    /// Samples one caller→callee hop delay.
    ///
    /// * `same_machine` — whether caller and callee are co-located.
    /// * `class` — the *callee's* communication class.
    pub fn sample_delay(
        &self,
        same_machine: bool,
        class: CommClass,
        rng: &mut SimRng,
    ) -> SimDuration {
        let base = if same_machine { &self.local } else { &self.remote };
        let ms = base.sample(rng.rng()) * Self::class_factor(class);
        SimDuration::from_millis_f64(ms)
    }

    /// Expected (mean) hop delay — what a scheduler plans with. The actual
    /// sample deviates; that gap is exactly the "late invocation" the
    /// self-healing module absorbs.
    pub fn expected_delay(&self, same_machine: bool, class: CommClass) -> SimDuration {
        let base = if same_machine { &self.local } else { &self.remote };
        SimDuration::from_millis_f64(base.mean() * Self::class_factor(class))
    }

    /// Empirically estimates RTT variance (in (100 µs)² units, matching
    /// Table II's 100–400 scale) over `n` samples, for deriving a service's
    /// `C` level from observation.
    pub fn estimate_rtt_var(
        &self,
        same_machine: bool,
        class: CommClass,
        n: usize,
        rng: &mut SimRng,
    ) -> f64 {
        let mut s = Summary::new();
        for _ in 0..n {
            // RTT = there + back.
            let rtt = self.sample_delay(same_machine, class, rng).as_millis_f64()
                + self.sample_delay(same_machine, class, rng).as_millis_f64();
            s.record(rtt * 10.0); // ms → 100µs units
        }
        s.variance()
    }

    /// Probability that a hop is a congestion spike (diagnostics).
    pub fn spike_probability(&self, same_machine: bool) -> f64 {
        if same_machine {
            self.cfg.spike_prob * 0.1
        } else {
            self.cfg.spike_prob
        }
    }
}

/// Draws the Fig 4 histogram data: `n` communication times (ms) for a
/// callee of `class`, at the given locality.
pub fn fig4_samples(
    model: &NetworkModel,
    same_machine: bool,
    class: CommClass,
    n: usize,
    rng: &mut SimRng,
) -> Vec<f64> {
    (0..n).map(|_| model.sample_delay(same_machine, class, rng).as_millis_f64()).collect()
}

/// A zero-overhead network (for ablations and unit tests of other crates).
pub fn zero_network() -> NetworkModel {
    NetworkModel::new(NetworkConfig {
        local_mean_ms: 0.0,
        local_cv: 0.0,
        remote_mean_ms: 0.0,
        remote_cv: 0.0,
        spike_prob: 0.0,
        spike_xm_ms: 0.0,
        spike_alpha: 2.0,
        // xm = 0 would make Pareto degenerate, but p_tail = 0 means the
        // tail branch is never taken.
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xF164)
    }

    #[test]
    fn local_faster_than_remote_on_average() {
        let m = NetworkModel::paper_default();
        let mut r = rng();
        let mut local = Summary::new();
        let mut remote = Summary::new();
        for _ in 0..20_000 {
            local.record(m.sample_delay(true, CommClass::Medium, &mut r).as_millis_f64());
            remote.record(m.sample_delay(false, CommClass::Medium, &mut r).as_millis_f64());
        }
        assert!(
            local.mean() * 2.0 < remote.mean(),
            "local {} vs remote {}",
            local.mean(),
            remote.mean()
        );
        // Fig 4: cross-machine variation is wider.
        assert!(local.variance() < remote.variance());
    }

    #[test]
    fn heavier_class_is_slower() {
        let m = NetworkModel::paper_default();
        let light = m.expected_delay(false, CommClass::Light);
        let medium = m.expected_delay(false, CommClass::Medium);
        let heavy = m.expected_delay(false, CommClass::Heavy);
        assert!(light < medium && medium < heavy);
    }

    #[test]
    fn congestion_spikes_appear_cross_machine() {
        let m = NetworkModel::paper_default();
        let mut r = rng();
        let samples = fig4_samples(&m, false, CommClass::Medium, 5_000, &mut r);
        let body_mean = m.config().remote_mean_ms;
        let spikes = samples.iter().filter(|&&s| s > body_mean * 3.0).count();
        // ~4% spike probability: expect on the order of 200 of 5000.
        assert!(spikes > 50, "only {spikes} spikes seen");
        assert!(spikes < 500, "{spikes} spikes is too many");
    }

    #[test]
    fn expected_delay_close_to_sample_mean() {
        let m = NetworkModel::paper_default();
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..50_000 {
            s.record(m.sample_delay(false, CommClass::Heavy, &mut r).as_millis_f64());
        }
        let exp = m.expected_delay(false, CommClass::Heavy).as_millis_f64();
        assert!((s.mean() - exp).abs() / exp < 0.1, "sample {} vs expected {}", s.mean(), exp);
    }

    #[test]
    fn rtt_variance_grows_with_class_and_distance() {
        let m = NetworkModel::paper_default();
        let mut r = rng();
        let local = m.estimate_rtt_var(true, CommClass::Light, 3_000, &mut r);
        let remote = m.estimate_rtt_var(false, CommClass::Heavy, 3_000, &mut r);
        assert!(remote > local * 4.0, "remote var {remote} vs local {local}");
    }

    #[test]
    fn zero_network_is_silent() {
        let m = zero_network();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(m.sample_delay(false, CommClass::Heavy, &mut r), SimDuration::ZERO);
        }
        assert_eq!(m.expected_delay(true, CommClass::Light), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = NetworkModel::paper_default();
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(
                m.sample_delay(false, CommClass::Medium, &mut a),
                m.sample_delay(false, CommClass::Medium, &mut b)
            );
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn delays_are_non_negative(seed: u64, same in proptest::bool::ANY) {
            let m = NetworkModel::paper_default();
            let mut r = SimRng::new(seed);
            for class in [CommClass::Light, CommClass::Medium, CommClass::Heavy] {
                let d = m.sample_delay(same, class, &mut r);
                prop_assert!(d.as_micros() < 10_000_000, "absurd delay {d}");
            }
        }
    }
}
