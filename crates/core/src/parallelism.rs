//! The parallelism taxonomy of Table I: ILP vs TLP vs MLP vs RLP.

use serde::{Deserialize, Serialize};

/// A level of parallelism in the computing stack (Table I). MLP sits
/// between chip-level scheduling (ILP/TLP) and datacenter-scale request
/// scheduling (RLP), taking the *microservice chain* as its granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelismLevel {
    /// Instruction Level Parallelism — pipeline scheduling of instructions.
    Ilp,
    /// Thread Level Parallelism — many instruction streams across cores.
    Tlp,
    /// Microservice Level Parallelism — this paper: aligned execution of
    /// parallel microservice chains.
    Mlp,
    /// Request Level Parallelism — parallel monolithic requests across
    /// machines.
    Rlp,
}

impl ParallelismLevel {
    /// All four, in Table I column order.
    pub const ALL: [ParallelismLevel; 4] = [
        ParallelismLevel::Ilp,
        ParallelismLevel::Tlp,
        ParallelismLevel::Mlp,
        ParallelismLevel::Rlp,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ParallelismLevel::Ilp => "ILP",
            ParallelismLevel::Tlp => "TLP",
            ParallelismLevel::Mlp => "MLP",
            ParallelismLevel::Rlp => "RLP",
        }
    }

    /// Table I row "Scheduling Level".
    pub fn scheduling_level(self) -> &'static str {
        match self {
            ParallelismLevel::Ilp | ParallelismLevel::Tlp => "Chip Level",
            ParallelismLevel::Mlp | ParallelismLevel::Rlp => "System Level",
        }
    }

    /// Table I row "Granularity".
    pub fn granularity(self) -> &'static str {
        match self {
            ParallelismLevel::Ilp => "Instruction",
            ParallelismLevel::Tlp => "Instruction Stream",
            ParallelismLevel::Mlp => "Microservice",
            ParallelismLevel::Rlp => "Monolithic Application",
        }
    }

    /// Table I row "Key Opti. Approach".
    pub fn key_approach(self) -> &'static str {
        match self {
            ParallelismLevel::Ilp | ParallelismLevel::Mlp => "Temporal",
            ParallelismLevel::Tlp | ParallelismLevel::Rlp => "Spatial",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        use ParallelismLevel::*;
        assert_eq!(Ilp.scheduling_level(), "Chip Level");
        assert_eq!(Tlp.scheduling_level(), "Chip Level");
        assert_eq!(Mlp.scheduling_level(), "System Level");
        assert_eq!(Rlp.scheduling_level(), "System Level");

        assert_eq!(Mlp.granularity(), "Microservice");
        assert_eq!(Rlp.granularity(), "Monolithic Application");

        // MLP is temporal like ILP (pipeline alignment), not spatial.
        assert_eq!(Mlp.key_approach(), "Temporal");
        assert_eq!(Ilp.key_approach(), "Temporal");
        assert_eq!(Tlp.key_approach(), "Spatial");
        assert_eq!(Rlp.key_approach(), "Spatial");
    }

    #[test]
    fn names() {
        let names: Vec<&str> = ParallelismLevel::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["ILP", "TLP", "MLP", "RLP"]);
    }
}
