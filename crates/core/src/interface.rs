//! The interface layer (Section III-D): per-container monitors, control
//! knobs, and live telemetry.
//!
//! "v-MLP serves as an interface layer that bridges the high-level user
//! request handler and the low-level server hardware. … It features a
//! local monitor and a control toolkit on each container." The
//! [`SchedulerCtx`](mlp_sched::SchedulerCtx) carries the *planning-time*
//! view (ledgers, historical profiles); this module is the *run-time*
//! telemetry the layer accumulates from completed spans — dockerstats-like
//! usage monitors plus constant-memory live latency quantiles per service
//! — and the cgroups-style control actions it can emit (Table III).

use mlp_cluster::controller::ContainerCaps;
use mlp_cluster::{ControllerTool, UsageMonitor};
use mlp_model::{ResourceKind, ResourceVector, ServiceId};
use mlp_sim::SimTime;
use mlp_stats::P2Quantile;
use mlp_trace::Span;
use std::collections::HashMap;

/// Live telemetry for one microservice class.
#[derive(Debug, Clone)]
pub struct ServiceTelemetry {
    /// dockerstats-like usage samples.
    pub usage: UsageMonitor,
    /// Streaming median of execution time (ms).
    pub exec_p50: P2Quantile,
    /// Streaming p99 of execution time (ms).
    pub exec_p99: P2Quantile,
    /// Completed invocations observed.
    pub invocations: u64,
    /// Invocations that ran resource-capped.
    pub capped: u64,
}

impl ServiceTelemetry {
    fn new() -> Self {
        ServiceTelemetry {
            usage: UsageMonitor::new(),
            exec_p50: P2Quantile::new(0.5),
            exec_p99: P2Quantile::new(0.99),
            invocations: 0,
            capped: 0,
        }
    }

    /// Fraction of invocations that ran capped.
    pub fn capped_fraction(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.capped as f64 / self.invocations as f64
        }
    }
}

/// A control action the layer can emit toward a container — the simulated
/// equivalent of writing a cgroups knob (Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlAction {
    /// Which resource knob.
    pub tool: ControllerTool,
    /// The new per-container cap for that resource.
    pub limit: f64,
}

/// The run-time half of the interface layer.
#[derive(Debug, Clone, Default)]
pub struct InterfaceLayer {
    services: HashMap<ServiceId, ServiceTelemetry>,
}

impl InterfaceLayer {
    /// Creates an empty layer.
    pub fn new() -> Self {
        InterfaceLayer::default()
    }

    /// Ingests one completed span with the usage it occupied — what the
    /// Zipkin-like tracer plus dockerstats deliver per execution.
    pub fn observe_span(&mut self, span: &Span, occupied_usage: ResourceVector, now: SimTime) {
        let t = self.services.entry(span.service).or_insert_with(ServiceTelemetry::new);
        t.usage.sample(now, occupied_usage);
        let ms = span.duration().as_millis_f64();
        t.exec_p50.record(ms);
        t.exec_p99.record(ms);
        t.invocations += 1;
        if span.was_capped() {
            t.capped += 1;
        }
    }

    /// Telemetry for one service, if any spans were observed.
    pub fn telemetry(&self, id: ServiceId) -> Option<&ServiceTelemetry> {
        self.services.get(&id)
    }

    /// Number of service classes with telemetry.
    pub fn services_observed(&self) -> usize {
        self.services.len()
    }

    /// Builds the cgroups-style cap actions to restrict a container to
    /// `limit` (one write per resource kind, per Table III).
    pub fn cap_actions(limit: ResourceVector) -> Vec<ControlAction> {
        ResourceKind::ALL
            .iter()
            .map(|&k| ControlAction { tool: ControllerTool::for_kind(k), limit: limit.get(k) })
            .collect()
    }

    /// Translates a resource-stretch decision into container caps: grant =
    /// nominal demand × factor (the self-healing module's stretch writes).
    pub fn stretch_caps(demand: ResourceVector, factor: f64) -> ContainerCaps {
        ContainerCaps { limit: Some(demand * factor.max(1.0)), stretch: factor.max(1.0) }
    }

    /// Live p99 (ms) for a service — the interface layer's answer to "how
    /// is this service behaving *right now*", as opposed to the historical
    /// profile store.
    pub fn live_p99_ms(&self, id: ServiceId) -> Option<f64> {
        self.services.get(&id).and_then(|t| t.exec_p99.estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::MachineId;
    use mlp_model::RequestTypeId;
    use mlp_sim::SimDuration;
    use mlp_trace::RequestId;

    fn span(service: u32, dur_ms: u64, sat: f64) -> Span {
        let start = SimTime::from_millis(100);
        Span {
            request: RequestId(1),
            request_type: RequestTypeId(0),
            service: ServiceId(service),
            dag_node: 0,
            machine: MachineId(0),
            planned_start: start,
            start,
            end: start + SimDuration::from_millis(dur_ms),
            satisfaction: sat,
        }
    }

    #[test]
    fn accumulates_telemetry_per_service() {
        let mut layer = InterfaceLayer::new();
        for d in [10, 20, 30] {
            layer.observe_span(
                &span(1, d, 1.0),
                ResourceVector::new(1.0, 100.0, 10.0),
                SimTime::ZERO,
            );
        }
        layer.observe_span(&span(2, 5, 0.5), ResourceVector::new(0.5, 50.0, 5.0), SimTime::ZERO);

        assert_eq!(layer.services_observed(), 2);
        let t1 = layer.telemetry(ServiceId(1)).unwrap();
        assert_eq!(t1.invocations, 3);
        assert_eq!(t1.capped, 0);
        assert_eq!(t1.exec_p50.estimate(), Some(20.0));
        assert_eq!(t1.usage.mean_usage(), ResourceVector::new(1.0, 100.0, 10.0));

        let t2 = layer.telemetry(ServiceId(2)).unwrap();
        assert_eq!(t2.capped, 1);
        assert_eq!(t2.capped_fraction(), 1.0);
    }

    #[test]
    fn live_p99_tracks_tail() {
        let mut layer = InterfaceLayer::new();
        for i in 1..=200 {
            layer.observe_span(&span(3, i, 1.0), ResourceVector::ZERO, SimTime::ZERO);
        }
        let p99 = layer.live_p99_ms(ServiceId(3)).unwrap();
        assert!((180.0..=200.0).contains(&p99), "p99 {p99}");
        assert_eq!(layer.live_p99_ms(ServiceId(9)), None);
    }

    #[test]
    fn cap_actions_cover_table3() {
        let actions = InterfaceLayer::cap_actions(ResourceVector::new(1.0, 512.0, 50.0));
        assert_eq!(actions.len(), 3);
        assert_eq!(actions[0].tool.name(), "cgroups cpuset");
        assert_eq!(actions[0].limit, 1.0);
        assert_eq!(actions[1].tool.name(), "cgroups memory.limit_in_bytes");
        assert_eq!(actions[1].limit, 512.0);
        assert_eq!(actions[2].tool.name(), "cgroups net_cls");
        assert_eq!(actions[2].limit, 50.0);
    }

    #[test]
    fn stretch_caps_scale_demand() {
        let demand = ResourceVector::new(1.0, 100.0, 10.0);
        let caps = InterfaceLayer::stretch_caps(demand, 1.25);
        assert_eq!(caps.stretch, 1.25);
        assert_eq!(caps.limit.unwrap(), demand * 1.25);
        // A shrink request is clamped to no-op (stretch never takes away).
        let caps = InterfaceLayer::stretch_caps(demand, 0.5);
        assert_eq!(caps.stretch, 1.0);
    }
}
