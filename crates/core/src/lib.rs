//! # mlp-core — v-MLP, volatility-aware Microservice Level Parallelism
//!
//! The paper's contribution (Section III): a scheduler that treats the
//! *microservice chains* spawned by user requests as the unit of parallel
//! scheduling, and manages them under uncertainty.
//!
//! Components:
//!
//! * [`volatility`] — the request-volatility metric
//!   `V_r = α · Σ I·S·C / n` (Table II) and its Low/Medium/High bands.
//! * [`reorder`] — the reorder ratio `R` that prioritizes the waiting
//!   queue (a blend of volatility, SLA urgency, FCFS waiting time, and
//!   SJF's preference for short jobs, per Section III-E).
//! * [`reorder_index`] — the incremental waiting-queue index: per-(shard,
//!   type) arrival-ordered deques whose lazy head merge replays the
//!   reorder sort's exact order without re-sorting the queue each round.
//! * [`organizer`] — the **self-organizing module** (Algorithm 1):
//!   volatility-banded Δt estimation and ledger-checked placement.
//! * [`healer`] — the **self-healing module** (Section III-F): delay-slot
//!   filling and resource stretch on late invocations.
//! * [`scheduler`] — [`VMlpScheduler`], the composition of the above
//!   behind the common [`mlp_sched::Scheduler`] trait. The
//!   [`mlp_sched::SchedulerCtx`] it receives *is* the paper's "interface
//!   layer": monitors ([`mlp_cluster::UsageMonitor`]), controllers
//!   ([`mlp_cluster::ControllerTool`]), tracing ([`mlp_trace`]) and the
//!   machine ledgers, abstracted away from the request handler above.
//! * [`parallelism`] — the ILP/TLP/MLP/RLP taxonomy of Table I.

pub mod healer;
pub mod interface;
pub mod organizer;
pub mod parallelism;
pub mod reorder;
pub mod reorder_index;
pub mod scheduler;
pub mod volatility;

pub use scheduler::{VMlpConfig, VMlpScheduler};
pub use volatility::{Volatility, VolatilityBand};
