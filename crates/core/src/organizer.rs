//! The self-organizing module (Algorithm 1): volatility-banded Δt
//! estimation and ledger-checked placement.

use crate::volatility::{Volatility, VolatilityBand};
use mlp_model::Microservice;
use mlp_sched::placement::{MachinePolicy, PlanPolicy};
use mlp_sched::PlanEnv;
use mlp_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How Δt budgets are estimated — the paper's banded policy plus two
/// degenerate variants for the ablation study (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DtPolicy {
    /// Algorithm 1: band-dependent (historical / p50-of-x% / p99-of-x%).
    Banded,
    /// Ablation: always use the historical mean (FullProfile-like).
    AlwaysMean,
    /// Ablation: always use the p99 tail (maximally conservative).
    AlwaysP99,
}

/// The per-request planning policy of the self-organizing module.
///
/// Algorithm 1's Δt selection:
/// * `V_r ≤ 0.3` — "Δt is directly determined by historical value": the
///   most recent observed execution time.
/// * `0.3 < V_r < 0.7` — "Δt = 50 % latency of x % executions".
/// * `V_r ≥ 0.7` — "Δt = 99 % latency of x % executions".
///
/// with `x ∝ SLA · V_r` (see [`Volatility::x_percent`]). Estimates are
/// floored at the service's nominal time for the request's work factor, so
/// a thin history can never produce an absurdly optimistic budget.
pub struct OrganizerPolicy {
    /// The request's volatility.
    pub vr: Volatility,
    /// SLA weight for the x% window (1.0 = the catalog's default SLO
    /// factor).
    pub sla_weight: f64,
    /// Δt policy (Banded = the paper; others for ablations).
    pub dt_policy: DtPolicy,
    /// Planning horizon.
    pub horizon: SimDuration,
}

impl OrganizerPolicy {
    /// Default SLA weight for the `x ∝ SLA · V_r` window. With the
    /// catalog's SLO factor of 5, mid-volatility requests (`V_r ≈ 0.4–0.5`)
    /// see `x ≈ 100` — their Δt is the median of (essentially) the whole
    /// history — and high-volatility requests saturate at `x = 100`,
    /// making Δt the p99 of the full history. Smaller weights shrink the
    /// window toward the fastest executions and are exercised by the
    /// ablation benches.
    pub const DEFAULT_SLA_WEIGHT: f64 = 2.5;

    /// Standard policy for a request of volatility `vr`.
    pub fn new(vr: Volatility) -> Self {
        OrganizerPolicy {
            vr,
            sla_weight: Self::DEFAULT_SLA_WEIGHT,
            dt_policy: DtPolicy::Banded,
            horizon: SimDuration::from_secs(10),
        }
    }

    /// Δt estimate in milliseconds for one microservice.
    pub fn delta_t_ms(&self, svc: &Microservice, work_factor: f64, env: &PlanEnv<'_>) -> f64 {
        let nominal = svc.base_ms * work_factor;
        let x = self.vr.x_percent(self.sla_weight);
        let est = match self.dt_policy {
            DtPolicy::AlwaysMean => env.profiles.mean_exec_ms(svc.id).unwrap_or(nominal),
            DtPolicy::AlwaysP99 => env.profiles.delta_t_ms(svc.id, 100.0, 0.99, nominal * 1.5),
            DtPolicy::Banded => match self.vr.band() {
                VolatilityBand::Low => env.profiles.last_exec_ms(svc.id).unwrap_or(nominal),
                VolatilityBand::Medium => {
                    // "Δt = 50 % latency of x % executions" — floored at the
                    // historical mean: capping penalties make execution-time
                    // histories right-skewed, where the median alone
                    // under-budgets the very contention it was measured
                    // under (the conservative principle of Section III-B).
                    let median = env.profiles.delta_t_ms(svc.id, x, 0.5, nominal);
                    let mean = env.profiles.mean_exec_ms(svc.id).unwrap_or(nominal);
                    median.max(mean)
                }
                VolatilityBand::High => {
                    // Cold-start fallback is deliberately conservative for
                    // volatile services.
                    env.profiles.delta_t_ms(svc.id, x, 0.99, nominal * 1.5)
                }
            },
        };
        est.max(nominal)
    }
}

impl PlanPolicy for OrganizerPolicy {
    fn budget(
        &self,
        _node: usize,
        svc: &Microservice,
        work_factor: f64,
        env: &PlanEnv<'_>,
    ) -> SimDuration {
        SimDuration::from_millis_f64(self.delta_t_ms(svc, work_factor, env))
    }

    fn grant(
        &self,
        _node: usize,
        svc: &Microservice,
        _env: &PlanEnv<'_>,
    ) -> mlp_model::ResourceVector {
        svc.demand
    }

    fn machine_policy(&self) -> MachinePolicy {
        MachinePolicy::LedgerEarliestFit
    }

    fn reserve(&self) -> bool {
        true
    }

    fn horizon(&self) -> SimDuration {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_model::{RequestCatalog, ResourceVector, ServiceId};
    use mlp_net::NetworkModel;
    use mlp_sim::SimTime;
    use mlp_trace::{ExecutionCase, ProfileStore};

    struct H {
        catalog: RequestCatalog,
        net: NetworkModel,
        profiles: ProfileStore,
    }

    impl H {
        fn new() -> Self {
            H {
                catalog: RequestCatalog::paper(),
                net: NetworkModel::paper_default(),
                profiles: ProfileStore::new(),
            }
        }
        fn with_history(svc: ServiceId, times: &[f64]) -> Self {
            let mut h = H::new();
            for &ms in times {
                h.profiles.record(
                    svc,
                    ExecutionCase { usage: ResourceVector::ZERO, machine_load: 0.0, exec_ms: ms },
                );
            }
            h
        }
        fn env(&self) -> PlanEnv<'_> {
            PlanEnv {
                now: SimTime::ZERO,
                profiles: &self.profiles,
                catalog: &self.catalog,
                net: &self.net,
            }
        }
    }

    const SVC: ServiceId = ServiceId(0); // nginx-frontend, base 2ms

    #[test]
    fn cold_start_uses_nominal() {
        let h = H::new();
        let ctx = h.env();
        let svc = ctx.catalog.services.get(SVC).clone();
        let p = OrganizerPolicy::new(Volatility::new(0.5));
        assert_eq!(p.delta_t_ms(&svc, 1.0, &ctx), svc.base_ms);
        // High volatility cold start is extra conservative (1.5×).
        let p_hi = OrganizerPolicy::new(Volatility::new(0.9));
        assert_eq!(p_hi.delta_t_ms(&svc, 1.0, &ctx), svc.base_ms * 1.5);
    }

    #[test]
    fn low_band_uses_last_historical_value() {
        let h = H::with_history(SVC, &[10.0, 20.0, 30.0]);
        let ctx = h.env();
        let svc = ctx.catalog.services.get(SVC).clone();
        let p = OrganizerPolicy::new(Volatility::new(0.2));
        assert_eq!(p.delta_t_ms(&svc, 1.0, &ctx), 30.0, "most recent case");
    }

    #[test]
    fn medium_band_uses_median_of_window() {
        let times: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = H::with_history(SVC, &times);
        let ctx = h.env();
        let svc = ctx.catalog.services.get(SVC).clone();
        // Default SLA weight: x clamps to 100 — Δt is the median floored
        // at the mean (50.5 for 1..=100, the skew guard).
        let p = OrganizerPolicy::new(Volatility::new(0.5));
        assert_eq!(p.delta_t_ms(&svc, 1.0, &ctx), 50.5);
        // A tight SLA weight shrinks the window to the fastest 50%
        // (p50 of 1..=50 = 25), but the mean floor still applies.
        let mut tight = OrganizerPolicy::new(Volatility::new(0.5));
        tight.sla_weight = 1.0;
        assert_eq!(tight.delta_t_ms(&svc, 1.0, &ctx), 50.5);
        // With a symmetric, uncontended history the floor is inactive:
        // a history whose mean is below its median keeps the median.
        let h2 = H::with_history(SVC, &[10.0, 10.0, 10.0, 10.0, 9.0]);
        let ctx2 = h2.env();
        let svc2 = ctx2.catalog.services.get(SVC).clone();
        let dt = OrganizerPolicy::new(Volatility::new(0.5)).delta_t_ms(&svc2, 1.0, &ctx2);
        assert_eq!(dt, 10.0, "median 10 ≥ mean 9.8: median wins");
    }

    #[test]
    fn high_band_uses_tail_of_window() {
        let times: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = H::with_history(SVC, &times);
        let ctx = h.env();
        let svc = ctx.catalog.services.get(SVC).clone();
        // Default weight: p99 over the full history.
        let p = OrganizerPolicy::new(Volatility::new(0.8));
        assert_eq!(p.delta_t_ms(&svc, 1.0, &ctx), 99.0);
        // Tight weight: p99 of the fastest 80% (1..=80) = 80.
        let mut tight = OrganizerPolicy::new(Volatility::new(0.8));
        tight.sla_weight = 1.0;
        let dt = tight.delta_t_ms(&svc, 1.0, &ctx);
        assert!((79.0..=80.0).contains(&dt), "got {dt}");
    }

    #[test]
    fn higher_band_budgets_are_more_conservative() {
        let times: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = H::with_history(SVC, &times);
        let ctx = h.env();
        let svc = ctx.catalog.services.get(SVC).clone();
        let mid = OrganizerPolicy::new(Volatility::new(0.5)).delta_t_ms(&svc, 1.0, &ctx);
        let high = OrganizerPolicy::new(Volatility::new(0.8)).delta_t_ms(&svc, 1.0, &ctx);
        assert!(high > mid, "high {high} must exceed mid {mid}");
    }

    #[test]
    fn nominal_floor_protects_against_thin_history() {
        // One unrealistically fast observation must not produce a
        // too-optimistic budget for a heavy work factor.
        let h = H::with_history(SVC, &[0.01]);
        let ctx = h.env();
        let svc = ctx.catalog.services.get(SVC).clone();
        let p = OrganizerPolicy::new(Volatility::new(0.5));
        assert_eq!(p.delta_t_ms(&svc, 3.0, &ctx), svc.base_ms * 3.0);
    }

    #[test]
    fn ablation_policies_differ() {
        let times: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = H::with_history(SVC, &times);
        let ctx = h.env();
        let svc = ctx.catalog.services.get(SVC).clone();
        let mut p = OrganizerPolicy::new(Volatility::new(0.5));
        p.dt_policy = DtPolicy::AlwaysMean;
        let mean = p.delta_t_ms(&svc, 1.0, &ctx);
        p.dt_policy = DtPolicy::AlwaysP99;
        let p99 = p.delta_t_ms(&svc, 1.0, &ctx);
        assert_eq!(mean, 50.5);
        assert_eq!(p99, 99.0);
    }
}
