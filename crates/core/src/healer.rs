//! The self-healing module (Section III-F): delay-slot candidate search
//! and resource-stretch prioritization.
//!
//! When a microservice invokes late, its reserved window sits idle. The
//! healing module fills the stall with **delay-slot candidates** — waiting
//! requests (handled by re-running the admission pass) or planned
//! microservices of executing requests whose dependencies are already
//! complete — and, when the slot is empty of candidates, **stretches** the
//! resource grant of executing microservices (earliest-deadline-first,
//! then highest variability first) to reclaim the idle resources.

use mlp_cluster::MachineId;
use mlp_model::{RequestCatalog, ResourceSensitivity};
use mlp_sched::{NodePlan, RequestInfo, RequestPlan};
use mlp_sim::SimTime;
use mlp_trace::RequestId;
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};
use std::hash::BuildHasher;

/// Lifecycle state of one planned DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Admitted and planned, not yet invoked.
    Planned,
    /// Currently executing.
    Running,
    /// Finished.
    Done,
}

/// Scheduler-side bookkeeping for one admitted request.
#[derive(Debug, Clone)]
pub struct ActiveRequest {
    /// Identity/arrival info.
    pub info: RequestInfo,
    /// The admission plan (kept in sync with promotions).
    pub plan: RequestPlan,
    /// Per-node lifecycle state.
    pub state: Vec<NodeState>,
    /// Physical readiness time per node, once known (dependencies and
    /// their communication resolved). Promotions must not plan a node
    /// before it can physically start.
    pub ready_at: Vec<Option<SimTime>>,
    /// SLO deadline (EDF key for resource stretch).
    pub deadline: SimTime,
}

impl ActiveRequest {
    /// Whether every node has finished.
    pub fn is_complete(&self) -> bool {
        self.state.iter().all(|s| *s == NodeState::Done)
    }

    /// Whether node `i`'s dependencies are all complete (so it could be
    /// promoted into a delay slot without conflicting with executing or
    /// late-invoking services).
    pub fn deps_done(&self, node: usize, catalog: &RequestCatalog) -> bool {
        let dag = &catalog.request(self.info.rtype).dag;
        dag.parents_iter(node).all(|p| self.state[p] == NodeState::Done)
    }
}

/// A candidate microservice for the delay slot: `(request, node)` plus its
/// current plan, ordered most-promotable first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySlotCandidate {
    /// Owning request.
    pub request: RequestId,
    /// DAG node index.
    pub node: usize,
    /// Its current node plan.
    pub plan: NodePlan,
}

/// Finds delay-slot microservice candidates across all active requests:
/// planned nodes whose dependencies are complete and whose planned start
/// is still in the future (so starting them *now* buys idle time back).
/// Sorted by how much idle time promotion could reclaim (latest planned
/// start first), with ids as deterministic tie-breaks.
pub fn delay_slot_candidates<S: BuildHasher>(
    active: &HashMap<RequestId, ActiveRequest, S>,
    exclude: (RequestId, usize),
    now: SimTime,
    catalog: &RequestCatalog,
) -> Vec<DelaySlotCandidate> {
    top_delay_slot_candidates(active, exclude, now, catalog, usize::MAX)
}

/// [`delay_slot_candidates`] truncated to its best `k` entries —
/// exactly `delay_slot_candidates(..).truncate(k)`, but selecting before
/// sorting. Late invocations fire constantly under load and the healer
/// only promotes `heal_fanout` candidates, so ordering the full candidate
/// set was wasted work; the comparator is a total order (unique
/// `(request, node)` tie-break), which is what makes the partial selection
/// bit-identical to the full sort's prefix.
pub fn top_delay_slot_candidates<S: BuildHasher>(
    active: &HashMap<RequestId, ActiveRequest, S>,
    exclude: (RequestId, usize),
    now: SimTime,
    catalog: &RequestCatalog,
    k: usize,
) -> Vec<DelaySlotCandidate> {
    let mut out = Vec::new();
    if k == 0 {
        return out;
    }
    for (&rid, ar) in active {
        for (i, &st) in ar.state.iter().enumerate() {
            if st != NodeState::Planned || (rid, i) == exclude {
                continue;
            }
            let np = ar.plan.nodes[i];
            if np.planned_start > now && ar.deps_done(i, catalog) {
                out.push(DelaySlotCandidate { request: rid, node: i, plan: np });
            }
        }
    }
    let cmp = |a: &DelaySlotCandidate, b: &DelaySlotCandidate| {
        b.plan
            .planned_start
            .cmp(&a.plan.planned_start)
            .then_with(|| a.request.cmp(&b.request))
            .then_with(|| a.node.cmp(&b.node))
    };
    if out.len() > k {
        out.select_nth_unstable_by(k - 1, cmp);
        out.truncate(k);
    }
    out.sort_by(cmp);
    out
}

/// Incremental index over delay-slot candidates, replacing the per-late-
/// invocation `O(active × nodes)` rescan in [`top_delay_slot_candidates`]
/// with an ordered set walked lazily from the best key down.
///
/// The set is keyed `(planned_start, Reverse(request), Reverse(node))` so
/// reverse iteration replays the reference comparator exactly: latest
/// planned start first, then ascending request id, then ascending node.
/// Entries are *hints*, not truth — [`top_k`](Self::top_k) revalidates
/// each one against the live [`ActiveRequest`] table and discards entries
/// whose request finished, whose node left the `Planned` state, or whose
/// planned start was re-keyed by a promotion or crash replan. Staleness is
/// therefore harmless; the correctness obligation is *insertion
/// completeness*: every transition that can make `(request, node)` a
/// candidate — admission of a root node, a dependency completing, a
/// failure resetting a node to `Planned`, or any planned-start rewrite —
/// must [`note`](Self::note) it. A lazily removed entry can only become
/// valid again through one of those same transitions, which re-inserts it.
///
/// Keys at or before `now` are drained wholesale on every query: simulated
/// time is monotone and planned-start rewrites re-insert under the new
/// key, so such entries can never validate again.
#[derive(Debug, Clone, Default)]
pub struct DelaySlotIndex {
    set: BTreeSet<(SimTime, Reverse<RequestId>, Reverse<usize>)>,
}

impl DelaySlotIndex {
    /// Records `(request, node)` as a *possible* candidate at its current
    /// planned start. Over-noting is safe (queries revalidate); noting a
    /// start at or before `now` is skipped because it could never satisfy
    /// the `planned_start > now` candidate test at any later query.
    pub fn note(&mut self, request: RequestId, node: usize, planned_start: SimTime, now: SimTime) {
        if planned_start > now {
            self.set.insert((planned_start, Reverse(request), Reverse(node)));
        }
    }

    /// Entries currently held (stale hints included) — diagnostics only.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the index holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The best `k` valid candidates, bit-identical to
    /// [`top_delay_slot_candidates`] with the same arguments. Walks the
    /// set best-first, dropping entries that no longer validate and
    /// stopping as soon as `k` survivors are found.
    pub fn top_k<S: BuildHasher>(
        &mut self,
        active: &HashMap<RequestId, ActiveRequest, S>,
        exclude: (RequestId, usize),
        now: SimTime,
        catalog: &RequestCatalog,
        k: usize,
    ) -> Vec<DelaySlotCandidate> {
        // Drain dead history: keys at or before `now` are unreachable
        // forever (see type docs). `split_off` keeps everything at or
        // above the smallest key strictly after `now`.
        self.set = self.set.split_off(&(
            SimTime(now.0 + 1),
            Reverse(RequestId(u64::MAX)),
            Reverse(usize::MAX),
        ));
        let mut out = Vec::new();
        let mut stale = Vec::new();
        for &entry in self.set.iter().rev() {
            if out.len() >= k {
                break;
            }
            let (start, Reverse(rid), Reverse(node)) = entry;
            if (rid, node) == exclude {
                continue;
            }
            let plan = active.get(&rid).and_then(|ar| {
                let np = *ar.plan.nodes.get(node)?;
                let live = ar.state[node] == NodeState::Planned
                    && np.planned_start == start
                    && ar.deps_done(node, catalog);
                live.then_some(np)
            });
            match plan {
                Some(plan) => out.push(DelaySlotCandidate { request: rid, node, plan }),
                None => stale.push(entry),
            }
        }
        for entry in stale {
            self.set.remove(&entry);
        }
        out
    }
}

/// A candidate for resource stretch: a *running* node on the stalled
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchCandidate {
    /// Owning request.
    pub request: RequestId,
    /// DAG node index.
    pub node: usize,
    /// Its SLO deadline (EDF key).
    pub deadline: SimTime,
    /// Sensitivity level of the service (higher = more variable = more to
    /// gain from extra resources, per Fig 3c).
    pub sensitivity: u8,
}

/// Finds running nodes on `machine` eligible for resource stretch, ordered
/// by the paper's two principles: (1) earliest deadline first, (2) high
/// variability first.
pub fn stretch_candidates<S: BuildHasher>(
    active: &HashMap<RequestId, ActiveRequest, S>,
    machine: MachineId,
    catalog: &RequestCatalog,
) -> Vec<StretchCandidate> {
    let mut out = Vec::new();
    for (&rid, ar) in active {
        let dag = &catalog.request(ar.info.rtype).dag;
        for (i, &st) in ar.state.iter().enumerate() {
            if st != NodeState::Running || ar.plan.nodes[i].machine != machine {
                continue;
            }
            let svc = catalog.services.get(dag.node(i).service);
            out.push(StretchCandidate {
                request: rid,
                node: i,
                deadline: ar.deadline,
                sensitivity: svc.sensitivity.level(),
            });
        }
    }
    out.sort_by(|a, b| {
        a.deadline
            .cmp(&b.deadline)
            .then_with(|| b.sensitivity.cmp(&a.sensitivity))
            .then_with(|| a.request.cmp(&b.request))
            .then_with(|| a.node.cmp(&b.node))
    });
    out
}

/// Grant multiplier for stretching a service whose nominal demand is
/// `demand`, given the machine's currently free resources. Bounded: a
/// stretch never grants more than 50 % extra, and only what is actually
/// free ("we monitor the idle resources … and reassign them").
pub fn stretch_factor(free: mlp_model::ResourceVector, demand: mlp_model::ResourceVector) -> f64 {
    // Fraction of one extra `demand` that fits in the free resources.
    // A degenerate headroom (NaN from a 0/0 component ratio, or a negative
    // value from a transiently oversubscribed machine snapshot) must never
    // escape into a running node's grant — a NaN factor would poison the
    // stretched grant and every satisfaction computed from it.
    let headroom = free.satisfaction_of(&demand);
    if !headroom.is_finite() {
        return 1.0;
    }
    1.0 + headroom.clamp(0.0, 0.5)
}

/// Stretch applies only to services that respond to resources at all:
/// a `Less`-sensitive service gains nothing from a larger grant.
pub fn stretch_is_useful(sens: ResourceSensitivity) -> bool {
    sens != ResourceSensitivity::Less
}

/// Ideal (noise-free, fully satisfied) critical-path milliseconds over the
/// not-yet-done nodes of a request — the minimum wall-clock a fault-free
/// re-execution still needs. The deadline-aware shedding rule abandons a
/// request when even this optimistic bound overshoots its SLO deadline.
pub fn remaining_ideal_ms(ar: &ActiveRequest, catalog: &RequestCatalog) -> f64 {
    let dag = &catalog.request(ar.info.rtype).dag;
    dag.critical_path(|i| {
        if ar.state[i] == NodeState::Done {
            0.0
        } else {
            let node = dag.node(i);
            catalog.services.get(node.service).base_ms * node.work_factor
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_model::{RequestCatalog, ResourceVector};
    use mlp_sim::SimDuration;

    fn active(catalog: &RequestCatalog, rid: u64, name: &str) -> ActiveRequest {
        let rt = catalog.request_by_name(name).unwrap();
        let n = rt.dag.len();
        let nodes = (0..n)
            .map(|i| NodePlan {
                machine: MachineId((i % 2) as u32),
                planned_start: SimTime::from_millis(10 * (i as u64 + 1)),
                budget: SimDuration::from_millis(10),
                grant: ResourceVector::new(1.0, 100.0, 10.0),
                reserved: true,
            })
            .collect();
        ActiveRequest {
            info: RequestInfo { id: RequestId(rid), rtype: rt.id, arrival: SimTime::ZERO },
            plan: RequestPlan { request: RequestId(rid), nodes },
            state: vec![NodeState::Planned; n],
            ready_at: vec![None; n],
            deadline: SimTime::from_millis(500 + rid),
        }
    }

    #[test]
    fn candidates_require_done_parents_and_future_start() {
        let cat = RequestCatalog::paper();
        let mut ar = active(&cat, 1, "read-user-timeline"); // chain 0→1→2
        let mut map = HashMap::new();

        // Nothing done yet: only the root qualifies... but the root's
        // planned start (10ms) must be in the future.
        ar.state[0] = NodeState::Done;
        ar.state[1] = NodeState::Planned; // parent done ⇒ candidate
        map.insert(RequestId(1), ar);

        let cands = delay_slot_candidates(&map, (RequestId(99), 0), SimTime::from_millis(5), &cat);
        let pairs: Vec<(RequestId, usize)> = cands.iter().map(|c| (c.request, c.node)).collect();
        assert!(pairs.contains(&(RequestId(1), 1)), "{pairs:?}");
        // Node 2's parent (1) is not done: excluded.
        assert!(!pairs.contains(&(RequestId(1), 2)));
        // Node 0 is already done: excluded.
        assert!(!pairs.contains(&(RequestId(1), 0)));
    }

    #[test]
    fn past_planned_start_is_not_a_candidate() {
        let cat = RequestCatalog::paper();
        let mut ar = active(&cat, 1, "read-user-timeline");
        ar.state[0] = NodeState::Done;
        let mut map = HashMap::new();
        map.insert(RequestId(1), ar);
        // now = 50ms is beyond node 1's planned start of 20ms.
        let cands = delay_slot_candidates(&map, (RequestId(99), 0), SimTime::from_millis(50), &cat);
        assert!(cands.is_empty());
    }

    #[test]
    fn exclude_filters_the_late_node_itself() {
        let cat = RequestCatalog::paper();
        let mut ar = active(&cat, 1, "read-user-timeline");
        ar.state[0] = NodeState::Done;
        let mut map = HashMap::new();
        map.insert(RequestId(1), ar);
        let cands = delay_slot_candidates(&map, (RequestId(1), 1), SimTime::from_millis(5), &cat);
        assert!(cands.iter().all(|c| !(c.request == RequestId(1) && c.node == 1)));
    }

    #[test]
    fn stretch_orders_by_edf_then_variability() {
        let cat = RequestCatalog::paper();
        // compose-post has High-sensitivity services; build two requests
        // with different deadlines, all running on machine 0.
        let mut a = active(&cat, 1, "compose-post");
        let mut b = active(&cat, 2, "compose-post");
        a.deadline = SimTime::from_millis(900);
        b.deadline = SimTime::from_millis(100); // tighter
        for ar in [&mut a, &mut b] {
            for (i, st) in ar.state.iter_mut().enumerate() {
                *st = NodeState::Running;
                ar.plan.nodes[i].machine = MachineId(0);
            }
        }
        let mut map = HashMap::new();
        map.insert(RequestId(1), a);
        map.insert(RequestId(2), b);
        let cands = stretch_candidates(&map, MachineId(0), &cat);
        assert!(!cands.is_empty());
        // All of request 2 (tight deadline) comes before any of request 1.
        let first_r1 = cands.iter().position(|c| c.request == RequestId(1)).unwrap();
        let last_r2 = cands.iter().rposition(|c| c.request == RequestId(2)).unwrap();
        assert!(last_r2 < first_r1, "EDF violated");
        // Within request 2, higher sensitivity first.
        let r2: Vec<&StretchCandidate> =
            cands.iter().filter(|c| c.request == RequestId(2)).collect();
        for w in r2.windows(2) {
            assert!(w[0].sensitivity >= w[1].sensitivity);
        }
    }

    #[test]
    fn stretch_ignores_other_machines_and_non_running() {
        let cat = RequestCatalog::paper();
        let mut ar = active(&cat, 1, "basicSearch");
        ar.state[0] = NodeState::Running;
        ar.plan.nodes[0].machine = MachineId(3);
        ar.state[1] = NodeState::Planned;
        ar.plan.nodes[1].machine = MachineId(0);
        let mut map = HashMap::new();
        map.insert(RequestId(1), ar);
        assert!(stretch_candidates(&map, MachineId(0), &cat).is_empty());
        assert_eq!(stretch_candidates(&map, MachineId(3), &cat).len(), 1);
    }

    #[test]
    fn stretch_factor_bounds() {
        let demand = ResourceVector::new(2.0, 200.0, 20.0);
        // Free resources cover a full extra demand: capped at 1.5.
        assert_eq!(stretch_factor(ResourceVector::new(4.0, 400.0, 40.0), demand), 1.5);
        // Free covers a quarter of the demand.
        assert_eq!(stretch_factor(demand * 0.25, demand), 1.25);
        // Nothing free: no stretch.
        assert_eq!(stretch_factor(ResourceVector::ZERO, demand), 1.0);
    }

    #[test]
    fn stretch_factor_survives_degenerate_inputs() {
        // Zero-component demand: the satisfaction ratio degenerates; the
        // factor must stay a finite no-op multiplier, never NaN.
        let flat = ResourceVector::ZERO;
        let f = stretch_factor(ResourceVector::new(1.0, 100.0, 10.0), flat);
        assert!(f.is_finite());
        assert!((1.0..=1.5).contains(&f), "factor {f} out of bounds");
        // NaN leaking in from a poisoned snapshot is neutralized.
        let poisoned = ResourceVector::new(f64::NAN, 100.0, 10.0);
        let f = stretch_factor(poisoned, ResourceVector::new(1.0, 100.0, 10.0));
        assert_eq!(f, 1.0, "non-finite headroom must collapse to no-op");
        // Negative free (transient oversubscription) clamps to no stretch.
        let f = stretch_factor(
            ResourceVector::new(-1.0, -100.0, -10.0),
            ResourceVector::new(1.0, 100.0, 10.0),
        );
        assert_eq!(f, 1.0);
    }

    #[test]
    fn stretch_usefulness_by_sensitivity() {
        assert!(!stretch_is_useful(ResourceSensitivity::Less));
        assert!(stretch_is_useful(ResourceSensitivity::Moderate));
        assert!(stretch_is_useful(ResourceSensitivity::High));
    }

    #[test]
    fn remaining_ideal_shrinks_as_nodes_finish() {
        let cat = RequestCatalog::paper();
        let mut ar = active(&cat, 1, "read-user-timeline"); // chain 0→1→2
        let full = remaining_ideal_ms(&ar, &cat);
        let rt = cat.request_by_name("read-user-timeline").unwrap();
        assert!((full - rt.ideal_latency_ms(&cat.services)).abs() < 1e-9);
        ar.state[0] = NodeState::Done;
        let partial = remaining_ideal_ms(&ar, &cat);
        assert!(partial < full, "finishing a node must shrink the bound");
        assert!(partial > 0.0);
        for st in &mut ar.state {
            *st = NodeState::Done;
        }
        assert_eq!(remaining_ideal_ms(&ar, &cat), 0.0);
    }

    #[test]
    fn active_request_completion() {
        let cat = RequestCatalog::paper();
        let mut ar = active(&cat, 1, "read-user-timeline");
        assert!(!ar.is_complete());
        for st in &mut ar.state {
            *st = NodeState::Done;
        }
        assert!(ar.is_complete());
    }
}
