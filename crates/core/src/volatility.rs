//! The request-volatility metric `V_r` and its scheduling bands.

use mlp_model::{RequestCatalog, RequestType, VolatilityClass};
use serde::{Deserialize, Serialize};

/// Algorithm 1's three volatility bands with their paper boundaries:
/// low `(0, 0.3]`, medium `(0.3, 0.7)`, high `[0.7, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VolatilityBand {
    /// `V_r ≤ 0.3`: Δt comes directly from the historical value.
    Low,
    /// `0.3 < V_r < 0.7`: Δt = 50 % latency of the fastest x % executions.
    Medium,
    /// `V_r ≥ 0.7`: Δt = 99 % tail latency of the fastest x % executions.
    High,
}

/// A request's volatility `V_r ∈ (0, 1]` — "the likelihood of the request
/// to deviate from its ideal execution conditions" (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Volatility(f64);

impl Volatility {
    /// Wraps a raw `V_r` value, clamping into `[0, 1]`.
    pub fn new(vr: f64) -> Self {
        Volatility(vr.clamp(0.0, 1.0))
    }

    /// Computes `V_r` for a request type from its DAG and the service
    /// catalog (delegates to the model's `α · Σ I·S·C / n`).
    pub fn of_request(rt: &RequestType, catalog: &RequestCatalog) -> Self {
        Volatility::new(mlp_model::requests::raw_volatility(&rt.dag, &catalog.services))
    }

    /// Raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Scheduling band.
    pub fn band(self) -> VolatilityBand {
        if self.0 <= 0.3 {
            VolatilityBand::Low
        } else if self.0 < 0.7 {
            VolatilityBand::Medium
        } else {
            VolatilityBand::High
        }
    }

    /// The `x` of "x % executions" in Algorithm 1: `x ∝ SLA · V_r`, clamped
    /// into `[1, 100]`.
    ///
    /// `sla_weight` expresses how permissive the request's SLA is relative
    /// to the default SLO factor (1.0 = default). Higher volatility or a
    /// looser SLA widens the history window considered, making Δt more
    /// conservative.
    pub fn x_percent(self, sla_weight: f64) -> f64 {
        (100.0 * self.0 * sla_weight.max(0.0)).clamp(1.0, 100.0)
    }
}

impl From<VolatilityClass> for VolatilityBand {
    fn from(c: VolatilityClass) -> Self {
        match c {
            VolatilityClass::Low => VolatilityBand::Low,
            VolatilityClass::Mid => VolatilityBand::Medium,
            VolatilityClass::High => VolatilityBand::High,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_model::RequestCatalog;

    #[test]
    fn bands_match_algorithm1_boundaries() {
        assert_eq!(Volatility::new(0.05).band(), VolatilityBand::Low);
        assert_eq!(Volatility::new(0.3).band(), VolatilityBand::Low);
        assert_eq!(Volatility::new(0.31).band(), VolatilityBand::Medium);
        assert_eq!(Volatility::new(0.69).band(), VolatilityBand::Medium);
        assert_eq!(Volatility::new(0.7).band(), VolatilityBand::High);
        assert_eq!(Volatility::new(1.0).band(), VolatilityBand::High);
    }

    #[test]
    fn clamping() {
        assert_eq!(Volatility::new(-0.5).value(), 0.0);
        assert_eq!(Volatility::new(7.0).value(), 1.0);
    }

    #[test]
    fn of_request_matches_catalog_precompute() {
        let cat = RequestCatalog::paper();
        for rt in &cat.requests {
            let v = Volatility::of_request(rt, &cat);
            assert!((v.value() - rt.volatility).abs() < 1e-12, "{}", rt.name);
            assert_eq!(v.band(), VolatilityBand::from(rt.class()), "{}", rt.name);
        }
    }

    #[test]
    fn x_percent_scales_with_volatility_and_sla() {
        let hi = Volatility::new(0.8);
        let lo = Volatility::new(0.2);
        assert!(hi.x_percent(1.0) > lo.x_percent(1.0));
        assert_eq!(hi.x_percent(1.0), 80.0);
        // Looser SLA widens the window, clamped at 100.
        assert_eq!(hi.x_percent(2.0), 100.0);
        // Floor at 1 %.
        assert_eq!(Volatility::new(0.001).x_percent(0.1), 1.0);
    }
}
