//! Incremental reorder index: the waiting queue as per-(shard, type)
//! arrival-ordered deques with a lazy head merge, replacing the per-round
//! `O(n log n)` [`sort_by_reorder_ratio`](crate::reorder::sort_by_reorder_ratio)
//! with `O(active fronts)` per pop.
//!
//! # Why the merge reproduces the sort exactly
//!
//! For a fixed request type and a fixed `now`, every term of the reorder
//! ratio except the arrival-dependent ones is shared, and both
//! arrival-dependent terms — time waited and deadline urgency — are
//! monotone non-increasing in arrival time. So each per-type queue, kept in
//! `(arrival, id)`-ascending order, is automatically *ratio-descending*:
//! its front is the type's maximum under the sort's exact comparator
//! ([`ratio_order`]: ratio descending, then arrival, then id). The global
//! maximum is therefore always among the queue fronts, and popping the best
//! front repeatedly replays the sorted order pop by pop. Restricting a
//! total order to a partition (the per-shard split of the parallel pass)
//! preserves it, so shard-local merges replay each shard's subsequence too.
//!
//! The one theoretical exception: the α-normalization `r / (1 + r)`
//! compresses ratio gaps, and once `r` exceeds ~10⁷ (a request more than
//! ~17 s overdue at the Δt₀ floor) within-type gaps can fall below one ulp,
//! where rounding could invert a pair relative to the reference sort. No
//! realistic regime holds a request 17 s past a sub-second SLO — the
//! deadline shedder abandons it long before — and the equivalence proptest
//! in this crate plus the engine-level audit-trail test pin the realistic
//! regimes down.
//!
//! # Term caching and invalidation
//!
//! Ratio terms depend on the (immutable) catalog and on the profile
//! store's Δt₀ = `min_exec_ms(root service)`, which changes only when that
//! service's history records or evicts a case. [`ReorderIndex::refresh_terms`]
//! therefore revalidates each cached type against
//! [`ProfileStore::version`](mlp_trace::ProfileStore::version) once per
//! round and recomputes only the types whose root-service version moved —
//! each recompute is reported to the caller for audit/metrics. The `now`-
//! dependent waited/urgency factors are *never* cached: they are recomputed
//! per front comparison (a few flops over a handful of fronts), which is
//! what makes popped order match the sort-based reference bit for bit.

use crate::reorder::{ratio_order, RatioTerms};
use mlp_model::{RequestTypeId, ServiceId};
use mlp_sched::{RequestInfo, SchedulerCtx};
use mlp_sim::SimTime;
use std::collections::VecDeque;

/// One request type's waiting requests, `(arrival, id)`-ascending — and
/// therefore ratio-descending for any fixed `now` (module docs).
#[derive(Debug)]
struct TypeQueue {
    rtype: RequestTypeId,
    reqs: VecDeque<RequestInfo>,
}

/// Per-type queue terms snapshot handed to shard workers: `Clone` + `Send`,
/// detached from the scheduler context.
#[derive(Debug, Clone, Default)]
pub struct TermsTable(Vec<(RequestTypeId, RatioTerms)>);

impl TermsTable {
    fn get(&self, rtype: RequestTypeId) -> &RatioTerms {
        self.0
            .iter()
            .find(|(t, _)| *t == rtype)
            .map(|(_, terms)| terms)
            .expect("terms refreshed for every queued request type")
    }
}

/// One shard's slice of the index. Detachable ([`ReorderIndex::take_shard`])
/// so the parallel admission pass can move it into a shard worker and pop
/// locally without touching shared state.
#[derive(Debug, Default)]
pub struct ShardQueues {
    queues: Vec<TypeQueue>,
    len: usize,
}

impl ShardQueues {
    /// Queued requests in this shard.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the shard has no queued requests.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn insert(&mut self, req: RequestInfo) {
        let qi = match self.queues.iter().position(|q| q.rtype == req.rtype) {
            Some(qi) => qi,
            None => {
                // Type queues stay in ascending-rtype order so scan order —
                // and with it any tie resolution — is a function of content,
                // never of arrival history.
                let at = self.queues.partition_point(|q| q.rtype.0 < req.rtype.0);
                self.queues.insert(at, TypeQueue { rtype: req.rtype, reqs: VecDeque::new() });
                at
            }
        };
        let q = &mut self.queues[qi].reqs;
        let key = (req.arrival, req.id);
        let at = q.partition_point(|r| (r.arrival, r.id) <= key);
        q.insert(at, req);
        self.len += 1;
    }

    /// Index of the type queue whose front pops next under the reorder
    /// ratio, with that front's ratio.
    fn best_by_ratio(&self, now: SimTime, terms: &TermsTable) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (qi, q) in self.queues.iter().enumerate() {
            let Some(front) = q.reqs.front() else { continue };
            let r = terms.get(q.rtype).ratio(front, now);
            let better = match best {
                None => true,
                Some((bqi, br)) => {
                    let bf = self.queues[bqi].reqs.front().expect("best has a front");
                    ratio_order(r, front, br, bf) == std::cmp::Ordering::Less
                }
            };
            if better {
                best = Some((qi, r));
            }
        }
        best
    }

    /// Index of the type queue whose front is the `(arrival, id)` minimum
    /// (the FCFS pop).
    fn best_by_arrival(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (qi, q) in self.queues.iter().enumerate() {
            let Some(front) = q.reqs.front() else { continue };
            let better = match best {
                None => true,
                Some(bqi) => {
                    let bf = self.queues[bqi].reqs.front().expect("best has a front");
                    (front.arrival, front.id) < (bf.arrival, bf.id)
                }
            };
            if better {
                best = Some(qi);
            }
        }
        best
    }

    fn pop_front_of(&mut self, qi: usize) -> RequestInfo {
        let req = self.queues[qi].reqs.pop_front().expect("queue selected non-empty");
        self.len -= 1;
        req
    }

    /// Pops the highest-ratio waiting request (the sort-based path's next
    /// admission candidate), with its ratio.
    pub fn pop_max(&mut self, now: SimTime, terms: &TermsTable) -> Option<(f64, RequestInfo)> {
        let (qi, r) = self.best_by_ratio(now, terms)?;
        Some((r, self.pop_front_of(qi)))
    }

    /// Pops the earliest-arrived waiting request (the FCFS ablation).
    pub fn pop_min(&mut self) -> Option<RequestInfo> {
        let qi = self.best_by_arrival()?;
        Some(self.pop_front_of(qi))
    }
}

/// Cached per-type ratio terms plus the profile version they were computed
/// against (0 when the type's DAG has no root service to profile).
#[derive(Debug)]
struct CachedTerms {
    rtype: RequestTypeId,
    root: Option<ServiceId>,
    version: u64,
    terms: RatioTerms,
}

/// The scheduler-side waiting queue: per-(shard, type) arrival-ordered
/// deques plus the per-type terms cache. See the module docs for the
/// equivalence argument and invalidation rules.
#[derive(Debug, Default)]
pub struct ReorderIndex {
    shards: Vec<ShardQueues>,
    terms: Vec<CachedTerms>,
    /// Shared worker snapshot of `terms`, rebuilt lazily after a refresh
    /// actually changes something (rounds fire per arrival; rebuilding the
    /// table every round was measurable on the 2M soak).
    snapshot: std::sync::Arc<TermsTable>,
    snapshot_stale: bool,
    len: usize,
}

impl ReorderIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queued requests across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether shard `s` has queued requests.
    pub fn shard_has_work(&self, s: usize) -> bool {
        self.shards.get(s).is_some_and(|sh| !sh.is_empty())
    }

    /// Queues `req` under its home shard, preserving `(arrival, id)` order
    /// within its type queue (so deferral re-insertions land back at the
    /// exact position the pop took them from).
    pub fn insert(&mut self, req: RequestInfo, shard: usize) {
        if self.shards.len() <= shard {
            self.shards.resize_with(shard + 1, ShardQueues::default);
        }
        self.shards[shard].insert(req);
        self.len += 1;
    }

    /// Revalidates every queued type's cached terms against the profile
    /// store, recomputing only the types whose root-service version moved.
    /// Returns `(rtype, new version)` for each recompute so the caller can
    /// audit them; first-time computations for newly seen types are not
    /// invalidations and are not reported.
    pub fn refresh_terms(&mut self, ctx: &SchedulerCtx<'_>) -> Vec<(RequestTypeId, u64)> {
        let mut invalidated = Vec::new();
        for sh in &self.shards {
            for q in &sh.queues {
                if q.reqs.is_empty() {
                    continue;
                }
                match self.terms.iter_mut().find(|c| c.rtype == q.rtype) {
                    Some(c) => {
                        let version = c.root.map_or(0, |s| ctx.profiles.version(s));
                        if version != c.version {
                            c.terms = RatioTerms::for_type(q.rtype, ctx);
                            c.version = version;
                            self.snapshot_stale = true;
                            invalidated.push((q.rtype, version));
                        }
                    }
                    None => {
                        let rt = ctx.catalog.request(q.rtype);
                        let root = rt.dag.roots().first().map(|&r| rt.dag.node(r).service);
                        self.terms.push(CachedTerms {
                            rtype: q.rtype,
                            root,
                            version: root.map_or(0, |s| ctx.profiles.version(s)),
                            terms: RatioTerms::for_type(q.rtype, ctx),
                        });
                        self.snapshot_stale = true;
                    }
                }
            }
        }
        invalidated
    }

    /// Snapshot of the cached terms for shard workers, shared via `Arc`
    /// and rebuilt only when a refresh changed a term.
    pub fn terms_table(&mut self) -> std::sync::Arc<TermsTable> {
        if self.snapshot_stale {
            self.snapshot = std::sync::Arc::new(TermsTable(
                self.terms.iter().map(|c| (c.rtype, c.terms)).collect(),
            ));
            self.snapshot_stale = false;
        }
        std::sync::Arc::clone(&self.snapshot)
    }

    /// The champion front across every shard under the reorder ratio:
    /// `(shard, queue, ratio)`.
    fn best_by_ratio(&self, now: SimTime) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for (si, sh) in self.shards.iter().enumerate() {
            for (qi, q) in sh.queues.iter().enumerate() {
                let Some(front) = q.reqs.front() else { continue };
                let r = self.terms_for(q.rtype).ratio(front, now);
                let better = match best {
                    None => true,
                    Some((bsi, bqi, br)) => {
                        let bf =
                            self.shards[bsi].queues[bqi].reqs.front().expect("best has a front");
                        ratio_order(r, front, br, bf) == std::cmp::Ordering::Less
                    }
                };
                if better {
                    best = Some((si, qi, r));
                }
            }
        }
        best
    }

    fn terms_for(&self, rtype: RequestTypeId) -> &RatioTerms {
        self.terms
            .iter()
            .find(|c| c.rtype == rtype)
            .map(|c| &c.terms)
            .expect("refresh_terms ran before ranked access")
    }

    /// The request the next [`pop_max`](Self::pop_max) would return, with
    /// its ratio (the audit record's head + rank).
    pub fn peek_max(&self, now: SimTime) -> Option<(f64, &RequestInfo)> {
        let (si, qi, r) = self.best_by_ratio(now)?;
        Some((r, self.shards[si].queues[qi].reqs.front().expect("selected non-empty")))
    }

    /// Pops the globally highest-ratio request (sorted-path order).
    pub fn pop_max(&mut self, now: SimTime) -> Option<(f64, RequestInfo)> {
        let (si, qi, r) = self.best_by_ratio(now)?;
        self.len -= 1;
        Some((r, self.shards[si].pop_front_of(qi)))
    }

    /// Pops the globally earliest-arrived request (FCFS ablation order).
    pub fn pop_min(&mut self) -> Option<RequestInfo> {
        let mut best: Option<(usize, usize)> = None;
        for (si, sh) in self.shards.iter().enumerate() {
            for (qi, q) in sh.queues.iter().enumerate() {
                let Some(front) = q.reqs.front() else { continue };
                let better = match best {
                    None => true,
                    Some((bsi, bqi)) => {
                        let bf =
                            self.shards[bsi].queues[bqi].reqs.front().expect("best has a front");
                        (front.arrival, front.id) < (bf.arrival, bf.id)
                    }
                };
                if better {
                    best = Some((si, qi));
                }
            }
        }
        let (si, qi) = best?;
        self.len -= 1;
        Some(self.shards[si].pop_front_of(qi))
    }

    /// Detaches shard `s`'s queues for a parallel worker. The worker drains
    /// them completely (admissions plus deferrals); deferred requests come
    /// back through [`insert`](Self::insert) after the barrier.
    pub fn take_shard(&mut self, s: usize) -> ShardQueues {
        if s >= self.shards.len() {
            return ShardQueues::default();
        }
        let sq = std::mem::take(&mut self.shards[s]);
        self.len -= sq.len;
        sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorder::sort_by_reorder_ratio;
    use mlp_cluster::Cluster;
    use mlp_model::{RequestCatalog, ResourceVector};
    use mlp_net::NetworkModel;
    use mlp_trace::{AuditLog, ExecutionCase, MetricsRegistry, ProfileStore, RequestId};

    struct H {
        cluster: Cluster,
        catalog: RequestCatalog,
        net: NetworkModel,
        profiles: ProfileStore,
        metrics: MetricsRegistry,
        audit: AuditLog,
    }

    impl H {
        fn new() -> Self {
            H {
                cluster: Cluster::homogeneous(2, ResourceVector::new(6.0, 32_000.0, 1_000.0)),
                catalog: RequestCatalog::paper(),
                net: NetworkModel::paper_default(),
                profiles: ProfileStore::new(),
                metrics: MetricsRegistry::new(),
                audit: AuditLog::disabled(),
            }
        }
        fn ctx(&mut self) -> SchedulerCtx<'_> {
            self.ctx_at(1000)
        }
        fn ctx_at(&mut self, now_ms: u64) -> SchedulerCtx<'_> {
            SchedulerCtx {
                now: SimTime::from_millis(now_ms),
                cluster: &mut self.cluster,
                profiles: &self.profiles,
                catalog: &self.catalog,
                net: &self.net,
                metrics: &self.metrics,
                audit: &self.audit,
            }
        }
        fn req(&self, id: u64, name: &str, arrival_ms: u64) -> RequestInfo {
            RequestInfo {
                id: RequestId(id),
                rtype: self.catalog.request_by_name(name).unwrap().id,
                arrival: SimTime::from_millis(arrival_ms),
            }
        }
    }

    /// A mixed queue over several types and arrivals, inserted in a
    /// scrambled order.
    fn mixed_queue(h: &H) -> Vec<RequestInfo> {
        let names = ["compose-post", "read-home-timeline", "basicSearch", "read-user-timeline"];
        let mut reqs = Vec::new();
        for id in 0..40u64 {
            let name = names[(id * 7 % names.len() as u64) as usize];
            let arrival = (id * 13) % 990;
            reqs.push(h.req(id, name, arrival));
        }
        reqs
    }

    #[test]
    fn pop_sequence_matches_sort_reference() {
        let mut h = H::new();
        let mut reference = mixed_queue(&h);
        let mut index = ReorderIndex::new();
        for r in &reference {
            index.insert(*r, (r.id.0 % 3) as usize); // spread over shards
        }
        let now = SimTime::from_millis(1000);
        let ctx = h.ctx();
        sort_by_reorder_ratio(&mut reference, now, &ctx);
        index.refresh_terms(&ctx);
        let mut popped = Vec::new();
        while let Some((_, r)) = index.pop_max(now) {
            popped.push(r);
        }
        assert_eq!(popped, reference, "lazy merge must replay the sort order");
        assert!(index.is_empty());
    }

    #[test]
    fn fcfs_pop_is_arrival_ordered() {
        let h = H::new();
        let reqs = mixed_queue(&h);
        let mut index = ReorderIndex::new();
        for r in &reqs {
            index.insert(*r, (r.id.0 % 2) as usize);
        }
        let mut expected = reqs.clone();
        expected.sort_by_key(|r| (r.arrival, r.id));
        let mut popped = Vec::new();
        while let Some(r) = index.pop_min() {
            popped.push(r);
        }
        assert_eq!(popped, expected);
        drop(h);
    }

    #[test]
    fn reinserted_deferral_pops_next_again() {
        let mut h = H::new();
        let reqs = mixed_queue(&h);
        let mut index = ReorderIndex::new();
        for r in &reqs {
            index.insert(*r, 0);
        }
        let now = SimTime::from_millis(1000);
        let ctx = h.ctx();
        index.refresh_terms(&ctx);
        let (rank, head) = index.pop_max(now).unwrap();
        index.insert(head, 0);
        let (rank2, head2) = index.pop_max(now).unwrap();
        assert_eq!(head, head2, "a re-queued deferral keeps its position");
        assert_eq!(rank.to_bits(), rank2.to_bits());
    }

    #[test]
    fn refresh_invalidates_only_bumped_types() {
        let mut h = H::new();
        let a = h.req(1, "read-home-timeline", 0);
        let b = h.req(2, "basicSearch", 5);
        let mut index = ReorderIndex::new();
        index.insert(a, 0);
        index.insert(b, 0);
        {
            let ctx = h.ctx();
            assert!(index.refresh_terms(&ctx).is_empty(), "first build is not an invalidation");
            assert!(index.refresh_terms(&ctx).is_empty(), "no change, no recompute");
        }
        // Bump only basicSearch's root service history.
        let bs = h.catalog.request_by_name("basicSearch").unwrap();
        let bs_root = bs.dag.node(bs.dag.roots()[0]).service;
        h.profiles.record(
            bs_root,
            ExecutionCase { usage: ResourceVector::ZERO, machine_load: 0.0, exec_ms: 3.0 },
        );
        let bs_type = bs.id;
        let ctx = h.ctx();
        let invalidated = index.refresh_terms(&ctx);
        assert_eq!(invalidated.len(), 1, "only the bumped type recomputes: {invalidated:?}");
        assert_eq!(invalidated[0].0, bs_type);
        // And the recomputed terms rank with the new Δt₀ — identical to a
        // fresh sort's scoring.
        let mut reference = vec![a, b];
        sort_by_reorder_ratio(&mut reference, ctx.now, &ctx);
        let (_, head) = index.pop_max(ctx.now).unwrap();
        assert_eq!(head, reference[0]);
    }

    mod equivalence {
        use super::*;
        use mlp_trace::ExecutionCase;
        use proptest::prelude::*;

        const TYPE_NAMES: [&str; 4] =
            ["compose-post", "read-home-timeline", "basicSearch", "read-user-timeline"];

        /// One step of an interleaved scheduler history: an arrival, a
        /// profile-store update (a version bump for some type's root
        /// service), or an admission round that pops a batch.
        #[derive(Debug, Clone, Copy)]
        enum Op {
            Insert { type_sel: usize, arrival_ms: u64 },
            RecordCase { type_sel: usize, exec_ms_x10: u64 },
            PopBatch { count: usize },
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            // The unweighted union biases toward inserts by repetition so
            // histories actually accumulate queue depth before popping.
            let insert = (0usize..TYPE_NAMES.len(), 0u64..5_000)
                .prop_map(|(type_sel, arrival_ms)| Op::Insert { type_sel, arrival_ms });
            let insert2 = (0usize..TYPE_NAMES.len(), 0u64..5_000)
                .prop_map(|(type_sel, arrival_ms)| Op::Insert { type_sel, arrival_ms });
            let record = (0usize..TYPE_NAMES.len(), 1u64..5_000)
                .prop_map(|(type_sel, exec_ms_x10)| Op::RecordCase { type_sel, exec_ms_x10 });
            let pop = (1usize..8).prop_map(|count| Op::PopBatch { count });
            prop_oneof![insert, insert2, record, pop]
        }

        proptest! {
            /// The tentpole equivalence oracle: across any interleaving of
            /// arrivals, profile updates (terms invalidations), and pop
            /// batches at advancing `now`s, the incremental index pops the
            /// *exact* request sequence the sort-based reference produces.
            #[test]
            fn pops_match_sort_reference_under_interleaving(
                ops in prop::collection::vec(arb_op(), 1..80)
            ) {
                let mut h = H::new();
                let mut index = ReorderIndex::new();
                let mut mirror: Vec<RequestInfo> = Vec::new();
                let mut next_id = 0u64;
                let mut now_ms = 6_000u64; // past every arrival draw
                for op in ops {
                    match op {
                        Op::Insert { type_sel, arrival_ms } => {
                            let req = h.req(next_id, TYPE_NAMES[type_sel], arrival_ms);
                            next_id += 1;
                            index.insert(req, (req.id.0 % 3) as usize);
                            mirror.push(req);
                        }
                        Op::RecordCase { type_sel, exec_ms_x10 } => {
                            let rt = h.catalog.request_by_name(TYPE_NAMES[type_sel]).unwrap();
                            let root = rt.dag.node(rt.dag.roots()[0]).service;
                            h.profiles.record(
                                root,
                                ExecutionCase {
                                    usage: ResourceVector::ZERO,
                                    machine_load: 0.0,
                                    exec_ms: exec_ms_x10 as f64 / 10.0,
                                },
                            );
                        }
                        Op::PopBatch { count } => {
                            now_ms += 50;
                            let now = SimTime::from_millis(now_ms);
                            let ctx = h.ctx_at(now_ms);
                            sort_by_reorder_ratio(&mut mirror, now, &ctx);
                            index.refresh_terms(&ctx);
                            for _ in 0..count.min(mirror.len()) {
                                let (_, got) = index.pop_max(now).expect("mirror non-empty");
                                let want = mirror.remove(0);
                                prop_assert_eq!(got, want, "index diverged from sort order");
                            }
                            prop_assert_eq!(index.len(), mirror.len());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn take_shard_detaches_and_len_tracks() {
        let mut h = H::new();
        let reqs = mixed_queue(&h);
        let mut index = ReorderIndex::new();
        for r in &reqs {
            index.insert(*r, (r.id.0 % 2) as usize);
        }
        let total = index.len();
        let ctx = h.ctx();
        index.refresh_terms(&ctx);
        let terms = index.terms_table();
        let mut shard0 = index.take_shard(0);
        assert_eq!(index.len() + shard0.len(), total);
        assert!(!index.shard_has_work(0));
        assert!(index.shard_has_work(1));
        // The detached shard pops its own subsequence of the global order.
        let now = ctx.now;
        let mut local = Vec::new();
        while let Some((_, r)) = shard0.pop_max(now, &terms) {
            local.push(r);
        }
        let mut expected: Vec<RequestInfo> =
            reqs.iter().copied().filter(|r| r.id.0 % 2 == 0).collect();
        sort_by_reorder_ratio(&mut expected, now, &ctx);
        assert_eq!(local, expected);
    }
}
