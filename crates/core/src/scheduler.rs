//! [`VMlpScheduler`]: the full v-MLP scheme behind the common
//! [`Scheduler`] trait.

use crate::healer::top_delay_slot_candidates;
use crate::healer::{
    remaining_ideal_ms, stretch_candidates, stretch_factor, stretch_is_useful, ActiveRequest,
    DelaySlotIndex, NodeState,
};
use crate::interface::InterfaceLayer;
use crate::organizer::{DtPolicy, OrganizerPolicy};
use crate::reorder::sort_by_reorder_ratio;
use crate::reorder_index::ReorderIndex;
use crate::volatility::Volatility;
use mlp_cluster::{MachineId, ShardPool};
use mlp_model::VolatilityClass;
use mlp_sched::placement::{plan_request, plan_request_in_shard, unreserve_plan, FitCursor};
use mlp_sched::{
    HealingAction, LateInfo, NodeFailure, RequestInfo, RequestPlan, Scheduler, SchedulerCtx,
};
use mlp_sim::{FastHashMap, SimDuration, SimTime};
use mlp_trace::metrics::names;
use mlp_trace::{Decision, DecisionKind, RequestId, Span};
use serde::{Deserialize, Serialize};

/// Feature switches for v-MLP; every design decision called out in
/// DESIGN.md §6 can be ablated independently. [`VMlpConfig::paper`] is the
/// full scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VMlpConfig {
    /// Sort the waiting queue by the reorder ratio `R` (off = plain FCFS).
    pub reorder: bool,
    /// On a failed placement, advance the next request ("switch `r_i` with
    /// `r_{i+1}`"; off = head-of-line blocking).
    pub queue_switch: bool,
    /// Self-healing: fill stalls with delay-slot microservice candidates.
    pub delay_slot: bool,
    /// Self-healing: stretch executing services into idle resources.
    pub resource_stretch: bool,
    /// Δt estimation policy (Banded = Algorithm 1).
    pub dt_policy: DtPolicy,
    /// Release the unused tail of a reservation when a span finishes early
    /// (keeps the future ledger honest).
    pub trim_reservations: bool,
    /// How many delay-slot / stretch candidates to act on per deviation.
    pub heal_fanout: usize,
    /// Keep the waiting queue as a flat `Vec` re-sorted by
    /// [`sort_by_reorder_ratio`] every round instead of the incremental
    /// [`ReorderIndex`]. The two paths admit in the same order and emit
    /// the same audit trail (modulo `IndexInvalidate` records); this
    /// escape hatch exists to prove that equivalence and to measure the
    /// index's win.
    pub unindexed_reorder: bool,
}

impl VMlpConfig {
    /// The paper's full v-MLP.
    pub fn paper() -> Self {
        VMlpConfig {
            reorder: true,
            queue_switch: true,
            delay_slot: true,
            resource_stretch: true,
            dt_policy: DtPolicy::Banded,
            trim_reservations: true,
            heal_fanout: 2,
            unindexed_reorder: false,
        }
    }

    /// Self-organizing module only (ablation: no healing).
    pub fn without_healing() -> Self {
        VMlpConfig { delay_slot: false, resource_stretch: false, ..Self::paper() }
    }
}

impl Default for VMlpConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The volatility-aware MLP scheduler (Section III).
pub struct VMlpScheduler {
    cfg: VMlpConfig,
    /// Sort-based waiting queue; used (and non-empty) only when
    /// `cfg.unindexed_reorder` is set.
    queue: Vec<RequestInfo>,
    /// Incremental waiting-queue index (the default path).
    index: ReorderIndex,
    active: FastHashMap<RequestId, ActiveRequest>,
    /// Ordered hint set over future-planned, dependency-free nodes, so a
    /// late invocation's candidate search stops after `heal_fanout` hits
    /// instead of rescanning every active request (see
    /// [`DelaySlotIndex`]). Maintained only when `cfg.delay_slot` is on.
    delay_slots: DelaySlotIndex,
    rr_cursor: usize,
    fit: FitCursor,
    /// Per-shard placement cursors for the parallel passes, kept across
    /// rounds so their probe maps retain capacity — a fresh map per job
    /// per round spent more time growing and rehashing than probing.
    /// `begin_round` inside the job gives them the exact same lifetime
    /// semantics as the sequential `fit` above.
    shard_fits: Vec<FitCursor>,
    interface: InterfaceLayer,
}

impl VMlpScheduler {
    /// Creates the full paper configuration.
    pub fn new() -> Self {
        Self::with_config(VMlpConfig::paper())
    }

    /// Creates a configured (possibly ablated) instance.
    pub fn with_config(cfg: VMlpConfig) -> Self {
        VMlpScheduler {
            cfg,
            queue: Vec::new(),
            index: ReorderIndex::new(),
            active: FastHashMap::default(),
            delay_slots: DelaySlotIndex::default(),
            rr_cursor: 0,
            fit: FitCursor::new(),
            shard_fits: Vec::new(),
            interface: InterfaceLayer::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> VMlpConfig {
        self.cfg
    }

    /// Number of admitted-but-unfinished requests (diagnostics).
    pub fn active_requests(&self) -> usize {
        self.active.len()
    }

    /// The run-time telemetry of the interface layer (Section III-D).
    pub fn interface(&self) -> &InterfaceLayer {
        &self.interface
    }

    fn admit(&mut self, req: RequestInfo, plan: RequestPlan, ctx: &SchedulerCtx<'_>) {
        let rt = ctx.catalog.request(req.rtype);
        let deadline = req.arrival + SimDuration::from_millis_f64(rt.slo_ms);
        if self.cfg.delay_slot {
            // Root nodes are dependency-free from the moment of admission:
            // seed the delay-slot index with them. Non-roots enter when
            // their last dependency completes.
            for i in 0..plan.nodes.len() {
                if rt.dag.parents_iter(i).next().is_none() {
                    self.delay_slots.note(req.id, i, plan.nodes[i].planned_start, ctx.now);
                }
            }
        }
        self.active.insert(
            req.id,
            ActiveRequest {
                info: req,
                state: vec![NodeState::Planned; plan.nodes.len()],
                ready_at: vec![None; plan.nodes.len()],
                plan,
                deadline,
            },
        );
    }
}

impl VMlpScheduler {
    /// Tries to move each candidate `(request, node)` to the earliest slot
    /// its machine's ledger allows before its current planned start —
    /// the delay-slot fill. Only nodes that are still planned, with all
    /// dependencies complete, qualify ("candidates in the delay slot would
    /// not conflict with executing ones", Section III-F).
    fn promote_candidates(
        &mut self,
        candidates: &[(RequestId, usize)],
        ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        let mut actions = Vec::new();
        for &(rid, node) in candidates {
            let Some(ar) = self.active.get(&rid) else { continue };
            if ar.state[node] != NodeState::Planned || !ar.deps_done(node, ctx.catalog) {
                continue;
            }
            let np = ar.plan.nodes[node];
            if np.planned_start <= ctx.now {
                continue;
            }
            // The node cannot physically start before its dependencies'
            // messages arrive: floor the promotion at the known readiness
            // time, or at the expected communication delay when readiness
            // is still in flight. Promoting below the floor would leave a
            // reservation the node cannot honor — and a planned start the
            // deviation detector would immediately flag as late again.
            let floor = match ar.ready_at[node] {
                Some(at) => at.max(ctx.now),
                None => {
                    let dag = &ctx.catalog.request(ar.info.rtype).dag;
                    let callee = ctx.catalog.services.get(dag.node(node).service);
                    ctx.now + ctx.net.expected_delay(false, callee.comm)
                }
            };
            if floor >= np.planned_start {
                continue;
            }
            // Only promote if the node's machine can actually run it
            // earlier than planned. The search window excludes the node's
            // own reservation, which still sits at the old position — a
            // slot found before `planned_start` is therefore additional
            // free capacity.
            let machine = ctx.cluster.machine(np.machine);
            let slot = machine.ledger.earliest_fit(floor, np.planned_start, np.budget, np.grant);
            let Some(new_start) = slot else { continue };
            if new_start >= np.planned_start {
                continue;
            }
            // Only act on *meaningful* gains: moving a node a sliver
            // earlier buys nothing but churn (and each move risks landing
            // on a machine whose actual state has drifted from its plan).
            let gain = np.planned_start.since(new_start);
            if gain < np.budget.mul_f64(0.25) {
                continue;
            }
            // A near-term start must also clear the machine's *actual*
            // occupancy — promoting into a ledger gap that is physically
            // busy (services overrunning their budgets) would create the
            // very contention healing is meant to avoid.
            let imminent = new_start.since(ctx.now) < np.budget;
            if imminent && !np.grant.fits_within(&machine.actual_free()) {
                continue;
            }
            // Move the reservation.
            let m = ctx.cluster.machine_mut(np.machine);
            if np.reserved {
                m.ledger.unreserve(np.planned_start, np.planned_end(), np.grant);
            }
            m.ledger.reserve(new_start, new_start + np.budget, np.grant);
            let ar = self.active.get_mut(&rid).expect("checked above");
            ar.plan.nodes[node].planned_start = new_start;
            ar.plan.nodes[node].reserved = true;
            // Re-key the delay-slot hint under the new start; the entry at
            // the old start is now stale and gets dropped lazily.
            self.delay_slots.note(rid, node, new_start, ctx.now);
            ctx.metrics.inc(names::DELAY_SLOT_FILLS);
            ctx.audit.record(
                Decision::new(ctx.now, DecisionKind::DelaySlotFill, "promoted-into-stall")
                    .request(rid)
                    .node(node)
                    .machine(np.machine)
                    .value(gain.as_millis_f64()),
            );
            actions.push(HealingAction::PromoteNode { request: rid, node, new_start });
        }
        actions
    }

    /// Revalidates the index's cached ratio terms against the profile
    /// store, publishing each recompute as a metric tick and (when tracing)
    /// an [`DecisionKind::IndexInvalidate`] record. These records exist
    /// *only* on the indexed path — the sort recomputes everything every
    /// round and has nothing to invalidate — so audit-trail equivalence
    /// comparisons filter them out.
    fn refresh_index_terms(&mut self, ctx: &SchedulerCtx<'_>) {
        let invalidated = self.index.refresh_terms(ctx);
        if invalidated.is_empty() {
            return;
        }
        ctx.metrics.add(names::INDEX_INVALIDATIONS, invalidated.len() as u64);
        if ctx.audit.is_enabled() {
            for (rtype, version) in invalidated {
                ctx.audit.record(
                    Decision::new(ctx.now, DecisionKind::IndexInvalidate, "profile-version-bump")
                        .value(rtype.0 as f64)
                        .rank(version as f64),
                );
            }
        }
    }

    /// The sequential admission round over the incremental index: pops
    /// replace the sorted queue walk one-for-one (the lazy merge replays
    /// the sort's exact order — see [`crate::reorder_index`]), and every
    /// audit record matches the sort-based reference in
    /// [`schedule`](Scheduler::schedule) reason-for-reason.
    fn schedule_indexed(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan> {
        self.fit.begin_round(ctx.now);
        if self.index.is_empty() {
            return Vec::new();
        }
        if self.cfg.reorder {
            // Terms must be current before any ranked pop, even with a
            // single waiter; the head record matches the sort path's
            // len > 1 condition.
            self.refresh_index_terms(ctx);
            if self.index.len() > 1 && ctx.audit.is_enabled() {
                if let Some((rank, head)) = self.index.peek_max(ctx.now) {
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Reorder, "reorder-ratio-sort")
                            .request(head.id)
                            .rank(rank)
                            .value(self.index.len() as f64),
                    );
                }
            }
        }

        let mut plans = Vec::new();
        let mut deferred: Vec<RequestInfo> = Vec::new();
        let mut failures = 0usize;
        while failures < mlp_sched::baselines::MAX_ADMIT_TRIES_PER_ROUND {
            let popped = if self.cfg.reorder {
                self.index.pop_max(ctx.now).map(|(_, r)| r)
            } else {
                self.index.pop_min()
            };
            let Some(req) = popped else { break };
            let rt = ctx.catalog.request(req.rtype);
            let policy = organizer_policy(self.cfg.dt_policy, rt.volatility);
            match plan_request(&req, &policy, &mut self.rr_cursor, &mut self.fit, ctx) {
                Some(plan) => {
                    if ctx.audit.is_enabled() {
                        let root_budget =
                            plan.nodes.first().map_or(0.0, |np| np.budget.as_millis_f64());
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::BudgetTier, "banded-dt")
                                .request(req.id)
                                .vr(policy.vr.value())
                                .budget_ms(root_budget),
                        );
                    }
                    self.admit(req, plan.clone(), ctx);
                    plans.push(plan);
                }
                None => {
                    failures += 1;
                    deferred.push(req);
                    if self.cfg.queue_switch {
                        ctx.metrics.inc(names::QUEUE_SWITCHES);
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::Defer, "queue-switch")
                                .request(req.id)
                                .vr(policy.vr.value()),
                        );
                    } else {
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::Defer, "head-of-line-block")
                                .request(req.id)
                                .vr(policy.vr.value()),
                        );
                        // Head-of-line blocking: everything still queued
                        // simply stays in the index for the next round.
                        break;
                    }
                }
            }
        }
        // Deferred pops rejoin their home shard's type queue at the exact
        // (arrival, id) position the pop removed them from.
        for req in deferred {
            let shard = ctx.cluster.home_shard(req.id.0).0 as usize;
            self.index.insert(req, shard);
        }
        plans
    }

    /// The parallel admission pass over the incremental index: same three
    /// phases as the sorted variant in
    /// [`schedule_parallel`](Scheduler::schedule_parallel), but each shard
    /// worker pops its *detached* shard queues locally instead of receiving
    /// a pre-sorted slice. Shard-local pop order is the global sorted
    /// order restricted to the shard, so the merged outcome matches the
    /// sorted pass record-for-record.
    fn schedule_parallel_indexed(
        &mut self,
        ctx: &mut SchedulerCtx<'_>,
        pool: &ShardPool,
    ) -> Vec<RequestPlan> {
        if self.index.is_empty() {
            return Vec::new();
        }
        self.fit.begin_round(ctx.now);

        // Phase 1 — terms refresh plus the head-of-queue audit record,
        // matching the sorted pass's global reorder.
        if self.cfg.reorder {
            self.refresh_index_terms(ctx);
            if self.index.len() > 1 && ctx.audit.is_enabled() {
                if let Some((rank, head)) = self.index.peek_max(ctx.now) {
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Reorder, "reorder-ratio-sort")
                            .request(head.id)
                            .rank(rank)
                            .value(self.index.len() as f64),
                    );
                }
            }
        }

        // Phase 2 — detach each working shard's queues and plan on the
        // pool. Workers drain their queues completely: a detached queue
        // has no owner after the job, so even past the failure cap every
        // remaining request is popped into the deferral list.
        let shards = ctx.cluster.shard_count();
        let mut wanted = vec![false; shards];
        for (s, w) in wanted.iter_mut().enumerate() {
            *w = self.index.shard_has_work(s);
        }
        let env = ctx.env();
        let dt_policy = self.cfg.dt_policy;
        let reorder = self.cfg.reorder;
        let audit_on = ctx.audit.is_enabled();
        // One shared terms snapshot, rebuilt only when a refresh changed a
        // term — rounds fire per arrival, so a per-round rebuild plus a
        // per-job deep clone were both measurable.
        let terms = self.index.terms_table();
        if self.shard_fits.len() < shards {
            self.shard_fits.resize_with(shards, FitCursor::new);
        }
        let by_shard = ctx.cluster.machines_in_shards_mut(&wanted);
        let jobs: Vec<_> = by_shard
            .into_iter()
            .map(|(s, mut machines)| {
                let mut queues = self.index.take_shard(s);
                let terms = std::sync::Arc::clone(&terms);
                // Worker-local placement cursor: probes against this
                // shard's ledgers, which only this worker writes. Taken
                // from (and returned to) its persistent slot so the probe
                // map keeps its capacity across rounds.
                let mut fit = std::mem::take(&mut self.shard_fits[s]);
                move |_shard: usize| {
                    let mut out = ShardPass { shard: s, ..ShardPass::default() };
                    let mut failures = 0usize;
                    fit.begin_round(env.now);
                    loop {
                        let at_cap = failures >= mlp_sched::baselines::MAX_ADMIT_TRIES_PER_ROUND;
                        let popped = if reorder {
                            queues.pop_max(env.now, &terms).map(|(_, r)| r)
                        } else {
                            queues.pop_min()
                        };
                        let Some(req) = popped else { break };
                        if at_cap {
                            // Shard saturated for this round: everything
                            // behind the cap rides to the overflow pass.
                            out.deferred.push(req);
                            continue;
                        }
                        let rt = env.catalog.request(req.rtype);
                        let policy = organizer_policy(dt_policy, rt.volatility);
                        match plan_request_in_shard(&req, &policy, &env, &mut fit, &mut machines) {
                            Some(plan) => {
                                if audit_on {
                                    let root_budget = plan
                                        .nodes
                                        .first()
                                        .map_or(0.0, |np| np.budget.as_millis_f64());
                                    out.decisions.push(
                                        Decision::new(
                                            env.now,
                                            DecisionKind::BudgetTier,
                                            "banded-dt",
                                        )
                                        .request(req.id)
                                        .vr(policy.vr.value())
                                        .budget_ms(root_budget),
                                    );
                                }
                                out.admitted.push((req, plan));
                            }
                            None => {
                                failures += 1;
                                if audit_on {
                                    out.decisions.push(
                                        Decision::new(
                                            env.now,
                                            DecisionKind::Defer,
                                            "no-home-shard-slot",
                                        )
                                        .request(req.id)
                                        .vr(policy.vr.value()),
                                    );
                                }
                                out.deferred.push(req);
                            }
                        }
                    }
                    out.fit = fit;
                    out
                }
            })
            .collect();
        let outcomes = pool.scatter(jobs);

        // Phase 3a — barrier merge, fixed shard-index order.
        let mut plans = Vec::new();
        let mut overflow: Vec<RequestInfo> = Vec::new();
        for out in outcomes {
            self.shard_fits[out.shard] = out.fit;
            for d in out.decisions {
                ctx.audit.record(d);
            }
            for (req, plan) in out.admitted {
                self.admit(req, plan.clone(), ctx);
                plans.push(plan);
            }
            overflow.extend(out.deferred);
        }

        // Phase 3b — sequential overflow pass, identical to the sorted
        // variant: whole-cluster scan for requests their home shard could
        // not host.
        let mut deferred = Vec::new();
        let mut failures = 0usize;
        for (i, req) in overflow.iter().enumerate() {
            if failures >= mlp_sched::baselines::MAX_ADMIT_TRIES_PER_ROUND {
                deferred.extend_from_slice(&overflow[i..]);
                break;
            }
            let rt = ctx.catalog.request(req.rtype);
            let policy = organizer_policy(dt_policy, rt.volatility);
            match plan_request(req, &policy, &mut self.rr_cursor, &mut self.fit, ctx) {
                Some(plan) => {
                    if ctx.audit.is_enabled() {
                        let root_budget =
                            plan.nodes.first().map_or(0.0, |np| np.budget.as_millis_f64());
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::BudgetTier, "banded-dt")
                                .request(req.id)
                                .vr(policy.vr.value())
                                .budget_ms(root_budget),
                        );
                    }
                    self.admit(*req, plan.clone(), ctx);
                    plans.push(plan);
                }
                None => {
                    failures += 1;
                    deferred.push(*req);
                    ctx.metrics.inc(names::QUEUE_SWITCHES);
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Defer, "queue-switch")
                            .request(req.id)
                            .vr(policy.vr.value()),
                    );
                }
            }
        }
        for req in deferred {
            let shard = ctx.cluster.home_shard(req.id.0).0 as usize;
            self.index.insert(req, shard);
        }
        plans
    }
}

impl Default for VMlpScheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// The admission policy for one request (Algorithm 1's banded Δt).
fn organizer_policy(dt_policy: DtPolicy, volatility: f64) -> OrganizerPolicy {
    OrganizerPolicy {
        vr: Volatility::new(volatility),
        sla_weight: OrganizerPolicy::DEFAULT_SLA_WEIGHT,
        dt_policy,
        horizon: SimDuration::from_secs(10),
    }
}

/// Everything one shard worker produces during a parallel admission pass.
/// Side effects (admissions, audit records, deferrals) are buffered here
/// and applied at the barrier in shard-index order, so the merged outcome
/// is independent of worker count and completion order.
#[derive(Default)]
struct ShardPass {
    admitted: Vec<(RequestInfo, RequestPlan)>,
    deferred: Vec<RequestInfo>,
    decisions: Vec<Decision>,
    /// Which shard this pass ran over, so the worker-local placement
    /// cursor rides back to its slot in `VMlpScheduler::shard_fits`.
    shard: usize,
    fit: FitCursor,
}

impl Scheduler for VMlpScheduler {
    fn name(&self) -> &'static str {
        "v-MLP"
    }

    fn on_arrival(&mut self, req: RequestInfo, ctx: &mut SchedulerCtx<'_>) {
        if !self.cfg.unindexed_reorder {
            // Default path: straight into the incremental index, under the
            // request's home shard (the same partition the parallel
            // admission pass scatters by).
            let shard = ctx.cluster.home_shard(req.id.0).0 as usize;
            self.index.insert(req, shard);
            return;
        }
        // Keep the queue sorted by (arrival, id) on insert: the FCFS
        // ablation then needs no per-round sort at all, and the reorder
        // sort's (arrival, id) tie-break makes its result independent of
        // input order either way. (arrival, id) is a strict total order —
        // ids are unique — so upper-bound insertion is exactly what the old
        // per-round stable sort produced.
        let key = (req.arrival, req.id);
        let at = self.queue.partition_point(|r| (r.arrival, r.id) <= key);
        self.queue.insert(at, req);
    }

    fn schedule(&mut self, ctx: &mut SchedulerCtx<'_>) -> Vec<RequestPlan> {
        if !self.cfg.unindexed_reorder {
            return self.schedule_indexed(ctx);
        }
        // --- Sort-based reference path (`unindexed_reorder`) -------------
        // Line 1–2 of Algorithm 1: the machine status "refresh" is the
        // ledger state itself, which completions and trims keep current.
        // The queue is maintained in (arrival, id) order by `on_arrival`
        // (deferrals below preserve it), so FCFS admits as-is; only the
        // reorder ratio — a function of `now` — must be re-scored per round.
        self.fit.begin_round(ctx.now);
        if self.cfg.reorder && self.queue.len() > 1 {
            sort_by_reorder_ratio(&mut self.queue, ctx.now, ctx);
            if ctx.audit.is_enabled() {
                // Name the request the sort moved to the head, with the
                // rank that put it there.
                let head = self.queue[0];
                let rank = crate::reorder::reorder_ratio(&head, ctx.now, ctx);
                ctx.audit.record(
                    Decision::new(ctx.now, DecisionKind::Reorder, "reorder-ratio-sort")
                        .request(head.id)
                        .rank(rank)
                        .value(self.queue.len() as f64),
                );
            }
        }

        let mut plans = Vec::new();
        let mut deferred = Vec::new();
        let pending = std::mem::take(&mut self.queue);
        let mut idx = 0;
        let mut failures = 0usize;
        while idx < pending.len() {
            if failures >= mlp_sched::baselines::MAX_ADMIT_TRIES_PER_ROUND {
                deferred.extend_from_slice(&pending[idx..]);
                break;
            }
            let req = pending[idx];
            idx += 1;
            let rt = ctx.catalog.request(req.rtype);
            let policy = OrganizerPolicy {
                vr: Volatility::new(rt.volatility),
                sla_weight: OrganizerPolicy::DEFAULT_SLA_WEIGHT,
                dt_policy: self.cfg.dt_policy,
                horizon: SimDuration::from_secs(10),
            };
            match plan_request(&req, &policy, &mut self.rr_cursor, &mut self.fit, ctx) {
                Some(plan) => {
                    if ctx.audit.is_enabled() {
                        // The Δt tier that shaped this plan: the band is a
                        // pure function of V_r, the root budget its output.
                        let root_budget =
                            plan.nodes.first().map_or(0.0, |np| np.budget.as_millis_f64());
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::BudgetTier, "banded-dt")
                                .request(req.id)
                                .vr(policy.vr.value())
                                .budget_ms(root_budget),
                        );
                    }
                    self.admit(req, plan.clone(), ctx);
                    plans.push(plan);
                }
                None => {
                    // "If this request is not totally assigned … switch
                    // r_i with r_{i+1}": defer it and move on.
                    failures += 1;
                    deferred.push(req);
                    if self.cfg.queue_switch {
                        ctx.metrics.inc(names::QUEUE_SWITCHES);
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::Defer, "queue-switch")
                                .request(req.id)
                                .vr(policy.vr.value()),
                        );
                    } else {
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::Defer, "head-of-line-block")
                                .request(req.id)
                                .vr(policy.vr.value()),
                        );
                        // Head-of-line blocking ablation: stop admitting;
                        // everything behind the blocked head stays queued.
                        deferred.extend_from_slice(&pending[idx..]);
                        break;
                    }
                }
            }
        }
        self.queue = deferred;
        plans
    }

    /// The parallel admission pass (DESIGN.md §16). Three phases:
    ///
    /// 1. **Reorder** (sequential): the global reorder-ratio sort, exactly
    ///    as in [`schedule`](Scheduler::schedule).
    /// 2. **Shard-local placement** (on the pool): the sorted queue is
    ///    partitioned by home shard (preserving relative order) and each
    ///    shard worker plans its requests against *its own* machines via
    ///    [`plan_request_in_shard`], buffering plans, deferrals, and audit
    ///    records. Workers share no mutable state, so the per-shard
    ///    outcome is a pure function of the shard's inputs — identical at
    ///    any worker count.
    /// 3. **Barrier merge + overflow** (sequential): buffered effects are
    ///    applied in shard-index order, then requests that found no slot
    ///    in their home shard get one sequential cross-shard overflow pass
    ///    with the full [`plan_request`] scan.
    ///
    /// With one shard the sequential pass *is* the algorithm, so it is
    /// called directly (byte-identical output). With `K > 1` the schedule
    /// may differ from the sequential pass (home-shard failures overflow
    /// at the barrier instead of mid-scan) but is bit-reproducible across
    /// worker counts. The head-of-line-blocking ablation
    /// (`queue_switch = false`) is an inherently global-order semantic and
    /// also stays sequential.
    fn schedule_parallel(
        &mut self,
        ctx: &mut SchedulerCtx<'_>,
        pool: &ShardPool,
    ) -> Vec<RequestPlan> {
        let shards = ctx.cluster.shard_count();
        if shards <= 1 || !self.cfg.queue_switch {
            return self.schedule(ctx);
        }
        if !self.cfg.unindexed_reorder {
            return self.schedule_parallel_indexed(ctx, pool);
        }
        // Admission rounds fire on every arrival while the queue is short,
        // so most rounds see an empty or near-empty queue. Every phase
        // below is a no-op on an empty queue (the reorder needs two
        // entries, and no shard gets a job), so bail before paying for
        // the fan-out scaffolding.
        if self.queue.is_empty() {
            return Vec::new();
        }
        self.fit.begin_round(ctx.now);

        // Phase 1 — reorder, exactly as the sequential pass does it.
        if self.cfg.reorder && self.queue.len() > 1 {
            sort_by_reorder_ratio(&mut self.queue, ctx.now, ctx);
            if ctx.audit.is_enabled() {
                let head = self.queue[0];
                let rank = crate::reorder::reorder_ratio(&head, ctx.now, ctx);
                ctx.audit.record(
                    Decision::new(ctx.now, DecisionKind::Reorder, "reorder-ratio-sort")
                        .request(head.id)
                        .rank(rank)
                        .value(self.queue.len() as f64),
                );
            }
        }

        // Phase 2 — partition by home shard and plan on the pool. Only
        // shards with queued work get a scatter job: fanning out all `K`
        // per round would pay O(shards + machines) in job scaffolding and
        // machine-reference collection that a short queue never uses.
        // The wanted-shard set is a pure function of queue content —
        // never of worker timing — and jobs stay in ascending shard
        // order, so the barrier merge order is unchanged.
        let pending = std::mem::take(&mut self.queue);
        let mut shard_queues: Vec<Vec<RequestInfo>> = Vec::with_capacity(shards);
        shard_queues.resize_with(shards, Vec::new);
        let mut wanted = vec![false; shards];
        for req in pending {
            let s = ctx.cluster.home_shard(req.id.0).0 as usize;
            wanted[s] = true;
            shard_queues[s].push(req);
        }

        let env = ctx.env();
        let dt_policy = self.cfg.dt_policy;
        let audit_on = ctx.audit.is_enabled();
        if self.shard_fits.len() < shards {
            self.shard_fits.resize_with(shards, FitCursor::new);
        }
        let by_shard = ctx.cluster.machines_in_shards_mut(&wanted);
        let jobs: Vec<_> = by_shard
            .into_iter()
            .map(|(s, mut machines)| {
                let reqs = std::mem::take(&mut shard_queues[s]);
                // Worker-local placement cursor: probes against this
                // shard's ledgers, which only this worker writes. Taken
                // from (and returned to) its persistent slot so the probe
                // map keeps its capacity across rounds.
                let mut fit = std::mem::take(&mut self.shard_fits[s]);
                move |_shard: usize| {
                    let mut out = ShardPass { shard: s, ..ShardPass::default() };
                    let mut failures = 0usize;
                    fit.begin_round(env.now);
                    for (i, req) in reqs.iter().enumerate() {
                        if failures >= mlp_sched::baselines::MAX_ADMIT_TRIES_PER_ROUND {
                            // Shard saturated for this round: everything
                            // behind the cap rides to the overflow pass.
                            out.deferred.extend_from_slice(&reqs[i..]);
                            break;
                        }
                        let rt = env.catalog.request(req.rtype);
                        let policy = organizer_policy(dt_policy, rt.volatility);
                        match plan_request_in_shard(req, &policy, &env, &mut fit, &mut machines) {
                            Some(plan) => {
                                if audit_on {
                                    let root_budget = plan
                                        .nodes
                                        .first()
                                        .map_or(0.0, |np| np.budget.as_millis_f64());
                                    out.decisions.push(
                                        Decision::new(
                                            env.now,
                                            DecisionKind::BudgetTier,
                                            "banded-dt",
                                        )
                                        .request(req.id)
                                        .vr(policy.vr.value())
                                        .budget_ms(root_budget),
                                    );
                                }
                                out.admitted.push((*req, plan));
                            }
                            None => {
                                failures += 1;
                                if audit_on {
                                    out.decisions.push(
                                        Decision::new(
                                            env.now,
                                            DecisionKind::Defer,
                                            "no-home-shard-slot",
                                        )
                                        .request(req.id)
                                        .vr(policy.vr.value()),
                                    );
                                }
                                out.deferred.push(*req);
                            }
                        }
                    }
                    out.fit = fit;
                    out
                }
            })
            .collect();
        let outcomes = pool.scatter(jobs);

        // Phase 3a — barrier merge, fixed shard-index order.
        let mut plans = Vec::new();
        let mut overflow: Vec<RequestInfo> = Vec::new();
        for out in outcomes {
            self.shard_fits[out.shard] = out.fit;
            for d in out.decisions {
                ctx.audit.record(d);
            }
            for (req, plan) in out.admitted {
                self.admit(req, plan.clone(), ctx);
                plans.push(plan);
            }
            overflow.extend(out.deferred);
        }

        // Phase 3b — sequential overflow pass: whole-cluster scan for
        // requests their home shard could not host (the cross-shard work
        // stealing the shard-local phase deliberately forgoes).
        let mut deferred = Vec::new();
        let mut failures = 0usize;
        for (i, req) in overflow.iter().enumerate() {
            if failures >= mlp_sched::baselines::MAX_ADMIT_TRIES_PER_ROUND {
                deferred.extend_from_slice(&overflow[i..]);
                break;
            }
            let rt = ctx.catalog.request(req.rtype);
            let policy = organizer_policy(dt_policy, rt.volatility);
            match plan_request(req, &policy, &mut self.rr_cursor, &mut self.fit, ctx) {
                Some(plan) => {
                    if ctx.audit.is_enabled() {
                        let root_budget =
                            plan.nodes.first().map_or(0.0, |np| np.budget.as_millis_f64());
                        ctx.audit.record(
                            Decision::new(ctx.now, DecisionKind::BudgetTier, "banded-dt")
                                .request(req.id)
                                .vr(policy.vr.value())
                                .budget_ms(root_budget),
                        );
                    }
                    self.admit(*req, plan.clone(), ctx);
                    plans.push(plan);
                }
                None => {
                    failures += 1;
                    deferred.push(*req);
                    ctx.metrics.inc(names::QUEUE_SWITCHES);
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Defer, "queue-switch")
                            .request(req.id)
                            .vr(policy.vr.value()),
                    );
                }
            }
        }
        self.queue = deferred;
        plans
    }

    fn on_node_ready(
        &mut self,
        request: RequestId,
        node: usize,
        at: mlp_sim::SimTime,
        _ctx: &mut SchedulerCtx<'_>,
    ) {
        if let Some(ar) = self.active.get_mut(&request) {
            ar.ready_at[node] = Some(at);
        }
    }

    fn on_span_start(&mut self, request: RequestId, node: usize, _ctx: &mut SchedulerCtx<'_>) {
        if let Some(ar) = self.active.get_mut(&request) {
            ar.state[node] = NodeState::Running;
        }
    }

    fn on_span_complete(&mut self, span: &Span, ctx: &mut SchedulerCtx<'_>) -> Vec<HealingAction> {
        let Some(ar) = self.active.get_mut(&span.request) else { return Vec::new() };
        // Interface layer telemetry: usage approximated by the plan's
        // grant scaled by the satisfaction the span actually ran with.
        let grant = ar.plan.nodes[span.dag_node].grant;
        self.interface.observe_span(span, grant * span.satisfaction, ctx.now);
        let ar = self.active.get_mut(&span.request).expect("still present");
        ar.state[span.dag_node] = NodeState::Done;
        let np = ar.plan.nodes[span.dag_node];
        let finished_early = span.end < np.planned_end();
        // Trim the unused tail of the reservation so future placements see
        // the real free capacity.
        if self.cfg.trim_reservations && np.reserved && finished_early {
            let from = span.end.max(np.planned_start);
            if from < np.planned_end() {
                ctx.cluster.machine_mut(np.machine).ledger.unreserve(
                    from,
                    np.planned_end(),
                    np.grant,
                );
                // Record the trimmed window so a later un-reserve (e.g.
                // plan rollback) cannot double-free: mark as unreserved.
                ar.plan.nodes[span.dag_node].reserved = false;
            }
        }
        let rtype = ar.info.rtype;
        let rid = span.request;
        // This node completing may have freed its children of their last
        // dependency — the moment they become delay-slot candidates.
        if self.cfg.delay_slot {
            let dag = &ctx.catalog.request(rtype).dag;
            for c in dag.children_iter(span.dag_node) {
                if ar.state[c] == NodeState::Planned && ar.deps_done(c, ctx.catalog) {
                    self.delay_slots.note(rid, c, ar.plan.nodes[c].planned_start, ctx.now);
                }
            }
        }
        // Early completion leaves a resource vacancy in the pipeline: fill
        // the delay slot by advancing this node's dependence-free children
        // (the most common microservice candidates — Section III-F).
        if !(self.cfg.delay_slot && finished_early) {
            return Vec::new();
        }
        let children = ctx.catalog.request(rtype).dag.children(span.dag_node);
        let candidates: Vec<(RequestId, usize)> = children.into_iter().map(|c| (rid, c)).collect();
        self.promote_candidates(&candidates, ctx)
    }

    fn on_request_complete(&mut self, request: RequestId, _ctx: &mut SchedulerCtx<'_>) {
        self.active.remove(&request);
    }

    fn on_late_invocation(
        &mut self,
        late: LateInfo,
        ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        ctx.metrics.inc(names::LATE_INVOCATIONS);
        let mut actions = Vec::new();

        // --- Delay slot: promote dependence-free planned microservices ---
        if self.cfg.delay_slot {
            let found = self.delay_slots.top_k(
                &self.active,
                (late.request, late.node),
                ctx.now,
                ctx.catalog,
                self.cfg.heal_fanout,
            );
            // Every candidate transition notes itself into the index, so
            // the lazy walk must match the full rescan bit-for-bit. The
            // whole test corpus runs with debug assertions on, turning
            // each late invocation into an equivalence check.
            debug_assert_eq!(
                found,
                top_delay_slot_candidates(
                    &self.active,
                    (late.request, late.node),
                    ctx.now,
                    ctx.catalog,
                    self.cfg.heal_fanout,
                ),
                "delay-slot index diverged from the scan reference"
            );
            let cands: Vec<(RequestId, usize)> =
                found.into_iter().map(|c| (c.request, c.node)).collect();
            actions = self.promote_candidates(&cands, ctx);
        }

        // --- Resource stretch: when the delay slot found nothing ---------
        // Stretch costs resources other services may need; it pays off when
        // deadlines are actually at risk. Gate it on the late request
        // having burned a sizable share of its SLO budget (the EDF spirit
        // of the paper's priority rule).
        let at_risk = self
            .active
            .get(&late.request)
            .map(|ar| {
                let elapsed = ctx.now.since(ar.info.arrival);
                let slo = ar.deadline.since(ar.info.arrival);
                elapsed.as_micros() * 2 >= slo.as_micros()
            })
            .unwrap_or(false);
        if actions.is_empty() && self.cfg.resource_stretch && at_risk {
            let cands = stretch_candidates(&self.active, late.machine, ctx.catalog);
            let free = ctx.cluster.machine(late.machine).actual_free();
            for c in cands.into_iter().take(self.cfg.heal_fanout) {
                let ar = &self.active[&c.request];
                let dag = &ctx.catalog.request(ar.info.rtype).dag;
                let svc = ctx.catalog.services.get(dag.node(c.node).service);
                if !stretch_is_useful(svc.sensitivity) {
                    continue;
                }
                let factor = stretch_factor(free, svc.demand);
                if factor > 1.05 {
                    ctx.metrics.inc(names::RESOURCE_STRETCHES);
                    ctx.audit.record(
                        Decision::new(ctx.now, DecisionKind::Stretch, "idle-headroom-stretch")
                            .request(c.request)
                            .node(c.node)
                            .machine(late.machine)
                            .value(factor),
                    );
                    actions.push(HealingAction::StretchRunning {
                        request: c.request,
                        node: c.node,
                        factor,
                    });
                }
            }
        }

        actions
    }

    fn on_node_failure(
        &mut self,
        failure: NodeFailure,
        ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        let Some(ar) = self.active.get_mut(&failure.request) else { return Vec::new() };
        // The engine already reset the node to ready; mirror that here.
        ar.state[failure.node] = NodeState::Planned;
        // Back in the Planned state, the node is index-eligible again
        // (no-op in practice: a node that already started has a planned
        // start in the past, which `note` filters).
        if self.cfg.delay_slot {
            let start = ar.plan.nodes[failure.node].planned_start;
            self.delay_slots.note(failure.request, failure.node, start, ctx.now);
        }
        let ar = &self.active[&failure.request];

        // Deadline-aware shedding: if even an ideal fault-free re-execution
        // cannot meet the SLO, the request is dead weight — drop it now so
        // its reservations fund salvageable work instead.
        let remaining = SimDuration::from_millis_f64(remaining_ideal_ms(ar, ctx.catalog));
        if ctx.now + remaining > ar.deadline {
            ctx.audit.record(
                Decision::new(ctx.now, DecisionKind::Shed, "deadline-hopeless")
                    .request(failure.request)
                    .node(failure.node)
                    .budget_ms(remaining.as_millis_f64()),
            );
            return vec![HealingAction::Abandon { request: failure.request }];
        }

        // Volatility-aware retry budget: a high-V_r node re-runs with a
        // long, uncertain tail, so its retries are rationed and backed off
        // harder; a low-V_r node re-runs predictably and cheaply.
        let rt = ctx.catalog.request(ar.info.rtype);
        let (budget, base_ms) = match rt.class() {
            VolatilityClass::Low => (4u32, 1.0),
            VolatilityClass::Mid => (3u32, 2.0),
            VolatilityClass::High => (2u32, 4.0),
        };
        if failure.attempt + 1 >= budget {
            ctx.audit.record(
                Decision::new(ctx.now, DecisionKind::Shed, "volatility-retry-budget")
                    .request(failure.request)
                    .node(failure.node)
                    .value((failure.attempt + 1) as f64),
            );
            return vec![HealingAction::Abandon { request: failure.request }];
        }
        let backoff =
            SimDuration::from_millis_f64(base_ms * (1u64 << failure.attempt.min(6)) as f64);
        ctx.audit.record(
            Decision::new(ctx.now, DecisionKind::Retry, "volatility-backoff")
                .request(failure.request)
                .node(failure.node)
                .value(backoff.as_millis_f64()),
        );
        vec![HealingAction::Retry { request: failure.request, node: failure.node, backoff }]
    }

    fn on_machine_failure(
        &mut self,
        machine: MachineId,
        orphans: &[(RequestId, usize)],
        ctx: &mut SchedulerCtx<'_>,
    ) -> Vec<HealingAction> {
        // Orphaned spans are no longer running anywhere; their dependencies
        // were complete when they started, so they are ready again now.
        for &(rid, node) in orphans {
            if let Some(ar) = self.active.get_mut(&rid) {
                ar.state[node] = NodeState::Planned;
                ar.ready_at[node] = Some(ctx.now);
                // Index-eligible again (filtered unless the start is
                // somehow still in the future).
                if self.cfg.delay_slot {
                    self.delay_slots.note(rid, node, ar.plan.nodes[node].planned_start, ctx.now);
                }
            }
        }
        // Every not-done node planned on the dead machine lost its
        // reservation when the engine wiped the ledger. Clear the flags so
        // later trims/rollbacks cannot double-free, then re-admit each node
        // through the ledger placement pass over the surviving machines.
        let mut displaced: Vec<(RequestId, usize)> = Vec::new();
        for (&rid, ar) in self.active.iter_mut() {
            for (node, np) in ar.plan.nodes.iter_mut().enumerate() {
                if np.machine == machine && ar.state[node] != NodeState::Done {
                    np.reserved = false;
                    displaced.push((rid, node));
                }
            }
        }
        displaced.sort(); // HashMap iteration order is nondeterministic

        let mut actions = Vec::new();
        for (rid, node) in displaced {
            let (np, floor, state) = {
                let ar = &self.active[&rid];
                let floor = match ar.ready_at[node] {
                    Some(at) => at.max(ctx.now),
                    None => ctx.now,
                };
                (ar.plan.nodes[node], floor, ar.state[node])
            };
            if state != NodeState::Planned {
                continue;
            }
            // Earliest slot on a live machine (same worst-fit-free search
            // window the admission pass uses), scanned shard-first from the
            // request's home shard with cross-shard overflow — a crash must
            // not turn re-planning back into a whole-cluster scan.
            let horizon = ctx.now + SimDuration::from_secs(10);
            let home = ctx.cluster.home_shard(rid.0);
            let mut best: Option<(MachineId, SimTime)> = None;
            let mut overflowed = false;
            for shard in ctx.cluster.shard_scan_order(home) {
                for m in ctx.cluster.shard_machines(shard) {
                    if !m.is_up() {
                        continue;
                    }
                    // Same availability-index prune as the admission pass: a
                    // machine whose cached minimum level cannot host the grant
                    // has no feasible window at all.
                    if !m.ledger.might_fit(np.grant) {
                        continue;
                    }
                    if let Some(slot) = m.ledger.earliest_fit(floor, horizon, np.budget, np.grant) {
                        let better = match best {
                            None => true,
                            Some((_, t)) => slot < t,
                        };
                        if better {
                            best = Some((m.id, slot));
                        }
                    }
                }
                if best.is_some() {
                    overflowed = shard != home;
                    break;
                }
            }
            if overflowed {
                ctx.metrics.inc(names::SHARD_OVERFLOWS);
            }
            // No live machine fits: leave the node to the engine's naive
            // wait-for-recovery path.
            let Some((new_machine, new_start)) = best else { continue };
            let reserve = np.budget > SimDuration::ZERO;
            if reserve {
                ctx.cluster.machine_mut(new_machine).ledger.reserve(
                    new_start,
                    new_start + np.budget,
                    np.grant,
                );
            }
            let ar = self.active.get_mut(&rid).expect("present above");
            ar.plan.nodes[node].machine = new_machine;
            ar.plan.nodes[node].planned_start = new_start;
            ar.plan.nodes[node].reserved = reserve;
            // Re-key the delay-slot hint under the post-crash start.
            if self.cfg.delay_slot {
                self.delay_slots.note(rid, node, new_start, ctx.now);
            }
            ctx.metrics.inc(names::CRASH_REPLANS);
            ctx.audit.record(
                Decision::new(ctx.now, DecisionKind::CrashReplan, "moved-off-dead-machine")
                    .request(rid)
                    .node(node)
                    .machine(new_machine),
            );
            actions.push(HealingAction::Replan {
                request: rid,
                node,
                machine: new_machine,
                new_start,
            });
        }
        actions
    }

    fn on_node_skipped(&mut self, request: RequestId, node: usize, ctx: &mut SchedulerCtx<'_>) {
        let Some(ar) = self.active.get_mut(&request) else { return };
        if ar.state[node] == NodeState::Done {
            return;
        }
        ar.state[node] = NodeState::Done;
        // A skip is a completion as far as dependencies are concerned:
        // children may have just become delay-slot candidates.
        if self.cfg.delay_slot {
            let dag = &ctx.catalog.request(ar.info.rtype).dag;
            for c in dag.children_iter(node) {
                if ar.state[c] == NodeState::Planned && ar.deps_done(c, ctx.catalog) {
                    self.delay_slots.note(request, c, ar.plan.nodes[c].planned_start, ctx.now);
                }
            }
        }
        // The node will never execute: give back its future reservation and
        // mark it unreserved so completion trimming / abandon rollback
        // cannot double-free the window.
        let np = ar.plan.nodes[node];
        if np.reserved && np.budget > SimDuration::ZERO {
            ctx.cluster.machine_mut(np.machine).ledger.unreserve(
                np.planned_start,
                np.planned_end(),
                np.grant,
            );
            ar.plan.nodes[node].reserved = false;
        }
    }

    fn on_request_abandoned(&mut self, request: RequestId, ctx: &mut SchedulerCtx<'_>) {
        let Some(ar) = self.active.remove(&request) else { return };
        // Give back the future reservations of nodes that will never run.
        for (node, np) in ar.plan.nodes.iter().enumerate() {
            if ar.state[node] != NodeState::Done && np.reserved && np.budget > SimDuration::ZERO {
                ctx.cluster.machine_mut(np.machine).ledger.unreserve(
                    np.planned_start,
                    np.planned_end(),
                    np.grant,
                );
            }
        }
    }

    fn waiting(&self) -> usize {
        // Exactly one of the two structures is in use per config, but
        // summing keeps this honest either way.
        self.queue.len() + self.index.len()
    }
}

/// Rolls back every reservation still held by an active request (used by
/// engines that abort runs early).
pub fn release_active_plan(plan: &RequestPlan, ctx: &mut SchedulerCtx<'_>) {
    unreserve_plan(plan, ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::{Cluster, MachineId};
    use mlp_model::RequestTypeId;
    use mlp_model::{RequestCatalog, ResourceVector};
    use mlp_net::NetworkModel;
    use mlp_sim::SimTime;
    use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore};

    struct H {
        cluster: Cluster,
        catalog: RequestCatalog,
        net: NetworkModel,
        profiles: ProfileStore,
        metrics: MetricsRegistry,
        audit: AuditLog,
    }

    impl H {
        fn new(machines: usize) -> Self {
            H {
                cluster: Cluster::homogeneous(
                    machines,
                    ResourceVector::new(6.0, 32_000.0, 1_000.0),
                ),
                catalog: RequestCatalog::paper(),
                net: NetworkModel::paper_default(),
                profiles: ProfileStore::new(),
                metrics: MetricsRegistry::new(),
                audit: AuditLog::enabled(),
            }
        }
        fn ctx(&mut self, now_ms: u64) -> SchedulerCtx<'_> {
            SchedulerCtx {
                now: SimTime::from_millis(now_ms),
                cluster: &mut self.cluster,
                profiles: &self.profiles,
                catalog: &self.catalog,
                net: &self.net,
                metrics: &self.metrics,
                audit: &self.audit,
            }
        }
        fn req(&self, id: u64, name: &str, arrival_ms: u64) -> RequestInfo {
            RequestInfo {
                id: RequestId(id),
                rtype: self.catalog.request_by_name(name).unwrap().id,
                arrival: SimTime::from_millis(arrival_ms),
            }
        }
    }

    #[test]
    fn admits_and_tracks_requests() {
        let mut h = H::new(8);
        let mut s = VMlpScheduler::new();
        let r = h.req(1, "basicSearch", 0);
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        assert_eq!(s.waiting(), 1);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans.len(), 1);
        assert_eq!(s.waiting(), 0);
        assert_eq!(s.active_requests(), 1);
        let dag = &h.catalog.request_by_name("basicSearch").unwrap().dag;
        assert!(plans[0].respects_dag(dag));
        for np in &plans[0].nodes {
            assert!(np.reserved, "v-MLP reserves its budgets");
        }
    }

    #[test]
    fn lifecycle_to_completion() {
        let mut h = H::new(8);
        let mut s = VMlpScheduler::new();
        let r = h.req(1, "read-user-timeline", 0);
        let rut_dag = h.catalog.request_by_name("read-user-timeline").unwrap().dag.clone();
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        let plan = &plans[0];
        for (i, np) in plan.nodes.iter().enumerate() {
            s.on_span_start(RequestId(1), i, &mut ctx);
            let span = Span {
                request: RequestId(1),
                request_type: RequestTypeId(0),
                service: rut_dag.node(i).service,
                dag_node: i,
                machine: np.machine,
                planned_start: np.planned_start,
                start: np.planned_start,
                end: np.planned_end(),
                satisfaction: 1.0,
            };
            s.on_span_complete(&span, &mut ctx);
        }
        s.on_request_complete(RequestId(1), &mut ctx);
        assert_eq!(s.active_requests(), 0);
    }

    #[test]
    fn early_completion_trims_reservation() {
        let mut h = H::new(1);
        let mut s = VMlpScheduler::new();
        let r = h.req(1, "read-user-timeline", 0);
        let rut_dag = h.catalog.request_by_name("read-user-timeline").unwrap().dag.clone();
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        let np = plans[0].nodes[0];
        assert!(np.budget > SimDuration::from_millis(1));
        // Complete node 0 immediately (far before its planned end).
        s.on_span_start(RequestId(1), 0, &mut ctx);
        let early_end = np.planned_start + SimDuration::from_micros(100);
        let span = Span {
            request: RequestId(1),
            request_type: RequestTypeId(0),
            service: rut_dag.node(0).service,
            dag_node: 0,
            machine: np.machine,
            planned_start: np.planned_start,
            start: np.planned_start,
            end: early_end,
            satisfaction: 1.0,
        };
        s.on_span_complete(&span, &mut ctx);
        // The tail of the window is free again.
        let avail = ctx.cluster.machine(np.machine).ledger.available(early_end, np.planned_end());
        assert!(np.grant.fits_within(&avail), "trimmed tail should be free");
    }

    #[test]
    fn unplaceable_requests_defer_and_count_switches() {
        let mut h = H::new(1);
        // Saturate the machine's future.
        h.cluster.machine_mut(MachineId(0)).ledger.reserve(
            SimTime::ZERO,
            SimTime::from_secs(120),
            ResourceVector::new(6.0, 32_000.0, 1_000.0),
        );
        let mut s = VMlpScheduler::new();
        let r1 = h.req(1, "basicSearch", 0);
        let r2 = h.req(2, "basicSearch", 1);
        let mut ctx = h.ctx(1);
        s.on_arrival(r1, &mut ctx);
        s.on_arrival(r2, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert!(plans.is_empty());
        assert_eq!(s.waiting(), 2, "both deferred");
        assert_eq!(h.metrics.counter(names::QUEUE_SWITCHES), 2);
        assert_eq!(h.audit.count(DecisionKind::Defer), 2, "each deferral audited");
        assert_eq!(h.audit.count(DecisionKind::BudgetTier), 0, "nothing admitted");
    }

    #[test]
    fn late_invocation_promotes_delay_slot_candidate() {
        let mut h = H::new(4);
        let mut s = VMlpScheduler::new();
        // Two requests: one whose root finished (freeing a candidate),
        // one whose node will be late.
        let ra = h.req(1, "read-user-timeline", 0);
        let rb = h.req(2, "basicSearch", 0);
        let rut_dag = h.catalog.request_by_name("read-user-timeline").unwrap().dag.clone();
        let mut ctx = h.ctx(0);
        s.on_arrival(ra, &mut ctx);
        s.on_arrival(rb, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans.len(), 2);

        // Mark request 1's root as done early: its child (node 1) is a
        // dependence-free delay-slot candidate, which the early-completion
        // path promotes into the vacated reservation.
        let plan1 = plans.iter().find(|p| p.request == RequestId(1)).unwrap().clone();
        s.on_span_start(RequestId(1), 0, &mut ctx);
        let span = Span {
            request: RequestId(1),
            request_type: RequestTypeId(0),
            service: rut_dag.node(0).service,
            dag_node: 0,
            machine: plan1.nodes[0].machine,
            planned_start: plan1.nodes[0].planned_start,
            start: plan1.nodes[0].planned_start,
            end: plan1.nodes[0].planned_start + SimDuration::from_micros(10),
            satisfaction: 1.0,
        };
        let actions = s.on_span_complete(&span, &mut ctx);
        let promoted = actions.iter().any(|a| {
            matches!(a, HealingAction::PromoteNode { request, node, .. }
                if *request == RequestId(1) && *node == 1)
        });
        assert!(promoted, "expected a delay-slot promotion, got {actions:?}");
        assert!(ctx.metrics.counter(names::DELAY_SLOT_FILLS) >= 1);
        assert!(ctx.audit.count(DecisionKind::DelaySlotFill) >= 1, "promotion audited");

        // A later deviation of request 2 finds node 1 already promoted
        // (its planned start is at its readiness floor), so the delay
        // slot does not move it again.
        let plan2 = plans.iter().find(|p| p.request == RequestId(2)).unwrap().clone();
        let late = LateInfo {
            request: RequestId(2),
            node: 0,
            machine: plan2.nodes[0].machine,
            planned_start: plan2.nodes[0].planned_start,
        };
        let again = s.on_late_invocation(late, &mut ctx);
        assert!(
            !again.iter().any(|a| matches!(a, HealingAction::PromoteNode { request, node, .. }
                if *request == RequestId(1) && *node == 1)),
            "node should not be promoted twice: {again:?}"
        );
    }

    #[test]
    fn stretch_fires_when_no_delay_slot_candidates() {
        let mut h = H::new(1);
        let mut s = VMlpScheduler::new();
        let r = h.req(1, "basicSearch", 0);
        let slo_ms = h.catalog.request_by_name("basicSearch").unwrap().slo_ms;
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        let plan = plans[0].clone();
        // Put node 0 in Running state on machine 0 and occupy few
        // resources so the machine has idle headroom.
        s.on_span_start(RequestId(1), 0, &mut ctx);
        let _ = ctx;
        // Stretch only engages once the late request is at deadline risk
        // (more than half its SLO budget burned).
        let mut ctx = h.ctx((slo_ms * 0.75) as u64);
        let _ = ctx
            .cluster
            .machine_mut(plan.nodes[0].machine)
            .occupy(ResourceVector::new(0.5, 128.0, 25.0));
        let late = LateInfo {
            request: RequestId(1),
            node: 1,
            machine: plan.nodes[0].machine,
            planned_start: plan.nodes[1].planned_start,
        };
        let actions = s.on_late_invocation(late, &mut ctx);
        assert!(
            actions.iter().any(
                |a| matches!(a, HealingAction::StretchRunning { factor, .. } if *factor > 1.0)
            ),
            "expected a stretch, got {actions:?}"
        );
        assert!(h.metrics.counter(names::RESOURCE_STRETCHES) >= 1);
    }

    #[test]
    fn ablated_config_disables_healing() {
        let mut h = H::new(2);
        let mut s = VMlpScheduler::with_config(VMlpConfig::without_healing());
        let r = h.req(1, "basicSearch", 0);
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        s.on_span_start(RequestId(1), 0, &mut ctx);
        let late = LateInfo {
            request: RequestId(1),
            node: 1,
            machine: plans[0].nodes[1].machine,
            planned_start: plans[0].nodes[1].planned_start,
        };
        let actions = s.on_late_invocation(late, &mut ctx);
        assert!(actions.is_empty());
        // Late invocations are still counted for diagnostics.
        assert_eq!(h.metrics.counter(names::LATE_INVOCATIONS), 1);
    }

    #[test]
    fn fcfs_ablation_preserves_arrival_order() {
        let mut h = H::new(8);
        let mut cfg = VMlpConfig::paper();
        cfg.reorder = false;
        let mut s = VMlpScheduler::with_config(cfg);
        let r2 = h.req(2, "basicSearch", 50);
        let r1 = h.req(1, "compose-post", 10);
        let mut ctx = h.ctx(100);
        // Arrive out of id order.
        s.on_arrival(r2, &mut ctx);
        s.on_arrival(r1, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans[0].request, RequestId(1), "earlier arrival admits first");
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(VMlpScheduler::new().name(), "v-MLP");
    }

    fn admit_one(h: &mut H, s: &mut VMlpScheduler, id: u64, name: &str) -> RequestPlan {
        let r = h.req(id, name, 0);
        let mut ctx = h.ctx(0);
        s.on_arrival(r, &mut ctx);
        let plans = s.schedule(&mut ctx);
        assert_eq!(plans.len(), 1, "request must admit");
        plans.into_iter().next().unwrap()
    }

    #[test]
    fn first_node_failure_retries_with_backoff() {
        let mut h = H::new(8);
        let mut s = VMlpScheduler::new();
        let _ = admit_one(&mut h, &mut s, 1, "basicSearch");
        let mut ctx = h.ctx(10);
        let failure = NodeFailure {
            request: RequestId(1),
            node: 0,
            machine: MachineId(0),
            attempt: 0,
            at: SimTime::from_millis(10),
        };
        let actions = s.on_node_failure(failure, &mut ctx);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            HealingAction::Retry { request, node, backoff } => {
                assert_eq!(request, RequestId(1));
                assert_eq!(node, 0);
                assert!(backoff > SimDuration::ZERO, "retry must back off");
            }
            ref other => panic!("expected Retry, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retry_budget_abandons() {
        let mut h = H::new(8);
        let mut s = VMlpScheduler::new();
        let _ = admit_one(&mut h, &mut s, 1, "basicSearch");
        let mut ctx = h.ctx(10);
        let failure = NodeFailure {
            request: RequestId(1),
            node: 0,
            machine: MachineId(0),
            attempt: 9, // well past any volatility class's budget
            at: SimTime::from_millis(10),
        };
        let actions = s.on_node_failure(failure, &mut ctx);
        assert_eq!(actions, vec![HealingAction::Abandon { request: RequestId(1) }]);
    }

    #[test]
    fn hopeless_deadline_sheds_immediately() {
        let mut h = H::new(8);
        let mut s = VMlpScheduler::new();
        let _ = admit_one(&mut h, &mut s, 1, "compose-post");
        // An hour after arrival every SLO is blown even under ideal re-run.
        let mut ctx = h.ctx(3_600_000);
        let failure = NodeFailure {
            request: RequestId(1),
            node: 0,
            machine: MachineId(0),
            attempt: 0,
            at: SimTime::from_millis(3_600_000),
        };
        let actions = s.on_node_failure(failure, &mut ctx);
        assert_eq!(actions, vec![HealingAction::Abandon { request: RequestId(1) }]);
    }

    #[test]
    fn machine_failure_replans_onto_survivors() {
        let mut h = H::new(4);
        let mut s = VMlpScheduler::new();
        let plan = admit_one(&mut h, &mut s, 1, "read-user-timeline");
        let dead = plan.nodes[0].machine;
        h.cluster.machine_mut(dead).crash();
        let mut ctx = h.ctx(50);
        let actions = s.on_machine_failure(dead, &[], &mut ctx);
        assert!(!actions.is_empty(), "displaced nodes must be replanned");
        for a in &actions {
            match *a {
                HealingAction::Replan { machine, .. } => {
                    assert_ne!(machine, dead, "replan must avoid the dead machine");
                    assert!(ctx.cluster.machine(machine).is_up());
                }
                ref other => panic!("expected Replan, got {other:?}"),
            }
        }
        assert!(h.metrics.counter(names::CRASH_REPLANS) > 0);
        assert!(h.audit.count(DecisionKind::CrashReplan) > 0, "replans audited");
        // The scheduler's own book must agree with the actions it emitted.
        for np in &s.active[&RequestId(1)].plan.nodes {
            assert_ne!(np.machine, dead);
        }
    }

    #[test]
    fn abandoned_request_leaves_no_active_state() {
        let mut h = H::new(8);
        let mut s = VMlpScheduler::new();
        let _ = admit_one(&mut h, &mut s, 1, "basicSearch");
        assert_eq!(s.active_requests(), 1);
        let mut ctx = h.ctx(20);
        s.on_request_abandoned(RequestId(1), &mut ctx);
        assert_eq!(s.active_requests(), 0);
        // Abandoning twice is harmless.
        let mut ctx = h.ctx(21);
        s.on_request_abandoned(RequestId(1), &mut ctx);
        assert_eq!(s.active_requests(), 0);
    }
}
