//! The reorder ratio `R` for the waiting queue (Section III-E).
//!
//! The paper defines `R = α · V_r · SLA · t_arr / Δt₀` as "a comprehensive
//! consideration of SLA requirement and two classic scheduling policies,
//! FCFS and SJF", with requests of higher `R` popped earlier. We realize
//! each stated intent explicitly:
//!
//! * **FCFS** — the `t_arr` term is interpreted as *time waited so far*
//!   (`now − t_arr`): requests that have waited longer rank higher. (Taking
//!   raw arrival time literally would invert FCFS, prioritizing the newest
//!   request.)
//! * **SJF** — dividing by `Δt₀`, the smallest historical execution time of
//!   the request's first microservice, ranks short jobs higher.
//! * **SLA** — urgency is the inverse of the remaining slack before the
//!   request's deadline (`arrival + SLO`), so requests close to violating
//!   rank higher.
//! * **V_r** — multiplies everything: volatile requests are examined
//!   earlier, when machine futures are still flexible.
//! * **α** — a normalization into `(0, 1)` via `r / (1 + r)`.

use crate::volatility::Volatility;
use mlp_model::RequestTypeId;
use mlp_sched::{RequestInfo, SchedulerCtx};
use mlp_sim::{SimDuration, SimTime};

/// The per-request-*type* inputs to the reorder ratio. They depend only on
/// the catalog entry and the (immutable-within-a-round) profile store, so a
/// sort round computes them once per type instead of once per request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RatioTerms {
    /// `V_r` (floored).
    vr: f64,
    /// The type's SLO in milliseconds (the urgency numerator).
    slo_ms: f64,
    /// The same SLO as a duration (the deadline offset).
    slo: SimDuration,
    /// Δt₀: smallest historical execution time of the first microservice
    /// (fallback: its nominal base time), floored.
    dt0: f64,
}

impl RatioTerms {
    pub(crate) fn for_type(rtype: RequestTypeId, ctx: &SchedulerCtx<'_>) -> Self {
        let rt = ctx.catalog.request(rtype);
        let vr = Volatility::new(rt.volatility).value().max(1e-3);
        let dt0 = rt
            .dag
            .roots()
            .first()
            .map(|&r| {
                let svc = rt.dag.node(r).service;
                ctx.profiles
                    .min_exec_ms(svc)
                    .unwrap_or_else(|| ctx.catalog.services.get(svc).base_ms)
            })
            .unwrap_or(1.0)
            .max(0.1);
        // Catalogs are workspace-authored today, but a hand-edited TOML with
        // a NaN/zero/negative SLO must not poison every ratio of that type
        // (NaN propagates through the product) — fall back to a benign 1 ms.
        let slo_ms = if rt.slo_ms.is_finite() && rt.slo_ms > 0.0 { rt.slo_ms } else { 1.0 };
        RatioTerms { vr, slo_ms, slo: SimDuration::from_millis_f64(slo_ms), dt0 }
    }

    /// The ratio for one request given its type's terms. The arithmetic —
    /// operand values and evaluation order — is exactly the uncached
    /// computation's, so cached and uncached ranks agree bit-for-bit.
    pub(crate) fn ratio(&self, req: &RequestInfo, now: SimTime) -> f64 {
        // FCFS term: milliseconds waited (≥ a small epsilon so new arrivals
        // still get nonzero priority).
        let waited_ms = now.since(req.arrival).as_millis_f64().max(0.1);

        // SLA term: inverse remaining slack before the deadline, in (0, ∞);
        // overdue requests saturate high.
        let deadline = req.arrival + self.slo;
        let slack_ms = if deadline > now { deadline.since(now).as_millis_f64() } else { 0.1 };
        let urgency = self.slo_ms / slack_ms.max(0.1);

        let raw = self.vr * urgency * waited_ms / self.dt0;
        // All factors are finite and positive after `for_type`'s floors, so
        // `raw` is finite in practice; if an overflow ever produced +∞ the
        // normalization below would turn it into NaN (∞/∞). Saturate to the
        // supremum instead — "infinitely overdue" means top priority.
        if !raw.is_finite() {
            return 1.0;
        }
        // α-normalization into (0, 1).
        raw / (1.0 + raw)
    }
}

/// Computes the reorder ratio `R ∈ (0, 1)` for a waiting request.
pub fn reorder_ratio(req: &RequestInfo, now: SimTime, ctx: &SchedulerCtx<'_>) -> f64 {
    RatioTerms::for_type(req.rtype, ctx).ratio(req, now)
}

/// The total order the reorder queue is popped in: descending ratio,
/// ties broken by (arrival, id) ascending. `total_cmp` (not
/// `partial_cmp().unwrap()`) so a pathological non-finite ratio — which
/// [`RatioTerms`] already guards against — can never panic the scheduler
/// mid-run. Under `total_cmp`'s total order a positive NaN ranks above
/// every real number, so a NaN rank would deterministically sort *first*
/// — the same "treat the unrankable as top priority" semantics as the
/// saturation guard in [`RatioTerms::ratio`].
pub(crate) fn ratio_order(
    ra: f64,
    a: &RequestInfo,
    rb: f64,
    b: &RequestInfo,
) -> std::cmp::Ordering {
    rb.total_cmp(&ra).then_with(|| a.arrival.cmp(&b.arrival)).then_with(|| a.id.cmp(&b.id))
}

/// Sorts a waiting queue by descending `R` (highest priority first), with
/// arrival order as a deterministic tie-break.
///
/// The catalog/profile-derived terms are looked up once per request *type*
/// (the catalog has a handful of types; queues have hundreds of requests),
/// so per-request work is a few flops plus the comparison.
pub fn sort_by_reorder_ratio(queue: &mut [RequestInfo], now: SimTime, ctx: &SchedulerCtx<'_>) {
    let mut terms: Vec<(RequestTypeId, RatioTerms)> = Vec::new();
    let mut keyed: Vec<(f64, RequestInfo)> = queue
        .iter()
        .map(|r| {
            let t = match terms.iter().find(|(id, _)| *id == r.rtype) {
                Some(&(_, t)) => t,
                None => {
                    let t = RatioTerms::for_type(r.rtype, ctx);
                    terms.push((r.rtype, t));
                    t
                }
            };
            (t.ratio(r, now), *r)
        })
        .collect();
    keyed.sort_by(|a, b| ratio_order(a.0, &a.1, b.0, &b.1));
    for (slot, (_, r)) in queue.iter_mut().zip(keyed) {
        *slot = r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_cluster::Cluster;
    use mlp_model::{RequestCatalog, ResourceVector};
    use mlp_net::NetworkModel;
    use mlp_trace::{AuditLog, MetricsRegistry, ProfileStore, RequestId};

    struct H {
        cluster: Cluster,
        catalog: RequestCatalog,
        net: NetworkModel,
        profiles: ProfileStore,
        metrics: MetricsRegistry,
        audit: AuditLog,
    }

    impl H {
        fn new() -> Self {
            H {
                cluster: Cluster::homogeneous(2, ResourceVector::new(6.0, 32_000.0, 1_000.0)),
                catalog: RequestCatalog::paper(),
                net: NetworkModel::paper_default(),
                profiles: ProfileStore::new(),
                metrics: MetricsRegistry::new(),
                audit: AuditLog::disabled(),
            }
        }
        fn ctx(&mut self) -> SchedulerCtx<'_> {
            SchedulerCtx {
                now: SimTime::from_millis(1000),
                cluster: &mut self.cluster,
                profiles: &self.profiles,
                catalog: &self.catalog,
                net: &self.net,
                metrics: &self.metrics,
                audit: &self.audit,
            }
        }
        fn req(&self, id: u64, name: &str, arrival_ms: u64) -> RequestInfo {
            RequestInfo {
                id: RequestId(id),
                rtype: self.catalog.request_by_name(name).unwrap().id,
                arrival: SimTime::from_millis(arrival_ms),
            }
        }
    }

    #[test]
    fn ratio_is_normalized() {
        let mut h = H::new();
        let r = h.req(1, "compose-post", 0);
        let ctx = h.ctx();
        let ratio = reorder_ratio(&r, SimTime::from_millis(1000), &ctx);
        assert!(ratio > 0.0 && ratio < 1.0);
    }

    #[test]
    fn longer_wait_raises_priority() {
        let mut h = H::new();
        let early = h.req(1, "basicSearch", 0);
        let late = h.req(2, "basicSearch", 900);
        let ctx = h.ctx();
        let now = SimTime::from_millis(1000);
        assert!(
            reorder_ratio(&early, now, &ctx) > reorder_ratio(&late, now, &ctx),
            "FCFS: the longer-waiting request must rank higher"
        );
    }

    #[test]
    fn higher_volatility_raises_priority() {
        let mut h = H::new();
        // Same arrival and wait; compose-post is High V_r,
        // read-home-timeline Low. Evaluated while both are still within
        // their SLOs so the urgency terms stay comparable (once a request
        // is overdue, SLA urgency rightly dominates volatility).
        let hi = h.req(1, "compose-post", 550);
        let lo = h.req(2, "read-home-timeline", 550);
        let ctx = h.ctx();
        let now = SimTime::from_millis(600);
        let r_hi = reorder_ratio(&hi, now, &ctx);
        let r_lo = reorder_ratio(&lo, now, &ctx);
        assert!(r_hi > r_lo, "high-V_r {r_hi} should outrank low-V_r {r_lo}");
    }

    #[test]
    fn approaching_deadline_raises_priority() {
        let mut h = H::new();
        let r = h.req(1, "basicSearch", 0);
        let slo = h.catalog.request_by_name("basicSearch").unwrap().slo_ms;
        let ctx = h.ctx();
        // Same waited time, but evaluated closer to the deadline.
        let near_deadline = SimTime::from_millis((slo as u64).saturating_sub(10));
        let fresh = SimTime::from_millis(50);
        // waited also grows with time, so both terms push the same way —
        // this asserts the combined effect is monotone.
        assert!(reorder_ratio(&r, near_deadline, &ctx) > reorder_ratio(&r, fresh, &ctx));
    }

    #[test]
    fn sort_is_descending_and_deterministic() {
        let mut h = H::new();
        let mut queue = vec![
            h.req(1, "read-home-timeline", 900),
            h.req(2, "compose-post", 100),
            h.req(3, "basicSearch", 500),
        ];
        let mut queue2 = queue.clone();
        let now = SimTime::from_millis(1000);
        {
            let ctx = h.ctx();
            sort_by_reorder_ratio(&mut queue, now, &ctx);
            sort_by_reorder_ratio(&mut queue2, now, &ctx);
        }
        assert_eq!(queue, queue2, "deterministic");
        let ctx = h.ctx();
        let ratios: Vec<f64> = queue.iter().map(|r| reorder_ratio(r, now, &ctx)).collect();
        for w in ratios.windows(2) {
            assert!(w[0] >= w[1], "not descending: {ratios:?}");
        }
    }

    /// Regression: the sort comparator once used `partial_cmp().unwrap()`,
    /// which panicked mid-run the first time a rank came out NaN. The
    /// `total_cmp` order must stay panic-free and deterministic for any
    /// rank bit pattern.
    #[test]
    fn non_finite_ranks_order_without_panic() {
        use std::cmp::Ordering;
        let h = H::new();
        let a = h.req(1, "basicSearch", 0);
        let b = h.req(2, "basicSearch", 10);
        // A positive-NaN rank outranks any real rank (top priority), on
        // either side of the comparison — no panic, no order dependence.
        assert_eq!(ratio_order(f64::NAN, &a, 0.5, &b), Ordering::Less);
        assert_eq!(ratio_order(0.5, &a, f64::NAN, &b), Ordering::Greater);
        // Two unrankables fall back to the (arrival, id) FCFS tie-break.
        assert_eq!(ratio_order(f64::NAN, &a, f64::NAN, &b), Ordering::Less);
        assert_eq!(ratio_order(f64::INFINITY, &b, f64::INFINITY, &a), Ordering::Greater);
    }

    /// Regression: poisoned per-type terms (a hand-edited catalog with a
    /// NaN SLO, an overflow in the volatility product) must yield a finite
    /// ratio, not propagate NaN into the queue order.
    #[test]
    fn poisoned_terms_still_produce_finite_ratio() {
        let h = H::new();
        let r = h.req(1, "compose-post", 0);
        let now = SimTime::from_millis(500);
        for terms in [
            RatioTerms {
                vr: f64::INFINITY,
                slo_ms: 100.0,
                slo: SimDuration::from_millis_f64(100.0),
                dt0: 0.1,
            },
            RatioTerms {
                vr: 1.0,
                slo_ms: f64::NAN,
                slo: SimDuration::from_millis_f64(100.0),
                dt0: 0.1,
            },
        ] {
            let ratio = terms.ratio(&r, now);
            assert!(ratio.is_finite(), "poisoned terms leaked a non-finite ratio: {ratio}");
            assert!((0.0..=1.0).contains(&ratio));
        }
    }

    #[test]
    fn sjf_prefers_short_first_service() {
        let mut h = H::new();
        // Record a tiny history for read-home-timeline's root (nginx) vs
        // a huge one for basicSearch's root (ui): shorter Δt₀ ⇒ higher R,
        // all else roughly equal.
        let rh = h.catalog.request_by_name("read-home-timeline").unwrap();
        let bs = h.catalog.request_by_name("basicSearch").unwrap();
        let rh_root = rh.dag.node(rh.dag.roots()[0]).service;
        let bs_root = bs.dag.node(bs.dag.roots()[0]).service;
        for (svc, ms) in [(rh_root, 1.0), (bs_root, 500.0)] {
            h.profiles.record(
                svc,
                mlp_trace::ExecutionCase {
                    usage: ResourceVector::ZERO,
                    machine_load: 0.0,
                    exec_ms: ms,
                },
            );
        }
        let a = h.req(1, "read-home-timeline", 0);
        let b = h.req(2, "basicSearch", 0);
        let ctx = h.ctx();
        let now = SimTime::from_millis(100);
        // read-home-timeline has lower V_r but a 500× shorter Δt₀ and a
        // tighter SLO: SJF + SLA dominate here.
        assert!(reorder_ratio(&a, now, &ctx) > reorder_ratio(&b, now, &ctx));
    }
}
