//! Typed validation errors for workload parameters.
//!
//! The generators used to `assert!` on bad parameters (non-positive peak
//! rate, empty request mix), which turns a config typo into a panic deep
//! inside a figure run. The checks now live in fallible `try_*`
//! constructors returning this enum; the engine's `Experiment::validate()`
//! maps it onto `mlp_engine::Error::InvalidConfig` so embedders see a
//! typed error before any simulation starts.

use std::fmt;

/// Why a set of workload parameters cannot describe a request stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The peak arrival rate must be positive and finite.
    NonPositiveRate(f64),
    /// The request mix must contain at least one `(type, weight)` pair.
    EmptyMix,
    /// Mix weights must be non-negative and sum to a positive value.
    BadMixWeights(f64),
    /// A rate schedule is structurally invalid (reversed segment, bad
    /// multiplier, negative ramp, …).
    InvalidSchedule(String),
    /// An MMPP phase list is empty or carries a bad rate/dwell pair.
    InvalidPhases(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::NonPositiveRate(r) => {
                write!(f, "max_rate must be positive and finite, got {r}")
            }
            WorkloadError::EmptyMix => write!(f, "request mix must be non-empty"),
            WorkloadError::BadMixWeights(total) => write!(
                f,
                "request mix weights must be non-negative and sum to a positive value, got {total}"
            ),
            WorkloadError::InvalidSchedule(why) => write!(f, "invalid rate schedule: {why}"),
            WorkloadError::InvalidPhases(why) => write!(f, "invalid MMPP phases: {why}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        assert!(WorkloadError::NonPositiveRate(-1.0).to_string().contains("max_rate"));
        assert!(WorkloadError::EmptyMix.to_string().contains("non-empty"));
        assert!(WorkloadError::BadMixWeights(0.0).to_string().contains("positive"));
        assert!(WorkloadError::InvalidSchedule("x".into()).to_string().contains("schedule"));
    }
}
