//! # mlp-workload — workload patterns and request-stream generation
//!
//! Implements the paper's three realistic workload patterns (Fig 9, drawn
//! from a production datacenter): **L1** pulse-like peak, **L2** fluctuating
//! load, **L3** periodic wide peaks — plus the non-homogeneous Poisson
//! arrival generator that turns a rate curve and a request mix into a
//! concrete request stream, and a synthetic stand-in for the Alibaba
//! cluster-trace container-utilization data of Fig 3b.
//!
//! Two ways to consume a workload:
//!
//! * **dense** — [`generate_stream`] materializes the whole trace up front
//!   (figure runs, byte-identical replays);
//! * **streaming** — an [`ArrivalSource`] is pulled one arrival at a time
//!   ([`OpenLoopSource`] generates lazily with no horizon-length buffers;
//!   [`SliceSource`] adapts a dense trace to the pull interface).

pub mod alibaba;
pub mod arrivals;
pub mod error;
pub mod patterns;
pub mod schedule;
pub mod source;

pub use alibaba::AlibabaTraceConfig;
pub use arrivals::{
    empirical_rate, generate_stream, try_generate_stream, validate_stream_params, Arrival,
};
pub use error::WorkloadError;
pub use patterns::WorkloadPattern;
pub use schedule::{RateSchedule, RateSegment, Sinusoid};
pub use source::{collect_source, ArrivalSource, OpenLoopSource, SliceSource, ThinnedSource};
