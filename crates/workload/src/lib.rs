//! # mlp-workload — workload patterns and request-stream generation
//!
//! Implements the paper's three realistic workload patterns (Fig 9, drawn
//! from a production datacenter): **L1** pulse-like peak, **L2** fluctuating
//! load, **L3** periodic wide peaks — plus the non-homogeneous Poisson
//! arrival generator that turns a rate curve and a request mix into a
//! concrete request stream, and a synthetic stand-in for the Alibaba
//! cluster-trace container-utilization data of Fig 3b.

pub mod alibaba;
pub mod arrivals;
pub mod patterns;

pub use alibaba::AlibabaTraceConfig;
pub use arrivals::{empirical_rate, generate_stream, Arrival};
pub use patterns::WorkloadPattern;
