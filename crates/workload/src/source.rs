//! Pull-based arrival sources: the streaming half of the workload layer.
//!
//! [`generate_stream`](crate::generate_stream) materializes a finite trace
//! up front — fine for figure runs, impossible for the open-loop traffic a
//! production-scale cluster faces (millions of requests would mean
//! gigabytes of pre-generated arrivals). An [`ArrivalSource`] inverts the
//! flow: the engine *pulls* the next arrival when it is ready to schedule
//! it, so memory stays O(1) in the stream length and the stream can be
//! unbounded (capped by a horizon and/or a request count instead).
//!
//! Every source is deterministic in its seed: pulling the same source twice
//! yields bit-identical streams, and [`SliceSource`] replays a
//! pre-generated trace exactly, so the fixed-seed figure pipeline keeps its
//! byte-identical outputs.

use crate::arrivals::{next_candidate, sample_mix, thin_accept, validate_stream_params, Arrival};
use crate::error::WorkloadError;
use crate::patterns::WorkloadPattern;
use crate::schedule::RateSchedule;
use mlp_model::RequestTypeId;
use mlp_sim::{SimRng, SimTime};
use rand::Rng;

/// A pull-based, deterministic stream of request arrivals.
///
/// Arrivals come back in non-decreasing time order. `None` means the
/// stream is exhausted (horizon reached, count cap hit, or slice drained)
/// and will keep returning `None`.
pub trait ArrivalSource {
    /// The next arrival, or `None` when the stream is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;

    /// Total number of arrivals this source will produce, when known up
    /// front (lets consumers pre-size buffers). `None` for open-loop
    /// sources whose count is only known once the stream ends.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Replays a pre-generated trace slice, bit-identically.
///
/// This is the bridge between the dense figure pipeline and the streaming
/// engine: `generate_stream` → `SliceSource` feeds the exact same arrivals
/// in the exact same order as the old slice-based engine path.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    arrivals: &'a [Arrival],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps a trace slice (assumed sorted by arrival time, as
    /// `generate_stream` produces).
    pub fn new(arrivals: &'a [Arrival]) -> Self {
        SliceSource { arrivals, pos: 0 }
    }

    /// How many arrivals remain unpulled.
    pub fn remaining(&self) -> usize {
        self.arrivals.len() - self.pos
    }
}

impl ArrivalSource for SliceSource<'_> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = self.arrivals.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.arrivals.len())
    }
}

/// How an [`OpenLoopSource`] modulates its instantaneous arrival rate.
#[derive(Debug, Clone)]
enum RateModel {
    /// Deterministic rate curve (the paper's L1/L2/L3/constant patterns):
    /// a non-homogeneous Poisson process by Lewis–Shedler thinning.
    Pattern(WorkloadPattern),
    /// A pattern modulated by a piecewise [`RateSchedule`] (flash crowds,
    /// diurnal crests): still deterministic in `t`, thinned against the
    /// schedule's peak rate.
    Schedule(RateSchedule),
    /// Markov-modulated Poisson process: the rate jumps between phases,
    /// each holding for an exponentially distributed dwell time. The
    /// closest synthetic stand-in for bursty production traffic whose
    /// "pattern" is itself random.
    Mmpp {
        /// `(rate req/s, mean dwell s)` per phase, cycled in order.
        phases: Vec<(f64, f64)>,
        /// Index of the phase in force at `next_switch_s`−dwell.
        phase: usize,
        /// When the current phase ends, in seconds.
        next_switch_s: f64,
    },
}

/// Lazily generates a Poisson (or MMPP) arrival stream: unbounded memory
/// footprint of **zero** arrivals — each one is drawn when pulled.
///
/// Stops at the time horizon, and additionally at a request-count cap when
/// one is set (open-loop soak runs size themselves by count, not time).
/// Deterministic in the `SimRng` it owns: with the [`WorkloadPattern`] rate
/// model it draws the *identical* RNG sequence as
/// [`generate_stream`](crate::generate_stream), so collecting this source
/// reproduces the pre-materialized trace bit-for-bit.
#[derive(Debug)]
pub struct OpenLoopSource {
    model: RateModel,
    /// Majorant rate for thinning (peak pattern rate / max phase rate).
    max_rate: f64,
    horizon_s: f64,
    mix: Vec<(RequestTypeId, f64)>,
    total_w: f64,
    max_requests: Option<u64>,
    emitted: u64,
    /// Candidate-process clock, seconds.
    t: f64,
    rng: SimRng,
    done: bool,
}

impl OpenLoopSource {
    /// A non-homogeneous Poisson source following `pattern`, exactly the
    /// process behind [`generate_stream`](crate::generate_stream).
    /// Panics on invalid parameters; see [`Self::try_poisson`].
    pub fn poisson(
        pattern: WorkloadPattern,
        max_rate: f64,
        horizon_s: f64,
        mix: Vec<(RequestTypeId, f64)>,
        rng: SimRng,
    ) -> Self {
        Self::try_poisson(pattern, max_rate, horizon_s, mix, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`Self::poisson`]: returns the typed
    /// [`WorkloadError`] instead of panicking.
    pub fn try_poisson(
        pattern: WorkloadPattern,
        max_rate: f64,
        horizon_s: f64,
        mix: Vec<(RequestTypeId, f64)>,
        rng: SimRng,
    ) -> Result<Self, WorkloadError> {
        let total_w = validate_stream_params(max_rate, &mix)?;
        Ok(OpenLoopSource {
            model: RateModel::Pattern(pattern),
            max_rate,
            horizon_s,
            mix,
            total_w,
            max_requests: None,
            emitted: 0,
            t: 0.0,
            rng,
            done: false,
        })
    }

    /// A source driven by a piecewise [`RateSchedule`]: the base pattern's
    /// load times the schedule's segment multipliers, thinned against the
    /// schedule's [`peak_rate`](RateSchedule::peak_rate). With no segments
    /// this draws the *identical* RNG sequence as [`Self::poisson`] at the
    /// base rate, so surge-off runs stay byte-identical.
    pub fn scheduled(
        schedule: RateSchedule,
        horizon_s: f64,
        mix: Vec<(RequestTypeId, f64)>,
        rng: SimRng,
    ) -> Result<Self, WorkloadError> {
        let max_rate = schedule.peak_rate();
        let total_w = validate_stream_params(max_rate, &mix)?;
        Ok(OpenLoopSource {
            model: RateModel::Schedule(schedule),
            max_rate,
            horizon_s,
            mix,
            total_w,
            max_requests: None,
            emitted: 0,
            t: 0.0,
            rng,
            done: false,
        })
    }

    /// A Markov-modulated Poisson source cycling through `phases` of
    /// `(rate req/s, mean dwell s)`. Dwell times are exponential; the
    /// thinning majorant is the largest phase rate.
    /// Panics on invalid parameters; see [`Self::try_mmpp`].
    pub fn mmpp(
        phases: Vec<(f64, f64)>,
        horizon_s: f64,
        mix: Vec<(RequestTypeId, f64)>,
        rng: SimRng,
    ) -> Self {
        Self::try_mmpp(phases, horizon_s, mix, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`Self::mmpp`].
    pub fn try_mmpp(
        phases: Vec<(f64, f64)>,
        horizon_s: f64,
        mix: Vec<(RequestTypeId, f64)>,
        mut rng: SimRng,
    ) -> Result<Self, WorkloadError> {
        if phases.is_empty() {
            return Err(WorkloadError::InvalidPhases("MMPP needs at least one phase".into()));
        }
        if let Some(&(r, d)) = phases.iter().find(|&&(r, d)| !(r >= 0.0 && d > 0.0)) {
            return Err(WorkloadError::InvalidPhases(format!(
                "MMPP phases need non-negative rates and positive dwell times, got ({r}, {d})"
            )));
        }
        let max_rate = phases.iter().map(|&(r, _)| r).fold(0.0f64, f64::max);
        let total_w = validate_stream_params(max_rate, &mix)?;
        let first_dwell = exp_draw(phases[0].1, &mut rng);
        Ok(OpenLoopSource {
            model: RateModel::Mmpp { phases, phase: 0, next_switch_s: first_dwell },
            max_rate,
            horizon_s,
            mix,
            total_w,
            max_requests: None,
            emitted: 0,
            t: 0.0,
            rng,
            done: false,
        })
    }

    /// Caps the stream at `n` arrivals (in addition to the horizon).
    pub fn with_max_requests(mut self, n: u64) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// Arrivals emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Instantaneous target rate at candidate time `t` (advancing MMPP
    /// phases as needed; phase transitions draw from the RNG exactly once
    /// per dwell, so the stream stays deterministic however it is pulled).
    fn rate_at(&mut self, t: f64) -> f64 {
        match &mut self.model {
            RateModel::Pattern(p) => p.rate_at(t, self.max_rate),
            RateModel::Schedule(s) => s.rate_at(t),
            RateModel::Mmpp { phases, phase, next_switch_s } => {
                while *next_switch_s <= t {
                    *phase = (*phase + 1) % phases.len();
                    *next_switch_s += exp_draw(phases[*phase].1, &mut self.rng);
                }
                phases[*phase].0
            }
        }
    }
}

impl ArrivalSource for OpenLoopSource {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.done {
            return None;
        }
        if self.max_requests.is_some_and(|cap| self.emitted >= cap) {
            self.done = true;
            return None;
        }
        loop {
            // Identical draw sequence to `generate_stream`: candidate gap,
            // acceptance, and (only when accepted) the mix draw.
            self.t = next_candidate(self.t, self.max_rate, &mut self.rng);
            if self.t >= self.horizon_s {
                self.done = true;
                return None;
            }
            let accept: f64 = self.rng.rng().gen_range(0.0..1.0);
            let rate = self.rate_at(self.t);
            if thin_accept(accept, self.max_rate, rate) {
                let request_type = sample_mix(&self.mix, self.total_w, &mut self.rng);
                self.emitted += 1;
                return Some(Arrival { at: SimTime::from_secs_f64(self.t), request_type });
            }
        }
    }
}

/// Drops arrivals from an inner source, keeping each independently with
/// probability `keep`. Models downsampled replay (evaluate a scheduler
/// against a thinned production stream) and A/B traffic splits; thinning a
/// Poisson process yields a Poisson process at `keep × rate`.
#[derive(Debug)]
pub struct ThinnedSource<S> {
    inner: S,
    keep: f64,
    rng: SimRng,
}

impl<S: ArrivalSource> ThinnedSource<S> {
    /// Wraps `inner`, keeping each arrival with probability `keep ∈ [0, 1]`.
    /// Deterministic in `rng`: one draw per inner arrival, whatever the
    /// consumer does between pulls.
    pub fn new(inner: S, keep: f64, rng: SimRng) -> Self {
        assert!((0.0..=1.0).contains(&keep), "keep probability must be in [0, 1], got {keep}");
        ThinnedSource { inner, keep, rng }
    }
}

impl<S: ArrivalSource> ArrivalSource for ThinnedSource<S> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        loop {
            let a = self.inner.next_arrival()?;
            let u: f64 = self.rng.rng().gen_range(0.0..1.0);
            if u < self.keep {
                return Some(a);
            }
        }
    }
    // No size_hint: the kept count is only known at the end.
}

/// Exponential draw with the given mean (inverse-CDF over a (0,1] uniform).
fn exp_draw(mean: f64, rng: &mut SimRng) -> f64 {
    let u: f64 = rng.rng().gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() * mean
}

/// Drains a source into a vector (testing / small-trace convenience).
pub fn collect_source(source: &mut dyn ArrivalSource) -> Vec<Arrival> {
    let mut out = Vec::with_capacity(source.size_hint().unwrap_or(0));
    while let Some(a) = source.next_arrival() {
        out.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_stream;

    fn mix2() -> Vec<(RequestTypeId, f64)> {
        vec![(RequestTypeId(0), 0.6), (RequestTypeId(1), 0.4)]
    }

    #[test]
    fn slice_source_replays_exactly() {
        let mut rng = SimRng::new(5);
        let trace = generate_stream(WorkloadPattern::L1Pulse, 200.0, 20.0, &mix2(), &mut rng);
        let mut src = SliceSource::new(&trace);
        assert_eq!(src.size_hint(), Some(trace.len()));
        let replay = collect_source(&mut src);
        assert_eq!(replay, trace);
        assert_eq!(src.next_arrival(), None, "stays exhausted");
    }

    #[test]
    fn open_loop_matches_generate_stream_bit_for_bit() {
        for (seed, pattern) in
            [(1u64, WorkloadPattern::L2Fluctuating), (9, WorkloadPattern::Constant)]
        {
            let mut rng = SimRng::new(seed);
            let dense = generate_stream(pattern, 300.0, 25.0, &mix2(), &mut rng);
            let mut src = OpenLoopSource::poisson(pattern, 300.0, 25.0, mix2(), SimRng::new(seed));
            let lazy = collect_source(&mut src);
            assert_eq!(lazy, dense, "seed {seed}: lazy and dense streams diverge");
        }
    }

    #[test]
    fn open_loop_is_reproducible_and_capped() {
        let mut a = OpenLoopSource::poisson(
            WorkloadPattern::Constant,
            500.0,
            1e9, // effectively unbounded horizon
            mix2(),
            SimRng::new(7),
        )
        .with_max_requests(1000);
        let mut b =
            OpenLoopSource::poisson(WorkloadPattern::Constant, 500.0, 1e9, mix2(), SimRng::new(7))
                .with_max_requests(1000);
        let sa = collect_source(&mut a);
        let sb = collect_source(&mut b);
        assert_eq!(sa, sb);
        assert_eq!(sa.len(), 1000, "count cap must bound the stream");
        assert_eq!(a.emitted(), 1000);
        assert!(sa.windows(2).all(|w| w[0].at <= w[1].at), "stream must be time-ordered");
    }

    #[test]
    fn steady_schedule_matches_poisson_bit_for_bit() {
        // A schedule with no segments has peak_rate == base_rate and the
        // identical rate curve, so the thinning draws — and therefore the
        // whole stream — must match the plain poisson source exactly.
        let sched = RateSchedule::steady(WorkloadPattern::L2Fluctuating, 300.0).unwrap();
        let mut a = OpenLoopSource::scheduled(sched, 25.0, mix2(), SimRng::new(17)).unwrap();
        let mut b = OpenLoopSource::poisson(
            WorkloadPattern::L2Fluctuating,
            300.0,
            25.0,
            mix2(),
            SimRng::new(17),
        );
        assert_eq!(collect_source(&mut a), collect_source(&mut b));
    }

    #[test]
    fn flash_crowd_schedule_surges_the_stream() {
        let sched =
            RateSchedule::flash_crowd(WorkloadPattern::Constant, 200.0, 30.0, 20.0, 3.0, 2.0)
                .unwrap();
        let mut src = OpenLoopSource::scheduled(sched, 80.0, mix2(), SimRng::new(23)).unwrap();
        let arrivals = collect_source(&mut src);
        let rate = crate::empirical_rate(&arrivals, 80.0, 5.0);
        let v = rate.values();
        // Buckets inside the surge (35–45 s) run ~3× the pre-surge ones.
        let pre = (v[0] + v[1] + v[2]) / 3.0;
        let surge = (v[7] + v[8]) / 2.0;
        let post = (v[12] + v[13] + v[14]) / 3.0;
        assert!(surge > 2.2 * pre, "surge {surge} vs pre {pre}");
        assert!(post < 1.4 * pre, "load must recover, post {post} vs pre {pre}");
    }

    #[test]
    fn mmpp_is_deterministic_and_rate_bounded() {
        let phases = vec![(800.0, 2.0), (100.0, 3.0)];
        let mut a = OpenLoopSource::mmpp(phases.clone(), 60.0, mix2(), SimRng::new(11));
        let mut b = OpenLoopSource::mmpp(phases, 60.0, mix2(), SimRng::new(11));
        let sa = collect_source(&mut a);
        let sb = collect_source(&mut b);
        assert_eq!(sa, sb, "MMPP must be seed-deterministic");
        assert!(!sa.is_empty());
        // Overall rate must land between the phase rates (well under the
        // majorant, well over the low phase × its share).
        let rate = sa.len() as f64 / 60.0;
        assert!(rate < 800.0 && rate > 50.0, "achieved {rate} req/s");
    }

    #[test]
    fn mmpp_phases_actually_modulate() {
        // Long dwells: 1s buckets should show clearly bimodal counts.
        let phases = vec![(1000.0, 5.0), (50.0, 5.0)];
        let mut src = OpenLoopSource::mmpp(phases, 100.0, mix2(), SimRng::new(3));
        let arrivals = collect_source(&mut src);
        let rate = crate::empirical_rate(&arrivals, 100.0, 1.0);
        let values = rate.values();
        let hi = values.iter().filter(|&&v| v > 600.0).count();
        let lo = values.iter().filter(|&&v| v < 200.0).count();
        assert!(hi > 5, "high phase never visible ({hi} hot buckets)");
        assert!(lo > 5, "low phase never visible ({lo} cold buckets)");
    }

    #[test]
    fn thinned_source_keeps_expected_fraction() {
        let inner = OpenLoopSource::poisson(
            WorkloadPattern::Constant,
            1000.0,
            60.0,
            mix2(),
            SimRng::new(21),
        );
        let total = 1000.0 * 60.0;
        let mut thinned = ThinnedSource::new(inner, 0.25, SimRng::new(22));
        let kept = collect_source(&mut thinned).len() as f64;
        let expected = 0.25 * total;
        assert!(
            (kept - expected).abs() < 6.0 * (expected * 0.75).sqrt() + 6.0,
            "kept {kept}, expected ≈{expected}"
        );
    }

    #[test]
    fn thinned_zero_keeps_nothing_and_one_keeps_all() {
        let trace =
            generate_stream(WorkloadPattern::Constant, 200.0, 5.0, &mix2(), &mut SimRng::new(2));
        let none =
            collect_source(&mut ThinnedSource::new(SliceSource::new(&trace), 0.0, SimRng::new(1)));
        assert!(none.is_empty());
        let all =
            collect_source(&mut ThinnedSource::new(SliceSource::new(&trace), 1.0, SimRng::new(1)));
        assert_eq!(all, trace);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::generate_stream;
    use proptest::prelude::*;

    proptest! {
        /// Core tentpole equivalence at the workload layer: for any seed,
        /// rate, and pattern, the lazy open-loop source and the dense
        /// generator produce bit-identical streams.
        #[test]
        fn open_loop_equals_dense_for_any_seed(
            seed: u64,
            rate in 20.0f64..400.0,
            pattern_idx in 0usize..4,
        ) {
            let pattern = [
                WorkloadPattern::L1Pulse,
                WorkloadPattern::L2Fluctuating,
                WorkloadPattern::L3PeriodicWide,
                WorkloadPattern::Constant,
            ][pattern_idx];
            let mix = vec![(RequestTypeId(0), 0.5), (RequestTypeId(1), 0.5)];
            let dense = generate_stream(pattern, rate, 15.0, &mix, &mut SimRng::new(seed));
            let mut src = OpenLoopSource::poisson(pattern, rate, 15.0, mix, SimRng::new(seed));
            let lazy = collect_source(&mut src);
            prop_assert_eq!(lazy, dense);
        }

        /// A capped source emits exactly min(cap, uncapped-count) arrivals,
        /// and the capped stream is a prefix of the uncapped one.
        #[test]
        fn cap_is_a_prefix(seed: u64, cap in 1u64..200) {
            let mix = vec![(RequestTypeId(0), 1.0)];
            let mut full = OpenLoopSource::poisson(
                WorkloadPattern::Constant, 100.0, 3.0, mix.clone(), SimRng::new(seed));
            let all = collect_source(&mut full);
            let mut capped = OpenLoopSource::poisson(
                WorkloadPattern::Constant, 100.0, 3.0, mix, SimRng::new(seed))
                .with_max_requests(cap);
            let some = collect_source(&mut capped);
            let expect = all.len().min(cap as usize);
            prop_assert_eq!(some.len(), expect);
            prop_assert_eq!(&some[..], &all[..expect]);
        }
    }
}
