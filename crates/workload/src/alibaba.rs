//! Synthetic Alibaba-style container-utilization trace (Fig 3b).
//!
//! The paper analyzes an open-source Alibaba cluster log — an eight-day
//! trace of containers from a production cluster — to show that workload
//! fluctuations are significant and traffic surges frequent (Section II-B,
//! Observation 2). We synthesize a trace with the same qualitative
//! structure: a diurnal baseline, day-to-day modulation, bursty surge
//! spikes, and sampling noise.

use mlp_sim::SimRng;
use mlp_stats::{Dist, TimeSeries};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic trace generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AlibabaTraceConfig {
    /// Trace length in days (the paper's log covers 8 days).
    pub days: f64,
    /// Sample period in minutes (cluster logs sample at minute scale).
    pub sample_minutes: f64,
    /// Mean utilization level (fraction of capacity, 0–1).
    pub base_level: f64,
    /// Amplitude of the diurnal swing (fraction of capacity).
    pub diurnal_amplitude: f64,
    /// Expected number of surge events per day.
    pub surges_per_day: f64,
    /// Measurement / scheduling noise level (std-dev, fraction).
    pub noise: f64,
}

impl Default for AlibabaTraceConfig {
    fn default() -> Self {
        AlibabaTraceConfig {
            days: 8.0,
            sample_minutes: 5.0,
            base_level: 0.35,
            diurnal_amplitude: 0.18,
            surges_per_day: 6.0,
            noise: 0.03,
        }
    }
}

impl AlibabaTraceConfig {
    /// Generates the utilization trace (values in `[0,1]`, one sample per
    /// `sample_minutes`).
    pub fn generate(&self, rng: &mut SimRng) -> TimeSeries {
        let step_min = self.sample_minutes.max(0.1);
        let n = ((self.days * 24.0 * 60.0) / step_min).ceil() as usize;
        let mut values = Vec::with_capacity(n);

        // Pre-draw surge events: (center sample, height, width in samples).
        let expected_surges = (self.surges_per_day * self.days).round() as usize;
        let surge_height = Dist::Uniform { lo: 0.25, hi: 0.55 };
        let mut surges: Vec<(f64, f64, f64)> = Vec::with_capacity(expected_surges);
        for _ in 0..expected_surges {
            let center = rng.rng().gen_range(0.0..n as f64);
            let height = surge_height.sample(rng.rng());
            let width = rng.rng().gen_range(2.0..10.0); // 10–50 minutes
            surges.push((center, height, width));
        }

        for i in 0..n {
            let minutes = i as f64 * step_min;
            let day_phase = minutes / (24.0 * 60.0) * std::f64::consts::TAU;
            // Diurnal swing peaking mid-day, plus a slower multi-day drift.
            let diurnal = self.diurnal_amplitude * (day_phase - std::f64::consts::FRAC_PI_2).sin();
            let drift =
                0.05 * (minutes / (self.days * 24.0 * 60.0) * std::f64::consts::TAU * 1.7).sin();
            let mut v = self.base_level + diurnal + drift;
            // Surges: sharp Gaussian bumps.
            for &(c, h, w) in &surges {
                let d = (i as f64 - c) / w;
                if d.abs() < 4.0 {
                    v += h * (-0.5 * d * d).exp();
                }
            }
            // Sampling noise.
            v += Dist::Normal { mean: 0.0, std_dev: self.noise, min: -1.0 }.sample(rng.rng());
            values.push(v.clamp(0.0, 1.0));
        }
        TimeSeries::from_values(step_min / 60.0, values) // step unit: hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seed: u64) -> TimeSeries {
        AlibabaTraceConfig::default().generate(&mut SimRng::new(seed))
    }

    #[test]
    fn eight_day_default_shape() {
        let t = trace(1);
        // 8 days at 5-minute samples = 2304 points.
        assert_eq!(t.len(), 2304);
        assert!((t.duration() - 8.0 * 24.0).abs() < 0.5, "duration {} h", t.duration());
    }

    #[test]
    fn values_are_valid_fractions() {
        let t = trace(2);
        assert!(t.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn trace_fluctuates_significantly() {
        // Observation 2: "workload fluctuations are significant".
        let t = trace(3);
        let spread = t.max() - t.values().iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.3, "spread only {spread}");
    }

    #[test]
    fn surges_exist() {
        // "many peaks caused by frequent traffic surges": peaks well above
        // the mean should appear many times over 8 days.
        let t = trace(4);
        let threshold = t.mean() + 0.2;
        let peaks = t.smoothed(3).peaks_above(threshold);
        assert!(peaks.len() >= 10, "only {} surges", peaks.len());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(trace(7).values(), trace(7).values());
        assert_ne!(trace(7).values(), trace(8).values());
    }

    #[test]
    fn diurnal_rhythm_visible() {
        // Autocorrelation at a 24 h lag should be clearly positive.
        let t = trace(9);
        let v = t.values();
        let lag = (24.0 * 60.0 / 5.0) as usize; // samples per day
        let mean = t.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..v.len() - lag {
            num += (v[i] - mean) * (v[i + lag] - mean);
        }
        for x in v {
            den += (x - mean) * (x - mean);
        }
        let rho = num / den;
        assert!(rho > 0.15, "daily autocorrelation {rho} too weak");
    }
}
