//! Non-homogeneous Poisson arrival generation and request-mix sampling.

use crate::error::WorkloadError;
use crate::patterns::WorkloadPattern;
use mlp_model::RequestTypeId;
use mlp_sim::{SimRng, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One request arrival in a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Arrival instant.
    pub at: SimTime,
    /// Which request type arrived.
    pub request_type: RequestTypeId,
}

/// Generates a request stream over `[0, horizon_s)` seconds:
///
/// * arrival *times* follow a non-homogeneous Poisson process whose rate
///   is `pattern.rate_at(t, max_rate)` (Lewis–Shedler thinning against the
///   constant majorant `max_rate`);
/// * arrival *types* are drawn independently from `mix`
///   (`(type, weight)` pairs; weights need not be normalized).
///
/// Deterministic for a given `rng` seed, so the identical stream can be
/// replayed against every scheduling scheme (Section IV's methodology).
///
/// Panics on invalid parameters; [`try_generate_stream`] returns the typed
/// [`WorkloadError`] instead, and `Experiment::validate()` runs the same
/// checks up front so engine users never reach the panic.
pub fn generate_stream(
    pattern: WorkloadPattern,
    max_rate: f64,
    horizon_s: f64,
    mix: &[(RequestTypeId, f64)],
    rng: &mut SimRng,
) -> Vec<Arrival> {
    try_generate_stream(pattern, max_rate, horizon_s, mix, rng).unwrap_or_else(|e| panic!("{e}"))
}

/// Validates arrival-stream parameters, returning the total mix weight.
///
/// These used to be `assert!`s inside [`generate_stream`]; as a fallible
/// check they can gate an experiment config before any simulation runs.
pub fn validate_stream_params(
    max_rate: f64,
    mix: &[(RequestTypeId, f64)],
) -> Result<f64, WorkloadError> {
    if !(max_rate > 0.0 && max_rate.is_finite()) {
        return Err(WorkloadError::NonPositiveRate(max_rate));
    }
    if mix.is_empty() {
        return Err(WorkloadError::EmptyMix);
    }
    let total_w: f64 = mix.iter().map(|(_, w)| w).sum();
    if mix.iter().any(|&(_, w)| w < 0.0) || !(total_w > 0.0 && total_w.is_finite()) {
        return Err(WorkloadError::BadMixWeights(total_w));
    }
    Ok(total_w)
}

/// Fallible twin of [`generate_stream`].
pub fn try_generate_stream(
    pattern: WorkloadPattern,
    max_rate: f64,
    horizon_s: f64,
    mix: &[(RequestTypeId, f64)],
    rng: &mut SimRng,
) -> Result<Vec<Arrival>, WorkloadError> {
    let total_w = validate_stream_params(max_rate, mix)?;

    let mut out = Vec::with_capacity((max_rate * horizon_s * 0.7) as usize);
    let mut t = 0.0f64;
    loop {
        t = next_candidate(t, max_rate, rng);
        if t >= horizon_s {
            break;
        }
        // Thinning: accept with probability rate(t)/max_rate.
        let accept: f64 = rng.rng().gen_range(0.0..1.0);
        if thin_accept(accept, max_rate, pattern.rate_at(t, max_rate)) {
            let request_type = sample_mix(mix, total_w, rng);
            out.push(Arrival { at: SimTime::from_secs_f64(t), request_type });
        }
    }
    Ok(out)
}

/// Advances the homogeneous majorant process by one exponential gap.
///
/// Shared verbatim between [`generate_stream`] and the lazy
/// [`OpenLoopSource`](crate::OpenLoopSource) so both draw the *identical*
/// RNG sequence — the bit-for-bit equivalence of the dense and streaming
/// arrival paths holds by construction, not by parallel maintenance.
pub(crate) fn next_candidate(t: f64, max_rate: f64, rng: &mut SimRng) -> f64 {
    let u: f64 = rng.rng().gen_range(f64::MIN_POSITIVE..1.0);
    t + -u.ln() / max_rate
}

/// Lewis–Shedler thinning decision: keep the candidate iff
/// `accept < rate/max_rate`. Strictly less-than: `accept` can draw exactly
/// 0.0 (the `gen_range(0.0..1.0)` interval is half-open at 1, closed at 0),
/// and a window where `rate == 0` must emit no arrivals at all — `<=` would
/// let the zero draw through.
pub(crate) fn thin_accept(accept: f64, max_rate: f64, rate: f64) -> bool {
    accept * max_rate < rate
}

pub(crate) fn sample_mix(
    mix: &[(RequestTypeId, f64)],
    total_w: f64,
    rng: &mut SimRng,
) -> RequestTypeId {
    let mut x: f64 = rng.rng().gen_range(0.0..total_w);
    for &(id, w) in mix {
        if x < w {
            return id;
        }
        x -= w;
    }
    mix.last().unwrap().0
}

/// Empirical arrival rate (req/s) of a stream in `bucket_s`-second buckets,
/// for plotting generated streams against their target pattern (Fig 9).
pub fn empirical_rate(
    arrivals: &[Arrival],
    horizon_s: f64,
    bucket_s: f64,
) -> mlp_stats::TimeSeries {
    let n = (horizon_s / bucket_s).ceil() as usize;
    let mut counts = vec![0.0f64; n.max(1)];
    for a in arrivals {
        let idx = (a.at.as_secs_f64() / bucket_s) as usize;
        if idx < counts.len() {
            counts[idx] += 1.0;
        }
    }
    for c in &mut counts {
        *c /= bucket_s;
    }
    mlp_stats::TimeSeries::from_values(bucket_s, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix2() -> Vec<(RequestTypeId, f64)> {
        vec![(RequestTypeId(0), 0.75), (RequestTypeId(1), 0.25)]
    }

    #[test]
    fn stream_is_sorted_and_in_horizon() {
        let mut rng = SimRng::new(1);
        let s = generate_stream(WorkloadPattern::L2Fluctuating, 500.0, 50.0, &mix2(), &mut rng);
        assert!(!s.is_empty());
        for w in s.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(s.last().unwrap().at < SimTime::from_secs(50));
    }

    #[test]
    fn constant_pattern_rate_matches_target() {
        let mut rng = SimRng::new(2);
        let rate = 800.0;
        let s = generate_stream(WorkloadPattern::Constant, rate, 60.0, &mix2(), &mut rng);
        let achieved = s.len() as f64 / 60.0;
        assert!((achieved - rate).abs() / rate < 0.05, "achieved {achieved} req/s, wanted {rate}");
    }

    #[test]
    fn mix_proportions_respected() {
        let mut rng = SimRng::new(3);
        let s = generate_stream(WorkloadPattern::Constant, 1000.0, 60.0, &mix2(), &mut rng);
        let zero = s.iter().filter(|a| a.request_type == RequestTypeId(0)).count() as f64;
        let frac = zero / s.len() as f64;
        assert!((frac - 0.75).abs() < 0.03, "type-0 fraction {frac}");
    }

    #[test]
    fn l1_stream_peaks_at_40s() {
        let mut rng = SimRng::new(4);
        let s = generate_stream(WorkloadPattern::L1Pulse, 1000.0, 100.0, &mix2(), &mut rng);
        let rate = empirical_rate(&s, 100.0, 5.0);
        // Bucket containing 40 s should carry the most arrivals.
        let peak_bucket =
            rate.values().iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let peak_time = peak_bucket as f64 * 5.0;
        assert!((35.0..=45.0).contains(&peak_time), "peak at {peak_time}s");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let sa = generate_stream(WorkloadPattern::L3PeriodicWide, 300.0, 20.0, &mix2(), &mut a);
        let sb = generate_stream(WorkloadPattern::L3PeriodicWide, 300.0, 20.0, &mix2(), &mut b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn empirical_rate_buckets() {
        let arrivals = vec![
            Arrival { at: SimTime::from_secs_f64(0.1), request_type: RequestTypeId(0) },
            Arrival { at: SimTime::from_secs_f64(0.2), request_type: RequestTypeId(0) },
            Arrival { at: SimTime::from_secs_f64(1.5), request_type: RequestTypeId(0) },
        ];
        let r = empirical_rate(&arrivals, 2.0, 1.0);
        assert_eq!(r.values(), &[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "mix must be non-empty")]
    fn empty_mix_rejected() {
        let mut rng = SimRng::new(0);
        generate_stream(WorkloadPattern::Constant, 10.0, 1.0, &[], &mut rng);
    }

    /// The `try_` path returns typed errors where the infallible path
    /// panics, and both agree on what is valid.
    #[test]
    fn try_generate_stream_reports_typed_errors() {
        use crate::error::WorkloadError;
        let mut rng = SimRng::new(0);
        let e = try_generate_stream(WorkloadPattern::Constant, 0.0, 1.0, &mix2(), &mut rng);
        assert_eq!(e.unwrap_err(), WorkloadError::NonPositiveRate(0.0));
        let e = try_generate_stream(WorkloadPattern::Constant, f64::NAN, 1.0, &mix2(), &mut rng);
        assert!(matches!(e.unwrap_err(), WorkloadError::NonPositiveRate(_)));
        let e = try_generate_stream(WorkloadPattern::Constant, 10.0, 1.0, &[], &mut rng);
        assert_eq!(e.unwrap_err(), WorkloadError::EmptyMix);
        let zero = vec![(RequestTypeId(0), 0.0)];
        let e = try_generate_stream(WorkloadPattern::Constant, 10.0, 1.0, &zero, &mut rng);
        assert_eq!(e.unwrap_err(), WorkloadError::BadMixWeights(0.0));
        let neg = vec![(RequestTypeId(0), 2.0), (RequestTypeId(1), -1.0)];
        let e = try_generate_stream(WorkloadPattern::Constant, 10.0, 1.0, &neg, &mut rng);
        assert!(matches!(e.unwrap_err(), WorkloadError::BadMixWeights(_)));
        let ok = try_generate_stream(WorkloadPattern::Constant, 10.0, 1.0, &mix2(), &mut rng);
        assert!(ok.is_ok());
    }

    /// Regression: a zero-rate window emits nothing even when the
    /// acceptance draw comes out exactly 0.0 (the old `<=` comparison
    /// accepted that candidate, injecting arrivals where the offered load
    /// is zero).
    #[test]
    fn zero_rate_window_emits_nothing() {
        assert!(!thin_accept(0.0, 1000.0, 0.0), "accept == 0.0 must not pass a zero rate");
        // Unchanged everywhere the rate is positive...
        assert!(thin_accept(0.0, 1000.0, 350.0));
        assert!(thin_accept(0.3499, 1000.0, 350.0));
        // ...and at the acceptance boundary the candidate is dropped, per
        // thinning's `u < λ(t)/λ_max` (P[u = boundary] = 0 in theory; ties
        // must reject so a zero rate stays silent).
        assert!(!thin_accept(0.35, 1000.0, 350.0));
        assert!(!thin_accept(0.999, 1000.0, 350.0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn stream_count_scales_with_rate(seed: u64, rate in 50.0f64..500.0) {
            let mut rng = SimRng::new(seed);
            let mix = vec![(RequestTypeId(0), 1.0)];
            let s = generate_stream(WorkloadPattern::Constant, rate, 30.0, &mix, &mut rng);
            let expected = rate * 30.0;
            let got = s.len() as f64;
            // Poisson: within 5 standard deviations.
            prop_assert!((got - expected).abs() < 5.0 * expected.sqrt() + 5.0,
                "rate {rate}: got {got}, expected {expected}");
        }
    }
}
