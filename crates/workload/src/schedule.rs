//! Piecewise rate schedules: offered load that surges past capacity.
//!
//! A [`WorkloadPattern`] shapes load *within* its peak rate; it cannot
//! express "at t = 30 s a flash crowd triples the offered load for twenty
//! seconds". A [`RateSchedule`] multiplies a base pattern by piecewise
//! trapezoid segments — flash crowds, diurnal crests — so open-loop
//! traffic can be driven deliberately past cluster capacity on a schedule,
//! which is exactly what the overload-resilience experiments need.
//!
//! The schedule is a pure function of time (no RNG), so every scheduling
//! scheme faces the identical offered-load curve, and its
//! [`peak_rate`](RateSchedule::peak_rate) is a true majorant for
//! Lewis–Shedler thinning.

use crate::error::WorkloadError;
use crate::patterns::WorkloadPattern;
use serde::{Deserialize, Serialize};

/// One multiplicative load segment: ramps from 1× up to `multiplier` over
/// `ramp_s` seconds after `start_s`, holds, and ramps back down to 1× by
/// `end_s` (a trapezoid; `ramp_s = 0` makes it a step).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSegment {
    /// When the surge begins, seconds into the run.
    pub start_s: f64,
    /// When the surge is fully over, seconds into the run.
    pub end_s: f64,
    /// Peak load multiplier relative to the base pattern (3.0 = a 3× flash
    /// crowd; values below 1.0 model troughs).
    pub multiplier: f64,
    /// Linear ramp duration on each edge of the segment.
    pub ramp_s: f64,
}

impl RateSegment {
    /// The segment's multiplicative contribution at time `t` (1.0 outside
    /// the segment).
    fn factor_at(&self, t: f64) -> f64 {
        if t <= self.start_s || t >= self.end_s {
            return 1.0;
        }
        let edge = if self.ramp_s > 0.0 {
            let up = (t - self.start_s) / self.ramp_s;
            let down = (self.end_s - t) / self.ramp_s;
            up.min(down).min(1.0)
        } else {
            1.0
        };
        1.0 + (self.multiplier - 1.0) * edge
    }
}

/// A smooth day/night swing: the multiplier oscillates sinusoidally in
/// `[1 − amplitude, 1 + amplitude]` with the given period, starting at 1×
/// and rising (the "morning ramp" comes first). A pure function of time
/// like every other schedule component, so identical across schemes and
/// seed-deterministic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sinusoid {
    /// Full cycle length, seconds.
    pub period_s: f64,
    /// Swing around 1× (0.4 → multiplier in `[0.6, 1.4]`). Must satisfy
    /// `0 < amplitude < 1` so the offered rate stays positive.
    pub amplitude: f64,
}

impl Sinusoid {
    fn factor_at(&self, t: f64) -> f64 {
        1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period_s).sin()
    }
}

/// A base [`WorkloadPattern`] at `base_rate` req/s, modulated by zero or
/// more [`RateSegment`]s and at most one [`Sinusoid`]. Overlapping
/// components compound multiplicatively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    pattern: WorkloadPattern,
    base_rate: f64,
    segments: Vec<RateSegment>,
    /// Smooth diurnal modulation, applied on top of the segments.
    sinusoid: Option<Sinusoid>,
}

impl RateSchedule {
    /// Validates and builds a schedule.
    pub fn try_new(
        pattern: WorkloadPattern,
        base_rate: f64,
        segments: Vec<RateSegment>,
    ) -> Result<Self, WorkloadError> {
        if !(base_rate > 0.0 && base_rate.is_finite()) {
            return Err(WorkloadError::NonPositiveRate(base_rate));
        }
        for (i, s) in segments.iter().enumerate() {
            let bad =
                |why: String| Err(WorkloadError::InvalidSchedule(format!("segment {i}: {why}")));
            if !(s.start_s >= 0.0 && s.start_s.is_finite()) {
                return bad(format!("start_s must be non-negative, got {}", s.start_s));
            }
            if !(s.end_s > s.start_s && s.end_s.is_finite()) {
                return bad(format!("end_s {} must exceed start_s {}", s.end_s, s.start_s));
            }
            if !(s.multiplier > 0.0 && s.multiplier.is_finite()) {
                return bad(format!("multiplier must be positive, got {}", s.multiplier));
            }
            if !(s.ramp_s >= 0.0 && s.ramp_s.is_finite()) {
                return bad(format!("ramp_s must be non-negative, got {}", s.ramp_s));
            }
        }
        Ok(RateSchedule { pattern, base_rate, segments, sinusoid: None })
    }

    /// A schedule with no segments: identical offered load to the bare
    /// pattern (useful as the 1× control point of a surge sweep).
    pub fn steady(pattern: WorkloadPattern, base_rate: f64) -> Result<Self, WorkloadError> {
        Self::try_new(pattern, base_rate, Vec::new())
    }

    /// A single flash-crowd surge: `multiplier`× the base load from
    /// `start_s` for `duration_s` seconds, with `ramp_s` linear edges.
    pub fn flash_crowd(
        pattern: WorkloadPattern,
        base_rate: f64,
        start_s: f64,
        duration_s: f64,
        multiplier: f64,
        ramp_s: f64,
    ) -> Result<Self, WorkloadError> {
        if !(duration_s > 0.0 && duration_s.is_finite()) {
            return Err(WorkloadError::InvalidSchedule(format!(
                "flash crowd duration must be positive, got {duration_s}"
            )));
        }
        let seg = RateSegment { start_s, end_s: start_s + duration_s, multiplier, ramp_s };
        Self::try_new(pattern, base_rate, vec![seg])
    }

    /// A diurnal cycle over `horizon_s`: each `period_s` window carries one
    /// wide crest at `peak_multiplier` (trapezoid over the middle half of
    /// the period) — the piecewise stand-in for day/night traffic swings.
    pub fn diurnal(
        pattern: WorkloadPattern,
        base_rate: f64,
        period_s: f64,
        peak_multiplier: f64,
        horizon_s: f64,
    ) -> Result<Self, WorkloadError> {
        if !(period_s > 0.0 && period_s.is_finite() && horizon_s > 0.0 && horizon_s.is_finite()) {
            return Err(WorkloadError::InvalidSchedule(format!(
                "diurnal period and horizon must be positive, got {period_s} / {horizon_s}"
            )));
        }
        let mut segments = Vec::new();
        let mut start = 0.25 * period_s;
        while start < horizon_s {
            segments.push(RateSegment {
                start_s: start,
                end_s: start + 0.5 * period_s,
                multiplier: peak_multiplier,
                ramp_s: 0.2 * period_s,
            });
            start += period_s;
        }
        Self::try_new(pattern, base_rate, segments)
    }

    /// A smooth sinusoidal diurnal cycle: the multiplier swings in
    /// `[1 − amplitude, 1 + amplitude]` over each `period_s` window,
    /// starting at 1× and rising. Unlike [`RateSchedule::diurnal`]'s
    /// piecewise trapezoid crests this has no corners, which is what the
    /// live load generator and the elastic-provisioning experiments want:
    /// a fleet-sizing policy should track a derivative, not a step.
    pub fn diurnal_sine(
        pattern: WorkloadPattern,
        base_rate: f64,
        period_s: f64,
        amplitude: f64,
    ) -> Result<Self, WorkloadError> {
        if !(period_s > 0.0 && period_s.is_finite()) {
            return Err(WorkloadError::InvalidSchedule(format!(
                "sinusoid period must be positive, got {period_s}"
            )));
        }
        if !(amplitude > 0.0 && amplitude < 1.0) {
            return Err(WorkloadError::InvalidSchedule(format!(
                "sinusoid amplitude must be in (0, 1), got {amplitude}"
            )));
        }
        let mut s = Self::steady(pattern, base_rate)?;
        s.sinusoid = Some(Sinusoid { period_s, amplitude });
        Ok(s)
    }

    /// Adds a sinusoidal component to an existing schedule (e.g. a flash
    /// crowd on top of a diurnal swing). Replaces any previous sinusoid.
    pub fn with_sinusoid(mut self, period_s: f64, amplitude: f64) -> Result<Self, WorkloadError> {
        let probe = Self::diurnal_sine(self.pattern, self.base_rate, period_s, amplitude)?;
        self.sinusoid = probe.sinusoid;
        Ok(self)
    }

    /// The sinusoidal component, if one is set.
    pub fn sinusoid(&self) -> Option<Sinusoid> {
        self.sinusoid
    }

    /// The base pattern.
    pub fn pattern(&self) -> WorkloadPattern {
        self.pattern
    }

    /// The base (1×) peak rate.
    pub fn base_rate(&self) -> f64 {
        self.base_rate
    }

    /// The segments in force.
    pub fn segments(&self) -> &[RateSegment] {
        &self.segments
    }

    /// Combined segment (and sinusoid) multiplier at time `t`.
    pub fn multiplier_at(&self, t: f64) -> f64 {
        let seg: f64 = self.segments.iter().map(|s| s.factor_at(t)).product();
        seg * self.sinusoid.map_or(1.0, |s| s.factor_at(t))
    }

    /// Instantaneous offered rate at `t` seconds (req/s).
    pub fn rate_at(&self, t: f64) -> f64 {
        self.pattern.rate_at(t, self.base_rate) * self.multiplier_at(t)
    }

    /// Majorant for thinning: `rate_at(t) ≤ peak_rate()` for every `t`.
    /// Each segment contributes at most `max(1, multiplier)`, and the base
    /// pattern never exceeds `base_rate`, so the product bound is exact
    /// for non-overlapping segments and conservative for overlaps.
    pub fn peak_rate(&self) -> f64 {
        let m: f64 = self.segments.iter().map(|s| s.multiplier.max(1.0)).product();
        self.base_rate * m * self.sinusoid.map_or(1.0, |s| 1.0 + s.amplitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash3x() -> RateSchedule {
        RateSchedule::flash_crowd(WorkloadPattern::Constant, 100.0, 30.0, 20.0, 3.0, 4.0).unwrap()
    }

    #[test]
    fn steady_matches_bare_pattern() {
        let s = RateSchedule::steady(WorkloadPattern::L2Fluctuating, 250.0).unwrap();
        for t in [0.0, 7.3, 41.0, 99.9] {
            assert_eq!(s.rate_at(t), WorkloadPattern::L2Fluctuating.rate_at(t, 250.0));
        }
        assert_eq!(s.peak_rate(), 250.0);
    }

    #[test]
    fn flash_crowd_surges_and_recovers() {
        let s = flash3x();
        assert_eq!(s.rate_at(10.0), 100.0, "before the surge");
        assert_eq!(s.rate_at(40.0), 300.0, "at the plateau");
        assert_eq!(s.rate_at(90.0), 100.0, "after the surge");
        // Linear ramp: halfway up the edge is halfway to 3×.
        assert!((s.rate_at(32.0) - 200.0).abs() < 1e-9);
        assert_eq!(s.peak_rate(), 300.0);
    }

    #[test]
    fn rate_never_exceeds_majorant() {
        let s = RateSchedule::try_new(
            WorkloadPattern::L1Pulse,
            400.0,
            vec![
                RateSegment { start_s: 20.0, end_s: 50.0, multiplier: 2.5, ramp_s: 5.0 },
                RateSegment { start_s: 45.0, end_s: 70.0, multiplier: 1.5, ramp_s: 0.0 },
                RateSegment { start_s: 80.0, end_s: 90.0, multiplier: 0.4, ramp_s: 2.0 },
            ],
        )
        .unwrap();
        let peak = s.peak_rate();
        let mut t = 0.0;
        while t < 100.0 {
            assert!(s.rate_at(t) <= peak + 1e-9, "rate at {t} exceeds majorant");
            t += 0.05;
        }
    }

    #[test]
    fn trough_segments_reduce_load() {
        let s = RateSchedule::try_new(
            WorkloadPattern::Constant,
            100.0,
            vec![RateSegment { start_s: 10.0, end_s: 20.0, multiplier: 0.2, ramp_s: 0.0 }],
        )
        .unwrap();
        assert!((s.rate_at(15.0) - 20.0).abs() < 1e-9);
        assert_eq!(s.peak_rate(), 100.0, "troughs do not raise the majorant");
    }

    #[test]
    fn diurnal_crests_repeat() {
        let s = RateSchedule::diurnal(WorkloadPattern::Constant, 100.0, 40.0, 2.0, 120.0).unwrap();
        assert_eq!(s.segments().len(), 3);
        // Crest centers sit mid-period, troughs at period boundaries.
        for k in 0..3 {
            let center = 40.0 * k as f64 + 20.0;
            assert!(s.rate_at(center) > 190.0, "no crest at {center}");
            assert!(s.rate_at(40.0 * k as f64) < 110.0, "no trough at period edge");
        }
    }

    #[test]
    fn diurnal_sine_swings_smoothly_and_majorant_holds() {
        let s = RateSchedule::diurnal_sine(WorkloadPattern::Constant, 100.0, 40.0, 0.5).unwrap();
        // Starts at 1× and rises: quarter period is the crest, three
        // quarters the trough.
        assert!((s.rate_at(0.0) - 100.0).abs() < 1e-9);
        assert!((s.rate_at(10.0) - 150.0).abs() < 1e-9, "crest at T/4");
        assert!((s.rate_at(30.0) - 50.0).abs() < 1e-9, "trough at 3T/4");
        assert!((s.rate_at(40.0) - 100.0).abs() < 1e-6, "periodic");
        assert_eq!(s.peak_rate(), 150.0);
        let mut t = 0.0;
        while t < 120.0 {
            assert!(s.rate_at(t) <= s.peak_rate() + 1e-9, "majorant violated at {t}");
            assert!(s.rate_at(t) > 0.0, "rate must stay positive at {t}");
            t += 0.05;
        }
    }

    #[test]
    fn sinusoid_composes_with_segments() {
        let s = flash3x().with_sinusoid(50.0, 0.25).unwrap();
        // At t=40 the flash plateau (3×) is in force; sine at 2π·0.8.
        let expect = 300.0 * (1.0 + 0.25 * (2.0 * std::f64::consts::PI * 0.8).sin());
        assert!((s.rate_at(40.0) - expect).abs() < 1e-9);
        assert_eq!(s.peak_rate(), 300.0 * 1.25);
    }

    #[test]
    fn diurnal_sine_rejects_bad_parameters() {
        for (period, amp) in [(0.0, 0.5), (-1.0, 0.5), (f64::NAN, 0.5), (40.0, 0.0), (40.0, 1.0)] {
            assert!(
                matches!(
                    RateSchedule::diurnal_sine(WorkloadPattern::Constant, 100.0, period, amp),
                    Err(WorkloadError::InvalidSchedule(_))
                ),
                "period={period} amp={amp} should be rejected"
            );
        }
        assert!(matches!(
            RateSchedule::diurnal_sine(WorkloadPattern::Constant, 0.0, 40.0, 0.5),
            Err(WorkloadError::NonPositiveRate(_))
        ));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let seg = |start_s, end_s, multiplier, ramp_s| {
            RateSchedule::try_new(
                WorkloadPattern::Constant,
                100.0,
                vec![RateSegment { start_s, end_s, multiplier, ramp_s }],
            )
        };
        assert!(matches!(
            RateSchedule::steady(WorkloadPattern::Constant, 0.0),
            Err(WorkloadError::NonPositiveRate(_))
        ));
        assert!(matches!(
            RateSchedule::steady(WorkloadPattern::Constant, f64::NAN),
            Err(WorkloadError::NonPositiveRate(_))
        ));
        assert!(matches!(seg(-1.0, 5.0, 2.0, 0.0), Err(WorkloadError::InvalidSchedule(_))));
        assert!(matches!(seg(5.0, 5.0, 2.0, 0.0), Err(WorkloadError::InvalidSchedule(_))));
        assert!(matches!(seg(0.0, 5.0, 0.0, 0.0), Err(WorkloadError::InvalidSchedule(_))));
        assert!(matches!(seg(0.0, 5.0, 2.0, -1.0), Err(WorkloadError::InvalidSchedule(_))));
        assert!(matches!(
            RateSchedule::flash_crowd(WorkloadPattern::Constant, 100.0, 0.0, 0.0, 2.0, 0.0),
            Err(WorkloadError::InvalidSchedule(_))
        ));
        assert!(seg(0.0, 5.0, 2.0, 0.0).is_ok());
    }
}
