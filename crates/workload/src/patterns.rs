//! The three workload rate patterns of Fig 9.

use mlp_stats::TimeSeries;
use serde::{Deserialize, Serialize};

/// A workload rate pattern (requests/second over time). The three realistic
/// patterns are scaled so their maximum equals the configured peak rate
/// (the paper caps at 1000 req/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadPattern {
    /// L1: mostly flat load with one pulse-like peak (arriving at the 40th
    /// second of the standard 100 s run, per Section V-B).
    L1Pulse,
    /// L2: continuously fluctuating load (no steady state).
    L2Fluctuating,
    /// L3: periodic workload with wide peaks.
    L3PeriodicWide,
    /// Constant load at the peak rate (not in the paper; used for
    /// calibration tests and QPS sweeps in Fig 12).
    Constant,
}

impl WorkloadPattern {
    /// All three paper patterns in figure order.
    pub const PAPER: [WorkloadPattern; 3] =
        [WorkloadPattern::L1Pulse, WorkloadPattern::L2Fluctuating, WorkloadPattern::L3PeriodicWide];

    /// Short label used in reports ("L1", "L2", "L3", "CONST").
    pub fn label(self) -> &'static str {
        match self {
            WorkloadPattern::L1Pulse => "L1",
            WorkloadPattern::L2Fluctuating => "L2",
            WorkloadPattern::L3PeriodicWide => "L3",
            WorkloadPattern::Constant => "CONST",
        }
    }

    /// Instantaneous rate (req/s) at time `t` seconds into the run, for a
    /// peak rate of `max_rate`. Deterministic (the fluctuations of L2 come
    /// from incommensurate sinusoids, not an RNG) so every scheduler sees
    /// the identical offered load.
    pub fn rate_at(self, t: f64, max_rate: f64) -> f64 {
        let shape = match self {
            WorkloadPattern::Constant => 1.0,
            WorkloadPattern::L1Pulse => {
                // Baseline 35% with a sharp Gaussian pulse centered at 40 s
                // (σ = 3 s) rising to 100%.
                let base = 0.35;
                let pulse = (-((t - 40.0) * (t - 40.0)) / (2.0 * 3.0 * 3.0)).exp();
                base + (1.0 - base) * pulse
            }
            WorkloadPattern::L2Fluctuating => {
                // Sum of incommensurate sinusoids: restless, never settles.
                let s = 0.30 * (t * 0.9).sin()
                    + 0.22 * (t * 0.23 + 1.3).sin()
                    + 0.16 * (t * 2.9 + 0.4).sin();
                (0.55 + s).clamp(0.05, 1.0)
            }
            WorkloadPattern::L3PeriodicWide => {
                // 25 s period; over-driven and clipped sinusoid, which
                // produces wide plateaus at both the crest and the trough.
                let phase = (t * std::f64::consts::TAU / 25.0).sin();
                let wide = (1.6 * phase).clamp(-1.0, 1.0);
                0.25 + 0.75 * (0.5 + 0.5 * wide)
            }
        };
        shape * max_rate
    }

    /// Samples the pattern into a [`TimeSeries`] (rate per `step` seconds
    /// over `horizon` seconds), normalized so the max equals `max_rate`.
    pub fn rate_series(self, horizon_s: f64, step_s: f64, max_rate: f64) -> TimeSeries {
        let n = (horizon_s / step_s).ceil() as usize + 1;
        let ts = TimeSeries::from_fn(step_s, n, |t| self.rate_at(t, max_rate));
        ts.normalized_to(max_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: f64 = 1000.0;

    #[test]
    fn all_patterns_bounded() {
        for p in WorkloadPattern::PAPER {
            let ts = p.rate_series(100.0, 0.5, MAX);
            assert!(ts.max() <= MAX + 1e-6, "{} exceeds max", p.label());
            assert!(ts.values().iter().all(|&v| v >= 0.0), "{} has negative rates", p.label());
            // Realistic patterns carry nontrivial load on average.
            assert!(ts.mean() > 0.1 * MAX, "{} mean too low: {}", p.label(), ts.mean());
        }
    }

    #[test]
    fn l1_peak_is_at_40s() {
        let p = WorkloadPattern::L1Pulse;
        let peak_rate = p.rate_at(40.0, MAX);
        assert!((peak_rate - MAX).abs() < 1e-6);
        // Away from the pulse the load sits near the baseline.
        assert!(p.rate_at(5.0, MAX) < 0.4 * MAX);
        assert!(p.rate_at(90.0, MAX) < 0.4 * MAX);
    }

    #[test]
    fn l2_fluctuates_continuously() {
        let p = WorkloadPattern::L2Fluctuating;
        let ts = p.rate_series(100.0, 1.0, MAX);
        // Count direction changes: a fluctuating pattern has many.
        let v = ts.values();
        let mut changes = 0;
        for w in v.windows(3) {
            if (w[1] - w[0]) * (w[2] - w[1]) < 0.0 {
                changes += 1;
            }
        }
        assert!(changes >= 8, "only {changes} direction changes");
    }

    #[test]
    fn l3_is_periodic() {
        let p = WorkloadPattern::L3PeriodicWide;
        // Same phase one period (25 s) apart.
        for t in [10.0, 22.0, 37.5] {
            let a = p.rate_at(t, MAX);
            let b = p.rate_at(t + 25.0, MAX);
            assert!((a - b).abs() < 1e-6, "not periodic at t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn l3_has_wide_peaks() {
        // A "wide peak" spends a substantial fraction of each period above
        // 80% of max rate.
        let ts = WorkloadPattern::L3PeriodicWide.rate_series(100.0, 0.25, MAX);
        let above: usize = ts.values().iter().filter(|&&v| v > 0.8 * MAX).count();
        let frac = above as f64 / ts.len() as f64;
        assert!(frac > 0.2, "only {frac:.2} of time above 80%");
    }

    #[test]
    fn constant_is_flat() {
        let ts = WorkloadPattern::Constant.rate_series(10.0, 1.0, 500.0);
        for &v in ts.values() {
            assert_eq!(v, 500.0);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(WorkloadPattern::L1Pulse.label(), "L1");
        assert_eq!(WorkloadPattern::L3PeriodicWide.label(), "L3");
    }
}
